"""Regenerate the golden round-elimination corpus under tests/golden/.

Run:  PYTHONPATH=src python tools/regen_golden.py [--check]

Each golden file is the canonical JSON of ``Rbar(R(P))`` (one full
speedup step, renamed to compact string labels) for a pinned input
problem.  ``tests/test_golden.py`` recomputes these with both the
reference engine and the kernel fast path and diffs byte-for-byte, so
any behavioral drift in the operators — label naming, configuration
sets, canonical ordering — shows up as a golden mismatch with a
readable JSON diff.

``--check`` verifies the committed files against a fresh computation
without writing anything: exit 0 when every file is current, 1 when
any is missing or stale.  Failures of any kind exit non-zero with a
one-line ``error:`` diagnostic.

Regenerate *only* when an intentional change to the operators or the
renaming scheme alters the expected output, and eyeball the diff
before committing it.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.io import problem_to_json
from repro.core.round_elimination import speedup
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "golden"
)

#: name -> zero-argument problem factory.  Keep in sync with
#: tests/test_golden.py (which imports this table).
GOLDEN_CASES = {
    "mis3_speedup": lambda: mis_problem(3),
    "sinkless_orientation3_speedup": lambda: sinkless_orientation_problem(3),
    "family320_speedup": lambda: family_problem(3, 2, 0),
}


def golden_text(factory) -> str:
    """The golden payload: one speedup step, canonical JSON, newline-terminated."""
    result = speedup(factory()).problem
    return problem_to_json(result) + "\n"


def check() -> int:
    """Verify the committed corpus without writing; 0 = all current."""
    stale = 0
    for name, factory in GOLDEN_CASES.items():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = golden_text(factory)
        if not os.path.exists(path):
            print(f"{name}.json: MISSING")
            stale += 1
            continue
        with open(path, encoding="utf-8") as handle:
            previous = handle.read()
        if previous != text:
            print(f"{name}.json: STALE")
            stale += 1
        else:
            print(f"{name}.json: current")
    if stale:
        print(
            f"error: {stale} golden file(s) out of date - run "
            "tools/regen_golden.py to regenerate",
            file=sys.stderr,
        )
        return 1
    return 0


def regenerate() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, factory in GOLDEN_CASES.items():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = golden_text(factory)
        previous = None
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                previous = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        status = (
            "unchanged"
            if previous == text
            else ("updated" if previous is not None else "created")
        )
        print(f"{name}.json: {status}")
    return 0


USAGE = """\
usage: python tools/regen_golden.py [--check]

Regenerate (default) or verify (--check) the golden round-elimination
corpus under tests/golden/.

Exit status (unified across repro tooling):
    0  corpus regenerated / all files current
    1  drift: a golden file is missing or stale, or the computation failed
    2  usage error
"""


def main(argv: list[str]) -> int:
    check_only = False
    for argument in argv:
        if argument in ("-h", "--help"):
            print(USAGE, end="")
            return 0
        if argument == "--check":
            check_only = True
        else:
            print(f"error: unknown option {argument}", file=sys.stderr)
            print(USAGE, file=sys.stderr, end="")
            return 2
    try:
        return check() if check_only else regenerate()
    except Exception as error:  # any engine failure must exit non-zero
        print(f"error: golden computation failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
