"""Regenerate the golden round-elimination corpus under tests/golden/.

Run:  PYTHONPATH=src python tools/regen_golden.py

Each golden file is the canonical JSON of ``Rbar(R(P))`` (one full
speedup step, renamed to compact string labels) for a pinned input
problem.  ``tests/test_golden.py`` recomputes these with both the
reference engine and the kernel fast path and diffs byte-for-byte, so
any behavioral drift in the operators — label naming, configuration
sets, canonical ordering — shows up as a golden mismatch with a
readable JSON diff.

Regenerate *only* when an intentional change to the operators or the
renaming scheme alters the expected output, and eyeball the diff
before committing it.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.io import problem_to_json
from repro.core.round_elimination import speedup
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "golden"
)

#: name -> zero-argument problem factory.  Keep in sync with
#: tests/test_golden.py (which imports this table).
GOLDEN_CASES = {
    "mis3_speedup": lambda: mis_problem(3),
    "sinkless_orientation3_speedup": lambda: sinkless_orientation_problem(3),
    "family320_speedup": lambda: family_problem(3, 2, 0),
}


def golden_text(factory) -> str:
    """The golden payload: one speedup step, canonical JSON, newline-terminated."""
    result = speedup(factory()).problem
    return problem_to_json(result) + "\n"


def main() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, factory in GOLDEN_CASES.items():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = golden_text(factory)
        previous = None
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                previous = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        status = (
            "unchanged"
            if previous == text
            else ("updated" if previous is not None else "created")
        )
        print(f"{name}.json: {status}")


if __name__ == "__main__":
    main()
