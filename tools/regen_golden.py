"""Regenerate the golden round-elimination corpus under tests/golden/.

Run:  PYTHONPATH=src python tools/regen_golden.py [--check]
          [--scenario <name>]

Each golden file is the canonical JSON of one operator application —
``Rbar(R(P))`` (a full speedup step) or the Khoury-Schild
self-reduction ``condense(speedup(condense(P)))`` — for a pinned input
problem.  ``tests/test_golden.py`` recomputes these with both the
reference engine and the kernel fast path and diffs byte-for-byte, so
any behavioral drift in the operators — label naming, configuration
sets, canonical ordering — shows up as a golden mismatch with a
readable JSON diff.

The case table is the static classics plus one derived case per
registered scenario (:mod:`repro.scenarios`): registering a scenario
with a fresh ``golden`` declaration adds its case here automatically.
``--scenario <name>`` restricts the run to the golden of one scenario.

``--check`` verifies the committed files against a fresh computation
without writing anything: exit 0 when every file is current, 1 when
any is missing, stale, or *orphaned* — a ``tests/golden/*.json`` no
case references any more, which previously slipped through silently.
Failures of any kind exit non-zero with a one-line ``error:``
diagnostic.

Regenerate *only* when an intentional change to the operators or the
renaming scheme alters the expected output, and eyeball the diff
before committing it.
"""

from __future__ import annotations

import os
import sys
from typing import Callable

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.io import problem_to_json
from repro.core.problem import Problem
from repro.core.round_elimination import speedup
from repro.core.self_reduction import self_reduce
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "golden"
)

#: name -> (zero-argument problem factory, operator).  The static
#: classics; scenario-derived cases are merged in by golden_cases().
STATIC_CASES: dict[str, tuple[Callable[[], Problem], str]] = {
    "mis3_speedup": (lambda: mis_problem(3), "speedup"),
    "sinkless_orientation3_speedup": (
        lambda: sinkless_orientation_problem(3), "speedup",
    ),
    "family320_speedup": (lambda: family_problem(3, 2, 0), "speedup"),
}


def _scenario_cases() -> dict[str, tuple[Callable[[], Problem], str]]:
    """One derived case per registered scenario with a fresh golden name.

    The lemma13 chain scenario points its ``golden`` declaration at an
    existing speedup case (its Delta=16 chain start is too expensive to
    golden directly), so only speedup/self-reduce scenarios derive
    cases — and names already covered statically are left alone.
    """
    from repro.scenarios import load_registry
    from repro.scenarios.runner import build_problem

    cases: dict[str, tuple[Callable[[], Problem], str]] = {}
    for decl, spec in load_registry():
        if spec.operator not in ("speedup", "self-reduce"):
            continue
        cases.setdefault(
            decl.golden,
            (lambda spec=spec: build_problem(spec), spec.operator),
        )
    return cases


def golden_cases() -> dict[str, tuple[Callable[[], Problem], str]]:
    """The full case table: static classics + scenario-derived cases."""
    cases = dict(STATIC_CASES)
    for name, case in _scenario_cases().items():
        cases.setdefault(name, case)
    return cases


#: The resolved table tests import.  Keep in sync with
#: tests/test_golden.py (which imports this table).
GOLDEN_CASES = golden_cases()


def apply_operator(
    factory: Callable[[], Problem], operator: str, *, use_kernel: bool = False
) -> Problem:
    """Run a case's operator on its input problem."""
    problem = factory()
    if operator == "self-reduce":
        return self_reduce(problem, use_kernel=use_kernel).problem
    return speedup(problem, use_kernel=use_kernel).problem


def golden_text(factory: Callable[[], Problem], operator: str) -> str:
    """The golden payload: canonical JSON, newline-terminated."""
    return problem_to_json(apply_operator(factory, operator)) + "\n"


def _orphans(cases: dict) -> list[str]:
    """Committed golden files no case references any more."""
    if not os.path.isdir(GOLDEN_DIR):
        return []
    return sorted(
        entry
        for entry in os.listdir(GOLDEN_DIR)
        if entry.endswith(".json") and entry[: -len(".json")] not in cases
    )


def check(cases: dict, *, all_cases: dict) -> int:
    """Verify the committed corpus without writing; 0 = all current."""
    stale = 0
    for name, (factory, operator) in cases.items():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = golden_text(factory, operator)
        if not os.path.exists(path):
            print(f"{name}.json: MISSING")
            stale += 1
            continue
        with open(path, encoding="utf-8") as handle:
            previous = handle.read()
        if previous != text:
            print(f"{name}.json: STALE")
            stale += 1
        else:
            print(f"{name}.json: current")
    orphans = _orphans(all_cases)
    for orphan in orphans:
        print(f"{orphan}: ORPHAN (no golden case or scenario references it)")
    if stale or orphans:
        problems = []
        if stale:
            problems.append(f"{stale} golden file(s) out of date")
        if orphans:
            problems.append(f"{len(orphans)} orphaned golden file(s)")
        print(
            "error: " + " and ".join(problems) + " - run "
            "tools/regen_golden.py to regenerate, and delete orphans",
            file=sys.stderr,
        )
        return 1
    return 0


def regenerate(cases: dict, *, all_cases: dict) -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, (factory, operator) in cases.items():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = golden_text(factory, operator)
        previous = None
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                previous = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        status = (
            "unchanged"
            if previous == text
            else ("updated" if previous is not None else "created")
        )
        print(f"{name}.json: {status}")
    for orphan in _orphans(all_cases):
        print(
            f"{orphan}: ORPHAN (no golden case or scenario references it "
            "- delete it)"
        )
    return 0


USAGE = """\
usage: python tools/regen_golden.py [--check] [--scenario <name>]

Regenerate (default) or verify (--check) the golden round-elimination
corpus under tests/golden/.  --scenario restricts the run to the
golden case of one registered scenario.

Exit status (unified across repro tooling):
    0  corpus regenerated / all files current
    1  drift: a golden file is missing, stale, or orphaned, or the
       computation failed
    2  usage error or unknown scenario
"""


def main(argv: list[str]) -> int:
    check_only = False
    scenario: str | None = None
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument in ("-h", "--help"):
            print(USAGE, end="")
            return 0
        if argument == "--check":
            check_only = True
        elif argument == "--scenario":
            if index + 1 >= len(argv):
                print("error: --scenario requires a name", file=sys.stderr)
                return 2
            scenario = argv[index + 1]
            index += 1
        else:
            print(f"error: unknown option {argument}", file=sys.stderr)
            print(USAGE, file=sys.stderr, end="")
            return 2
        index += 1
    all_cases = GOLDEN_CASES
    cases = all_cases
    if scenario is not None:
        from repro.robustness.errors import InvalidScenario
        from repro.scenarios import find_scenario

        try:
            decl, _ = find_scenario(scenario)
        except InvalidScenario as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        cases = {decl.golden: all_cases[decl.golden]}
    try:
        if check_only:
            return check(cases, all_cases=all_cases)
        return regenerate(cases, all_cases=all_cases)
    except Exception as error:  # any engine failure must exit non-zero
        print(f"error: golden computation failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
