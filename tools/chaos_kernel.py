"""Seeded chaos driver for the fault-tolerant shard scheduler.

Runs the Delta=4 MIS chain (two speedup steps) on the parallel kernel
path while a :class:`tests.faults.WorkerKiller` SIGKILLs workers on
chosen dispatch sequence numbers, then verifies the recovery contract
end to end:

* the faulted parallel output is byte-identical (via the canonical
  JSON encoding) to the unfaulted serial run;
* the trace actually recorded the injected worker deaths and the
  retries that healed them (``mp.worker_deaths`` / ``mp.retries``);
* the run terminated — the hang this scheduler was built to fix would
  show up here as a CI timeout.

Exit status 0 means all of the above held; 1 with an ``error:`` line
means the recovery contract broke.  The kill set and backoff jitter
are fully seeded, so a given invocation is deterministic and CI can
run the same chaos twice expecting the same answer.

Usage::

    PYTHONPATH=src python tools/chaos_kernel.py [--workers N]
        [--kills SEQ[,SEQ...]] [--seed N]
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)  # for tests.faults (the injector lives there)

from repro.core.io import problem_to_json
from repro.core.kernel.sharding import ShardPolicy, scheduling
from repro.core.round_elimination import speedup
from repro.observability.metrics import total_counters
from repro.observability.trace import Tracer, tracing
from repro.problems.mis import mis_problem

from tests.faults import WorkerKiller

CHAIN_DELTA = 4
CHAIN_STEPS = 2


def run_chain(workers: int | None, policy: ShardPolicy | None) -> str:
    """The Delta=4 MIS chain; returns the canonical JSON of the result."""
    problem = mis_problem(CHAIN_DELTA)
    with scheduling(policy):
        for _ in range(CHAIN_STEPS):
            problem = speedup(
                problem, use_kernel=True, workers=workers
            ).problem
    return problem_to_json(problem)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--kills",
        default="0,1,2",
        help="comma-separated dispatch seqs to SIGKILL (first attempts)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="backoff-jitter RNG seed"
    )
    options = parser.parse_args(argv)
    kill_seqs = {int(part) for part in options.kills.split(",") if part}

    serial = run_chain(workers=None, policy=None)
    policy = ShardPolicy(
        worker_probe=WorkerKiller(kill_seqs),
        seed=options.seed,
        backoff_base_seconds=0.01,
        backoff_cap_seconds=0.05,
    )
    tracer = Tracer()
    started = time.perf_counter()
    with tracing(tracer):
        chaotic = run_chain(workers=options.workers, policy=policy)
    elapsed = time.perf_counter() - started
    totals = total_counters(tracer.finish())
    recovery = {
        counter: totals.get(counter, 0)
        for counter in (
            "mp.shards",
            "mp.worker_deaths",
            "mp.retries",
            "mp.shard_splits",
        )
    }
    print(
        f"chaos: workers={options.workers} kills={sorted(kill_seqs)} "
        f"seed={options.seed} elapsed={elapsed:.2f}s"
    )
    print(f"recovery counters: {json.dumps(recovery)}")
    if chaotic != serial:
        print(
            "error: chaotic parallel output diverged from the serial run",
            file=sys.stderr,
        )
        return 1
    # Each chain step builds its own scheduler (fresh seq counter), so
    # every configured seq gets killed once per step.
    expected_deaths = len(kill_seqs) * CHAIN_STEPS
    if recovery["mp.worker_deaths"] < expected_deaths:
        print(
            f"error: expected >= {expected_deaths} worker deaths, "
            f"trace shows {recovery['mp.worker_deaths']} - the injector "
            "did not bite",
            file=sys.stderr,
        )
        return 1
    if recovery["mp.retries"] + recovery["mp.shard_splits"] == 0:
        print(
            "error: deaths were recorded but no retries or splits - "
            "recovery path untested",
            file=sys.stderr,
        )
        return 1
    print("PASS: byte-identical output after injected worker deaths")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
