"""Render and compare JSON-lines traces from the observability layer.

Run:  PYTHONPATH=src python tools/trace_report.py report <trace.jsonl>
      PYTHONPATH=src python tools/trace_report.py diff <a.jsonl> <b.jsonl>

``report`` validates the trace against the documented schema and prints
the per-phase table: one row per span name with occurrence count, total
wall-clock inside those spans, and every counter summed.

``diff`` compares the *semantic* counter profiles of two traces — the
engine-independent work measures (labels in/out, right-closed sets,
configuration counts; see
:data:`repro.observability.schema.SEMANTIC_COUNTERS`).  Timing- and
cache-related counters are deliberately ignored: a reference trace and
a kernel trace of the same workload must agree semantically while
differing wildly in cache behavior.  Exit status is 0 on zero drift,
1 when the profiles differ (each drifting counter is printed), and 2
on unreadable or schema-invalid input.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.observability.metrics import (
    diff_semantic_profiles,
    render_phase_table,
    semantic_profile,
    trace_summary_line,
)
from repro.observability.schema import load_trace

USAGE = (
    "usage: trace_report.py report <trace.jsonl>\n"
    "       trace_report.py diff <a.jsonl> <b.jsonl>"
)


def _fail(message: str) -> "SystemExit":
    """One-line ``error:`` diagnostic on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(path: str) -> list[dict]:
    """A validated trace, or a one-line ``error:`` exit."""
    try:
        return load_trace(path)
    except OSError as error:
        raise _fail(f"cannot read {path}: {error}")
    except ValueError as error:
        raise _fail(f"{path} is not a valid trace: {error}")


def report(path: str) -> int:
    records = _load(path)
    print(trace_summary_line(records))
    print()
    print(render_phase_table(records))
    return 0


def diff(first_path: str, second_path: str) -> int:
    first = semantic_profile(_load(first_path))
    second = semantic_profile(_load(second_path))
    drift = diff_semantic_profiles(first, second)
    if not drift:
        print(
            f"semantic counters agree: {first_path} == {second_path} "
            f"({sum(len(counters) for counters in first.values())} counters "
            f"over {len(first)} span names)"
        )
        return 0
    for line in drift:
        print(f"  {line}")
    print(f"error: {len(drift)} semantic counter(s) drifted", file=sys.stderr)
    return 1


def main(argv: list[str]) -> int:
    if not argv:
        print(USAGE, file=sys.stderr)
        return 2
    command, *operands = argv
    if command == "report":
        if len(operands) != 1:
            raise _fail("report takes exactly one trace file\n" + USAGE)
        return report(operands[0])
    if command == "diff":
        if len(operands) != 2:
            raise _fail("diff takes exactly two trace files\n" + USAGE)
        return diff(operands[0], operands[1])
    raise _fail(f"unknown command {command!r}\n" + USAGE)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
