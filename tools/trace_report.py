"""Render and compare JSON-lines traces from the observability layer.

Run:  PYTHONPATH=src python tools/trace_report.py report <trace.jsonl>
      PYTHONPATH=src python tools/trace_report.py diff <a.jsonl> <b.jsonl>
      PYTHONPATH=src python tools/trace_report.py cache <trace.jsonl> \
          [--min-hit-rate <fraction>]

``report`` validates the trace against the documented schema and prints
the per-phase table: one row per span name with occurrence count, total
wall-clock inside those spans, and every counter summed.

``diff`` compares the *semantic* counter profiles of two traces — the
engine-independent work measures (labels in/out, right-closed sets,
configuration counts; see
:data:`repro.observability.schema.SEMANTIC_COUNTERS`).  Timing- and
cache-related counters are deliberately ignored: a reference trace and
a kernel trace of the same workload must agree semantically while
differing wildly in cache behavior.  Exit status is 0 on zero drift,
1 when the profiles differ (each drifting counter is printed), and 2
on unreadable or schema-invalid input.

``cache`` summarizes the operator-cache counters (``cache.hit``,
``cache.miss``, ``cache.bytes``, ``cache.corrupt``) of one trace and
prints the hit rate.  With ``--min-hit-rate`` the exit status is 1
when the observed rate falls below the threshold or when the trace
shows no cache activity at all — CI uses this to assert that a warm
rerun actually hit the cache.

``hotspots`` aggregates the ``prof.op`` spans a profiled run
(:func:`repro.observability.profiling.profiling`) emits into a
hottest-first table — per-op sample count, summed wall milliseconds,
share of the profiled total, net allocated blocks — plus a coverage
line relating the profiled total to the traced kernel wall time
(outermost ``engine="kernel"`` spans).  With ``--min-coverage`` the
exit status is 1 when the profiled sections account for less than the
given fraction of that wall time, or when the trace holds no profiler
samples at all — the hot-path bench gate uses this to prove the
profiler actually saw the run it claims to explain.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.observability.metrics import (
    diff_semantic_profiles,
    hotspot_profile,
    render_hotspot_table,
    render_phase_table,
    semantic_profile,
    total_counters,
    trace_summary_line,
)
from repro.observability.schema import load_trace

USAGE = (
    "usage: trace_report.py report <trace.jsonl>\n"
    "       trace_report.py diff <a.jsonl> <b.jsonl>\n"
    "       trace_report.py cache <trace.jsonl> [--min-hit-rate <fraction>]\n"
    "       trace_report.py hotspots <trace.jsonl> [--min-coverage <fraction>]\n"
    "\n"
    "Exit status (unified across repro tooling):\n"
    "    0  success / zero drift / gate threshold met\n"
    "    1  drift: semantic counters differ, or cache/coverage gate failed\n"
    "    2  usage error or unreadable/schema-invalid trace"
)


def _fail(message: str) -> "SystemExit":
    """One-line ``error:`` diagnostic on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(path: str) -> list[dict]:
    """A validated trace, or a one-line ``error:`` exit."""
    try:
        return load_trace(path)
    except OSError as error:
        raise _fail(f"cannot read {path}: {error}")
    except ValueError as error:
        raise _fail(f"{path} is not a valid trace: {error}")


def report(path: str) -> int:
    records = _load(path)
    print(trace_summary_line(records))
    print()
    print(render_phase_table(records))
    return 0


def diff(first_path: str, second_path: str) -> int:
    first = semantic_profile(_load(first_path))
    second = semantic_profile(_load(second_path))
    drift = diff_semantic_profiles(first, second)
    if not drift:
        print(
            f"semantic counters agree: {first_path} == {second_path} "
            f"({sum(len(counters) for counters in first.values())} counters "
            f"over {len(first)} span names)"
        )
        return 0
    for line in drift:
        print(f"  {line}")
    print(f"error: {len(drift)} semantic counter(s) drifted", file=sys.stderr)
    return 1


def cache(path: str, minimum_hit_rate: float | None) -> int:
    totals = total_counters(_load(path))
    hits = totals.get("cache.hit", 0)
    misses = totals.get("cache.miss", 0)
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    print(
        f"operator cache: hits={hits} misses={misses} "
        f"hit_rate={rate:.2%} stored_bytes={totals.get('cache.bytes', 0)} "
        f"corrupt={totals.get('cache.corrupt', 0)}"
    )
    if minimum_hit_rate is not None:
        if not lookups:
            print(
                "error: no operator cache activity in trace "
                "(was a cache active?)",
                file=sys.stderr,
            )
            return 1
        if rate < minimum_hit_rate:
            print(
                f"error: hit rate {rate:.2%} below required "
                f"{minimum_hit_rate:.2%}",
                file=sys.stderr,
            )
            return 1
    return 0


def hotspots(path: str, minimum_coverage: float | None) -> int:
    records = _load(path)
    print(render_hotspot_table(records))
    if minimum_coverage is not None:
        profile = hotspot_profile(records)
        if not profile["ops"]:
            print(
                "error: no profiler samples in trace "
                "(was profiling() active?)",
                file=sys.stderr,
            )
            return 1
        coverage = profile["coverage"]
        if coverage is None:
            print(
                "error: no traced kernel spans to cover "
                "(was the kernel engine used under tracing()?)",
                file=sys.stderr,
            )
            return 1
        if coverage < minimum_coverage:
            print(
                f"error: profiled sections cover {coverage:.1%} of kernel "
                f"wall time, below required {minimum_coverage:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print(USAGE, file=sys.stderr)
        return 2
    if argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, *operands = argv
    if command == "report":
        if len(operands) != 1:
            raise _fail("report takes exactly one trace file\n" + USAGE)
        return report(operands[0])
    if command == "diff":
        if len(operands) != 2:
            raise _fail("diff takes exactly two trace files\n" + USAGE)
        return diff(operands[0], operands[1])
    if command == "cache":
        minimum: float | None = None
        if "--min-hit-rate" in operands:
            where = operands.index("--min-hit-rate")
            try:
                minimum = float(operands[where + 1])
            except (IndexError, ValueError):
                raise _fail("--min-hit-rate needs a number\n" + USAGE)
            operands = operands[:where] + operands[where + 2 :]
        if len(operands) != 1:
            raise _fail("cache takes exactly one trace file\n" + USAGE)
        return cache(operands[0], minimum)
    if command == "hotspots":
        minimum_coverage: float | None = None
        if "--min-coverage" in operands:
            where = operands.index("--min-coverage")
            try:
                minimum_coverage = float(operands[where + 1])
            except (IndexError, ValueError):
                raise _fail("--min-coverage needs a number\n" + USAGE)
            operands = operands[:where] + operands[where + 2 :]
        if len(operands) != 1:
            raise _fail("hotspots takes exactly one trace file\n" + USAGE)
        return hotspots(operands[0], minimum_coverage)
    raise _fail(f"unknown command {command!r}\n" + USAGE)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
