"""Run registered scenario specs and check their pinned expectations.

Run:  PYTHONPATH=src python tools/run_scenario.py list
      PYTHONPATH=src python tools/run_scenario.py run <name> [--kernel]
          [--workers <n>]
      PYTHONPATH=src python tools/run_scenario.py run --all [--kernel]

``list`` prints one row per registered scenario: its name, family,
chain operator, step count, and the exact certified round count the
spec pins.

``run`` resolves a scenario (by its spec ``name`` field) into a base
problem, iterates its chain operator, and checks every expectation the
spec declares — steps taken, certified rounds under the spec's
zero-round policy, fixed-point shape.  ``--all`` runs every registered
scenario in registry order.  ``--kernel`` routes the chain through the
interned bitmask engine; the outcome must be identical (the
differential tests enforce this), and ``--workers`` additionally
parallelizes the kernel operators.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.robustness.errors import ReproError
from repro.scenarios import (
    ScenarioSpec,
    find_scenario,
    load_registry,
    run_scenario,
)

USAGE = (
    "usage: run_scenario.py list\n"
    "       run_scenario.py run <name> [--kernel] [--workers <n>]\n"
    "       run_scenario.py run --all [--kernel] [--workers <n>]\n"
    "\n"
    "Exit status (unified across repro tooling):\n"
    "    0  success: every expectation of the scenario(s) held\n"
    "    1  drift: a chain ran but violated a pinned expectation\n"
    "    2  usage error, unknown scenario, or invalid spec file"
)


def _fail(message: str) -> "SystemExit":
    """One-line ``error:`` diagnostic on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def list_scenarios() -> int:
    try:
        registry = load_registry()
    except ReproError as error:
        raise _fail(str(error))
    print(
        f"{'name':34s} {'family':20s} {'operator':12s} "
        f"{'steps':>5s} {'certified':>9s}"
    )
    for _, spec in registry:
        print(
            f"{spec.name:34s} {spec.family:20s} {spec.operator:12s} "
            f"{spec.steps:5d} {spec.certified:9d}"
        )
    return 0


def _run_one(spec: ScenarioSpec, use_kernel: bool, workers: int | None) -> int:
    try:
        run = run_scenario(spec, use_kernel=use_kernel, workers=workers)
    except ReproError as error:
        raise _fail(f"scenario {spec.name!r} did not run: {error}")
    labels = " -> ".join(str(len(p.alphabet)) for p in run.problems)
    print(
        f"{spec.name}: steps={run.steps} certified={run.certified_rounds} "
        f"fixed_point={run.reached_fixed_point} labels {labels}"
    )
    for failure in run.failures:
        print(f"error: {spec.name}: {failure}", file=sys.stderr)
    return 0 if run.ok else 1


def run(operands: list[str]) -> int:
    use_kernel = "--kernel" in operands
    operands = [arg for arg in operands if arg != "--kernel"]
    workers: int | None = None
    if "--workers" in operands:
        where = operands.index("--workers")
        try:
            workers = int(operands[where + 1])
        except (IndexError, ValueError):
            raise _fail("--workers needs an integer\n" + USAGE)
        operands = operands[:where] + operands[where + 2 :]
    if workers is not None and not use_kernel:
        raise _fail("--workers requires --kernel")
    if operands == ["--all"]:
        try:
            registry = load_registry()
        except ReproError as error:
            raise _fail(str(error))
        worst = 0
        for _, spec in registry:
            worst = max(worst, _run_one(spec, use_kernel, workers))
        return worst
    if len(operands) != 1:
        raise _fail("run takes exactly one scenario name or --all\n" + USAGE)
    try:
        _, spec = find_scenario(operands[0])
    except ReproError as error:
        raise _fail(str(error))
    return _run_one(spec, use_kernel, workers)


def main(argv: list[str]) -> int:
    if not argv:
        print(USAGE, file=sys.stderr)
        return 2
    if argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, *operands = argv
    if command == "list":
        if operands:
            raise _fail("list takes no operands\n" + USAGE)
        return list_scenarios()
    if command == "run":
        return run(operands)
    raise _fail(f"unknown command {command!r}\n" + USAGE)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
