"""Serve the round-elimination HTTP API, or smoke-test it end to end.

Run:  PYTHONPATH=src python tools/serve.py serve [--port <n>]
          [--host <addr>] [--workers <n>] [--job-dir <dir>]
      PYTHONPATH=src python tools/serve.py smoke [--job-dir <dir>]
          [--trace <out.jsonl>]

``serve`` starts a long-running server (default port 8421, job state
under ``--job-dir``, default ``.repro-service/``) and blocks until
interrupted.  Job state and the operator cache live in the job
directory, so restarting over the same directory resumes unfinished
jobs and re-serves finished ones byte-identically.

``smoke`` is the self-contained CI gate: it boots a server on an
ephemeral port, exercises every endpoint over a real socket — health,
the scenario registry, one full job lifecycle with the live event
stream, the structured-error path — and then submits the same scenario
a second time, asserting the duplicate is deduped (``deduped: true``,
``service.dedup`` counted, zero operator cache misses).  ``--trace``
writes the master trace (every job grafted) as JSON lines for
``tools/trace_report.py``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import urllib.error
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.observability.trace import Tracer
from repro.robustness.errors import ReproError
from repro.service import ReproService

USAGE = (
    "usage: serve.py serve [--port <n>] [--host <addr>] [--workers <n>]\n"
    "                      [--job-dir <dir>]\n"
    "       serve.py smoke [--job-dir <dir>] [--trace <out.jsonl>]\n"
    "\n"
    "Exit status (unified across repro tooling):\n"
    "    0  success: server ran / every smoke gate held\n"
    "    1  drift: the service answered but a smoke gate failed\n"
    "    2  usage error or the server could not start"
)

#: Default port of the long-running mode (smoke always uses ephemeral).
DEFAULT_PORT = 8421


def _fail(message: str) -> "SystemExit":
    """One-line ``error:`` diagnostic on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _option(operands: list[str], name: str, default: str) -> tuple[str, list[str]]:
    if name not in operands:
        return default, operands
    where = operands.index(name)
    try:
        value = operands[where + 1]
    except IndexError:
        raise _fail(f"{name} needs a value\n" + USAGE)
    return value, operands[:where] + operands[where + 2 :]


def _int_option(
    operands: list[str], name: str, default: int
) -> tuple[int, list[str]]:
    raw, operands = _option(operands, name, str(default))
    try:
        return int(raw), operands
    except ValueError:
        raise _fail(f"{name} needs an integer\n" + USAGE)


def serve(operands: list[str]) -> int:
    port, operands = _int_option(operands, "--port", DEFAULT_PORT)
    workers, operands = _int_option(operands, "--workers", 2)
    host, operands = _option(operands, "--host", "127.0.0.1")
    job_dir, operands = _option(operands, "--job-dir", ".repro-service")
    if operands:
        raise _fail(f"unexpected operands {operands!r}\n" + USAGE)
    try:
        service = ReproService(
            job_dir, host=host, port=port, workers=workers
        ).start()
    except (ReproError, OSError) as error:
        raise _fail(f"cannot start server: {error}")
    print(f"serving on {service.url} (jobs in {job_dir}; ctrl-c stops)")
    if service.orchestrator.resumed_jobs:
        print(f"resumed {service.orchestrator.resumed_jobs} unfinished job(s)")
    try:
        threading.Event().wait()  # parks the main thread until ctrl-c
    except KeyboardInterrupt:
        print("stopping")
        service.stop()
        return 0


# ---------------------------------------------------------------------------
# The smoke gate
# ---------------------------------------------------------------------------

#: Scenario the smoke mode runs end to end (the quick-gate scenario —
#: the cheapest registered chain).
SMOKE_SCENARIO = "maximal-matching2-selfreduce"


class SmokeFailure(Exception):
    """One smoke gate did not hold (exit status 1, not 2)."""


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return dict(json.loads(response.read()))


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return dict(json.loads(response.read()))


def _check(condition: bool, gate: str) -> None:
    if not condition:
        raise SmokeFailure(gate)
    print(f"ok: {gate}")


def _smoke_gates(service: ReproService) -> None:
    base = service.url
    health = _get(base, "/v1/healthz")
    _check(health["ok"] is True, "healthz answers")
    rows = _get(base, "/v1/scenarios")["scenarios"]
    _check(
        any(row["name"] == SMOKE_SCENARIO for row in rows),
        "scenario registry served",
    )

    first = _post(base, "/v1/jobs", {"scenario": SMOKE_SCENARIO})
    _check(first["state"] == "queued", "job accepted")
    service.orchestrator.wait(first["job_id"], timeout=120)
    done = _get(base, "/v1/jobs/" + first["job_id"])
    _check(done["state"] == "done", "job completed")
    _check(done["result"]["ok"] is True, "scenario expectations held")

    with urllib.request.urlopen(
        base + f"/v1/jobs/{first['job_id']}/events", timeout=60
    ) as stream:
        lines = [line for line in stream.read().decode().splitlines() if line]
    last = json.loads(lines[-1])
    _check(
        last == {"type": "job.state", "job": first["job_id"], "state": "done"},
        "event stream ends with the terminal state",
    )

    second = _post(base, "/v1/jobs", {"scenario": SMOKE_SCENARIO})
    service.orchestrator.wait(second["job_id"], timeout=120)
    dup = _get(base, "/v1/jobs/" + second["job_id"])
    _check(dup["state"] == "done", "duplicate job completed")
    _check(dup["deduped"] is True, "duplicate was deduped")
    _check(
        dup["counters"].get("service.dedup") == 1,
        "service.dedup counted once",
    )
    _check(
        dup["counters"].get("cache.miss", 0) == 0,
        "duplicate hit only warm cache (no recomputation)",
    )
    _check(dup["result"] == done["result"], "deduped result identical")

    try:
        _post(base, "/v1/jobs", {"scenario": "no-such-scenario"})
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        _check(
            error.code == 400 and body["type"] == "InvalidScenario",
            "unknown scenario is a structured 400",
        )
    else:
        raise SmokeFailure("unknown scenario was accepted")


def smoke(operands: list[str]) -> int:
    job_dir, operands = _option(operands, "--job-dir", ".repro-service-smoke")
    trace_out, operands = _option(operands, "--trace", "")
    if operands:
        raise _fail(f"unexpected operands {operands!r}\n" + USAGE)
    master = Tracer()
    try:
        service = ReproService(job_dir, port=0, workers=2, master=master)
        service.start()
    except (ReproError, OSError) as error:
        raise _fail(f"cannot start server: {error}")
    try:
        _smoke_gates(service)
    except SmokeFailure as failure:
        print(f"error: smoke gate failed: {failure}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError, KeyError) as error:
        print(f"error: smoke run broke: {error}", file=sys.stderr)
        return 1
    finally:
        service.stop()
        if trace_out:
            master.write(trace_out)
            print(f"trace written to {trace_out}")
    print("smoke: all gates held")
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print(USAGE, file=sys.stderr)
        return 2
    if argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, *operands = argv
    if command == "serve":
        return serve(operands)
    if command == "smoke":
        return smoke(operands)
    raise _fail(f"unknown command {command!r}\n" + USAGE)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
