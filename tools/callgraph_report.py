"""Dump the analyzer's whole-program call graph as text or DOT.

Run:  PYTHONPATH=src python tools/callgraph_report.py [options] [PATH ...]

Renders the same module-qualified call graph the AN001-AN004 detectors
run over (:mod:`repro.analysis.callgraph`), so a finding's call chain
can be audited visually and the resolver's blind spots inspected.
With no PATH the installed ``repro`` package tree is scanned.

Options:
    --format text|dot   output format (default: text edge list)
    --root NAME         restrict to the call closure of one function;
                        NAME matches a qualname suffix
                        (``KernelChain.run`` or a full dotted path)
    --hotpath           restrict to the closures of ``# hotpath``
                        functions — the AN001 audit surface
    --threads           restrict to the closures of thread roots
                        (``Thread(target=...)`` and ``do_*`` handlers)
                        — the AN003 audit surface
    --unresolved        list unresolved call sites instead of edges
                        (duck-typed receivers the resolver cannot link)
    --stats             print one summary line and exit

Exit status (unified across repro tooling):
    0  success
    1  (unused; reports never gate)
    2  usage error, unknown root, or unreadable/unparseable input
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro
from repro.analysis.callgraph import AnalysisError, CallGraph, build_call_graph
from repro.analysis.facts import ProgramFacts, collect_facts

USAGE = (
    "usage: callgraph_report.py [--format text|dot] [--root NAME] "
    "[--hotpath] [--threads]\n"
    "                           [--unresolved] [--stats] [PATH ...]\n"
    "\n"
    "Exit status (unified across repro tooling):\n"
    "    0  success\n"
    "    1  (unused; reports never gate)\n"
    "    2  usage error, unknown root, or unreadable/unparseable input"
)


def _fail(message: str) -> SystemExit:
    """One-line ``error:`` diagnostic on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _match_root(graph: CallGraph, name: str) -> str:
    """The unique function qualname ``name`` suffix-matches.

    Ambiguity and no-match are both usage errors; the candidates are
    listed so the caller can qualify the name further.
    """
    if name in graph.functions:
        return name
    matches = sorted(
        qualname
        for qualname in graph.functions
        if qualname.endswith(f".{name}")
    )
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise _fail(
            f"--root {name!r} is ambiguous; candidates: " + ", ".join(matches)
        )
    raise _fail(f"--root {name!r} matches no function")


def _selected_roots(
    graph: CallGraph,
    facts: ProgramFacts,
    root: str | None,
    hotpath: bool,
    threads: bool,
) -> list[str] | None:
    """The closure roots the flags select, or ``None`` for everything."""
    roots: list[str] = []
    if root is not None:
        roots.append(_match_root(graph, root))
    if hotpath:
        roots.extend(
            qualname
            for qualname, summary in sorted(facts.functions.items())
            if summary.hotpath
        )
    if threads:
        roots.extend(sorted(graph.thread_roots))
    if not (root or hotpath or threads):
        return None
    return roots


def _visible_functions(graph: CallGraph, roots: list[str] | None) -> set[str]:
    if roots is None:
        return set(graph.functions)
    return graph.reachable(roots)


def render_text(graph: CallGraph, visible: set[str]) -> list[str]:
    """One ``caller -> callee  [kind] line N`` row per edge."""
    rows = []
    for caller in sorted(visible):
        for edge in graph.callees(caller):
            if edge.callee in visible:
                rows.append(
                    f"{edge.caller} -> {edge.callee}  "
                    f"[{edge.kind}] line {edge.line}"
                )
    return rows


def render_dot(graph: CallGraph, visible: set[str]) -> list[str]:
    """A Graphviz digraph; edge style encodes the edge kind."""
    styles = {
        "call": "solid",
        "nested": "dotted",
        "ref": "dashed",
        "target": "bold",
        "dispatch": "bold",
    }
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for qualname in sorted(visible):
        label = qualname.removeprefix("repro.")
        lines.append(f'  "{qualname}" [label="{label}"];')
    for caller in sorted(visible):
        for edge in graph.callees(caller):
            if edge.callee in visible:
                style = styles.get(edge.kind, "solid")
                lines.append(
                    f'  "{edge.caller}" -> "{edge.callee}" '
                    f'[style={style}, label="{edge.kind}"];'
                )
    lines.append("}")
    return lines


def render_unresolved(graph: CallGraph, visible: set[str]) -> list[str]:
    rows = []
    for caller in sorted(visible):
        for description in graph.unresolved.get(caller, []):
            rows.append(f"{caller}: {description}")
    return rows


def main(argv: list[str]) -> int:
    paths: list[str] = []
    output_format = "text"
    root: str | None = None
    hotpath = False
    threads = False
    unresolved = False
    stats = False
    arguments = list(argv)
    while arguments:
        argument = arguments.pop(0)
        if argument in ("-h", "--help"):
            print(__doc__)
            return 0
        if argument in ("--format", "--root"):
            if not arguments:
                raise _fail(f"{argument} needs a value")
            value = arguments.pop(0)
            if argument == "--format":
                if value not in ("text", "dot"):
                    raise _fail(f"--format must be text or dot, not {value!r}")
                output_format = value
            else:
                root = value
            continue
        if argument == "--hotpath":
            hotpath = True
            continue
        if argument == "--threads":
            threads = True
            continue
        if argument == "--unresolved":
            unresolved = True
            continue
        if argument == "--stats":
            stats = True
            continue
        if argument.startswith("-"):
            raise _fail(f"unknown option {argument}\n{USAGE}")
        paths.append(argument)
    if not paths:
        paths = [os.path.dirname(os.path.abspath(repro.__file__))]

    try:
        graph = build_call_graph(paths)
    except AnalysisError as error:
        raise _fail(str(error)) from error
    facts = collect_facts(graph)
    roots = _selected_roots(graph, facts, root, hotpath, threads)
    visible = _visible_functions(graph, roots)

    if stats:
        unresolved_count = sum(
            len(items) for items in graph.unresolved.values()
        )
        print(
            f"callgraph: {len(graph.modules)} modules, "
            f"{len(graph.functions)} functions, {len(graph.edges)} edges, "
            f"{len(graph.thread_roots)} thread roots, "
            f"{unresolved_count} unresolved call sites, "
            f"{len(visible)} selected"
        )
        return 0
    if unresolved:
        lines = render_unresolved(graph, visible)
    elif output_format == "dot":
        lines = render_dot(graph, visible)
    else:
        lines = render_text(graph, visible)
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Piping into `head` is the expected way to browse a dump.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)
