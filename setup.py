"""Setuptools shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-use-pep517`` (the legacy editable path) works
in offline environments that lack the ``wheel`` package required by
PEP 660 editable builds.
"""

from setuptools import setup

setup()
