"""A tiny round-eliminator CLI, in the spirit of Olivetti's tool [36].

Run:  python examples/round_eliminator_cli.py [steps] [--kernel [--workers N]]
          [--self-reduce] [--max-retries N] [--shard-bytes N] [--spill DIR]
          [--cache] [--trace out.jsonl] [--metrics]

Reads a problem from stdin in the paper's condensed syntax — node
configurations, a blank line, then edge configurations — and applies
the requested number of Rbar(R(.)) speedup steps, printing the renamed
problem and its diagrams after each.  Press Ctrl-D (EOF) after the edge
constraint.  With no stdin input, demonstrates on sinkless orientation.
``--self-reduce`` applies the Khoury-Schild self-reduction
``condense(speedup(condense(.)))`` instead of the plain speedup at each
step, and reports when the chain hits an isomorphism fixed point.
``--kernel`` routes the operators through the interned bitmask fast
path (identical output, measured in benchmarks/bench_kernel.py), and
``--workers N`` additionally parallelizes the Rbar maximization DFS
through the supervised shard scheduler.  Its knobs ride along:
``--max-retries N`` caps per-shard retries before the degradation
ladder, ``--shard-bytes N`` bounds the aggregate size estimate of
in-flight shards (memory admission), and ``--spill DIR`` seals each
finished shard to disk so an interrupted run resumes from its
completed work (all three imply ``--workers``; output stays
byte-identical either way).
``--trace out.jsonl`` writes the run's span trace as JSON lines and
``--metrics`` prints the per-phase counter table after the run.
``--cache`` memoizes operator results in the content-addressed store
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) so a rerun of
the same chain is served from disk; the hit/miss totals are printed
when the run finishes.

Example input (MIS, Delta = 3):

    M^3
    P O^2

    M [PO]
    O O
"""

import contextlib
import sys

from repro.core.cache import OperatorCache, caching, default_cache_dir
from repro.core.diagram import edge_diagram, node_diagram
from repro.core.kernel.sharding import ShardPolicy, scheduling
from repro.core.problem import Problem
from repro.core.round_elimination import speedup
from repro.core.self_reduction import self_reduce
from repro.core.solvability import zero_round_solvable_pn
from repro.observability.cli import cli_tracing
from repro.problems.classic import sinkless_orientation_problem


def read_problem_from_stdin() -> Problem | None:
    if sys.stdin.isatty():
        return None
    text = sys.stdin.read()
    if not text.strip():
        return None
    node_lines: list[str] = []
    edge_lines: list[str] = []
    current = node_lines
    for line in text.splitlines():
        if not line.strip():
            if node_lines:
                current = edge_lines
            continue
        current.append(line.strip())
    return Problem.from_text(node_lines, edge_lines, name="stdin problem")


def _int_option(arguments: list[str], index: int, name: str) -> int:
    if index + 1 >= len(arguments):
        raise SystemExit(f"error: {name} requires a value")
    try:
        return int(arguments[index + 1])
    except ValueError:
        raise SystemExit(
            f"error: {name} expects an integer, got {arguments[index + 1]!r}"
        )


def main() -> None:
    arguments = sys.argv[1:]
    use_kernel = False
    workers = None
    max_retries = None
    shard_bytes = None
    spill_dir = None
    trace_path = None
    metrics = False
    use_cache = False
    use_self_reduce = False
    positional: list[str] = []
    index = 0
    while index < len(arguments):
        argument = arguments[index]
        if argument == "--kernel":
            use_kernel = True
        elif argument == "--workers":
            workers = _int_option(arguments, index, "--workers")
            index += 1
        elif argument == "--max-retries":
            max_retries = _int_option(arguments, index, "--max-retries")
            index += 1
        elif argument == "--shard-bytes":
            shard_bytes = _int_option(arguments, index, "--shard-bytes")
            index += 1
        elif argument == "--spill":
            if index + 1 >= len(arguments):
                raise SystemExit("error: --spill requires a directory")
            spill_dir = arguments[index + 1]
            index += 1
        elif argument == "--trace":
            if index + 1 >= len(arguments):
                raise SystemExit("error: --trace requires a path")
            trace_path = arguments[index + 1]
            index += 1
        elif argument == "--metrics":
            metrics = True
        elif argument == "--cache":
            use_cache = True
        elif argument == "--self-reduce":
            use_self_reduce = True
        elif argument.startswith("-"):
            raise SystemExit(f"error: unknown option {argument}")
        else:
            positional.append(argument)
        index += 1
    if workers is not None and not use_kernel:
        raise SystemExit("error: --workers requires --kernel")
    scheduler_knobs = (max_retries, shard_bytes, spill_dir)
    if any(knob is not None for knob in scheduler_knobs) and workers is None:
        raise SystemExit(
            "error: --max-retries/--shard-bytes/--spill require --workers"
        )
    try:
        steps = int(positional[0]) if positional else 2
    except ValueError:
        raise SystemExit(f"error: steps must be an integer, got {positional[0]!r}")
    problem = read_problem_from_stdin()
    if problem is None:
        print("(no stdin input - demonstrating on sinkless orientation)")
        problem = sinkless_orientation_problem(3)
    if use_kernel:
        print("(engine: kernel fast path" + (f", {workers} workers)" if workers else ")"))
    store = None
    if use_cache:
        store = OperatorCache(default_cache_dir())
        print(f"(operator cache: {store.directory})")
    cache_context = caching(store) if store is not None else contextlib.nullcontext()
    policy = None
    if any(knob is not None for knob in scheduler_knobs):
        policy = ShardPolicy(
            max_retries=max_retries,
            max_inflight_bytes=shard_bytes,
            spill_dir=spill_dir,
        )
        print(
            "(shard scheduler: "
            f"max_retries={max_retries} shard_bytes={shard_bytes} "
            f"spill={spill_dir})"
        )
    with cli_tracing(trace_path, metrics), cache_context, scheduling(policy):
        for step_index in range(steps + 1):
            print(f"=== step {step_index} ===")
            print(problem.render())
            print("edge diagram:")
            print(edge_diagram(problem).render() or "  (no relations)")
            print("node diagram:")
            print(node_diagram(problem).render() or "  (no relations)")
            print(
                "0-round solvable (PN):",
                zero_round_solvable_pn(problem, use_kernel=use_kernel),
            )
            print()
            if step_index == steps:
                break
            if use_self_reduce:
                step = self_reduce(problem, use_kernel=use_kernel, workers=workers)
                if step.fixed_point:
                    print("(self-reduction fixed point: the chain repeats from here)")
                problem = step.problem
            else:
                problem = speedup(
                    problem, use_kernel=use_kernel, workers=workers
                ).problem
            problem.name = f"step {step_index + 1}"
    if store is not None:
        print(store.summary_line())


if __name__ == "__main__":
    main()
