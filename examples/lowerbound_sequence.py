"""The Omega(log Delta) lower-bound chain of Lemma 13, end to end.

Run:  python examples/lowerbound_sequence.py [delta] [k]
          [--checkpoint DIR] [--max-chain-steps N] [--wall-clock S]
          [--trace out.jsonl] [--metrics]

Builds the sequence Pi_i = Pi_Delta(floor(Delta / 2^(3i)), k + i),
checks every side condition (Corollary 10, Lemma 11's direction, the
0-round impossibility of Lemma 12), machine-verifies one speedup step
with the round-elimination engine when Delta is small enough, then
lifts the chain through Theorem 14 into the Theorem 1 / Corollary 2
numbers.

With ``--checkpoint DIR`` the chain construction is restartable: the
completed prefix is persisted after every step, so a killed run (a
budget trip, a crash, Ctrl-C) resumes from where it stopped and
produces output identical to an uninterrupted run.  ``--trace`` writes
the run's span trace as JSON lines; ``--metrics`` prints the per-phase
counter table at the end.
"""

import sys

from repro.analysis.tables import Table
from repro.lowerbound.lemma6 import verify_lemma6
from repro.lowerbound.lemma8 import verify_lemma8_argument
from repro.lowerbound.lift import (
    lower_bound_summary,
    verify_theorem14_premises,
)
from repro.lowerbound.sequence import run_chain, verify_chain_arithmetic
from repro.observability.cli import cli_tracing
from repro.robustness.budget import Budget
from repro.robustness.checkpointing import CheckpointStore


def _flag_value(argv: list[str], index: int) -> str:
    if index + 1 >= len(argv):
        raise SystemExit(f"error: {argv[index]} requires a value")
    return argv[index + 1]


def parse_arguments(argv: list[str]):
    positional = []
    checkpoint_dir = None
    max_chain_steps = None
    wall_clock = None
    trace_path = None
    metrics = False
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--checkpoint":
            checkpoint_dir = _flag_value(argv, index)
            index += 1
        elif argument == "--max-chain-steps":
            max_chain_steps = int(_flag_value(argv, index))
            index += 1
        elif argument == "--wall-clock":
            wall_clock = float(_flag_value(argv, index))
            index += 1
        elif argument == "--trace":
            trace_path = _flag_value(argv, index)
            index += 1
        elif argument == "--metrics":
            metrics = True
        elif argument.startswith("--"):
            raise SystemExit(f"error: unknown option {argument}")
        else:
            positional.append(argument)
        index += 1
    delta = int(positional[0]) if positional else 2**9
    k = int(positional[1]) if len(positional) > 1 else 0
    return delta, k, checkpoint_dir, max_chain_steps, wall_clock, trace_path, metrics


def main() -> None:
    (
        delta, k, checkpoint_dir, max_chain_steps, wall_clock,
        trace_path, metrics,
    ) = parse_arguments(sys.argv[1:])
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    budget = None
    if max_chain_steps is not None or wall_clock is not None:
        budget = Budget(
            max_chain_steps=max_chain_steps, wall_clock_seconds=wall_clock
        )

    with cli_tracing(trace_path, metrics):
        result = run_chain(delta, k, store=store, budget=budget)
    chain = result.chain
    print(f"Lemma 13 chain for Delta = {delta}, k = {k}:")
    for step in chain:
        print("  " + step.render())
    print(f"chain length (certified PN rounds): {len(chain) - 1}")
    if result.resumed_from_step is not None:
        print(
            f"(resumed from checkpoint: steps 0..{result.resumed_from_step - 1} "
            "were already on disk)"
        )
    for entry in result.provenance:
        print(f"(provenance) {entry}")
    print()

    print("checking chain arithmetic (Cor. 10 + Lemma 11 + Lemma 12)...")
    verify_chain_arithmetic(chain)
    print("  ok")

    sampled = [step for step in chain if step.x + 2 <= step.a <= 12]
    if sampled:
        step = sampled[0]
        print(
            f"machine-checking Lemma 6 and Lemma 8's argument at {step.render()}..."
        )
        verify_lemma6(min(step.delta, 6), min(step.a, 4), min(step.x, 1))
        report = verify_lemma8_argument(
            min(step.delta, 12), min(step.a, 9), min(step.x, 2)
        )
        print(f"  Lemma 8 case analysis: {'ok' if report.ok else 'FAILED'}")
    print()

    premises = verify_theorem14_premises(chain)
    print(f"Theorem 14 premises hold: {premises.ok}")
    print()

    table = Table(
        f"Theorem 1 lower bounds from this chain (Delta = {delta}, k = {k})",
        ["n", "deterministic rounds", "randomized rounds"],
    )
    for exponent in (16, 32, 64, 128, 256):
        summary = lower_bound_summary(2**exponent, delta, k)
        table.add_row(
            f"2^{exponent}",
            summary["deterministic_rounds"],
            summary["randomized_rounds"],
        )
    table.print()


if __name__ == "__main__":
    main()
