"""The Omega(log Delta) lower-bound chain of Lemma 13, end to end.

Run:  python examples/lowerbound_sequence.py [delta] [k]

Builds the sequence Pi_i = Pi_Delta(floor(Delta / 2^(3i)), k + i),
checks every side condition (Corollary 10, Lemma 11's direction, the
0-round impossibility of Lemma 12), machine-verifies one speedup step
with the round-elimination engine when Delta is small enough, then
lifts the chain through Theorem 14 into the Theorem 1 / Corollary 2
numbers.
"""

import sys

from repro.analysis.tables import Table
from repro.lowerbound.lemma6 import verify_lemma6
from repro.lowerbound.lemma8 import verify_lemma8_argument
from repro.lowerbound.lift import (
    lower_bound_summary,
    verify_theorem14_premises,
)
from repro.lowerbound.sequence import lemma13_chain, verify_chain_arithmetic


def main() -> None:
    delta = int(sys.argv[1]) if len(sys.argv) > 1 else 2**9
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    chain = lemma13_chain(delta, k)
    print(f"Lemma 13 chain for Delta = {delta}, k = {k}:")
    for step in chain:
        print("  " + step.render())
    print(f"chain length (certified PN rounds): {len(chain) - 1}")
    print()

    print("checking chain arithmetic (Cor. 10 + Lemma 11 + Lemma 12)...")
    verify_chain_arithmetic(chain)
    print("  ok")

    sampled = [step for step in chain if step.x + 2 <= step.a <= 12]
    if sampled:
        step = sampled[0]
        print(
            f"machine-checking Lemma 6 and Lemma 8's argument at {step.render()}..."
        )
        verify_lemma6(min(step.delta, 6), min(step.a, 4), min(step.x, 1))
        report = verify_lemma8_argument(
            min(step.delta, 12), min(step.a, 9), min(step.x, 2)
        )
        print(f"  Lemma 8 case analysis: {'ok' if report.ok else 'FAILED'}")
    print()

    premises = verify_theorem14_premises(chain)
    print(f"Theorem 14 premises hold: {premises.ok}")
    print()

    table = Table(
        f"Theorem 1 lower bounds from this chain (Delta = {delta}, k = {k})",
        ["n", "deterministic rounds", "randomized rounds"],
    )
    for exponent in (16, 32, 64, 128, 256):
        summary = lower_bound_summary(2**exponent, delta, k)
        table.add_row(
            f"2^{exponent}",
            summary["deterministic_rounds"],
            summary["randomized_rounds"],
        )
    table.print()


if __name__ == "__main__":
    main()
