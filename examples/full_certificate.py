"""Run the whole lower-bound proof for chosen parameters.

Run:  python examples/full_certificate.py [delta] [k]

Produces a :class:`LowerBoundCertificate`: the Section 2.4 roadmap
executed end to end — chain arithmetic, Theorem 14 premises, Lemma 6's
normal form, Lemma 8's case analysis (and, for Delta <= 5, the full
Rbar computation), Lemma 9's conversion on a concrete instance, and
the Lemma 5 witness — with the Theorem 1 numbers at the end.
"""

import sys

from repro.lowerbound.certificate import build_certificate


def main() -> None:
    delta = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    certificate = build_certificate(delta, k)
    print(certificate.render())
    if not certificate.ok:
        raise SystemExit("certificate FAILED")


if __name__ == "__main__":
    main()
