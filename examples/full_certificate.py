"""Run the whole lower-bound proof for chosen parameters.

Run:  python examples/full_certificate.py [delta] [k]
          [--checkpoint DIR] [--max-alphabet N] [--wall-clock S]
          [--trace out.jsonl] [--metrics]

Produces a :class:`LowerBoundCertificate`: the Section 2.4 roadmap
executed end to end — chain arithmetic, Theorem 14 premises, Lemma 6's
normal form, Lemma 8's case analysis (and, for Delta <= 5, the full
Rbar computation), Lemma 9's conversion on a concrete instance, and
the Lemma 5 witness — with the Theorem 1 numbers at the end.

With ``--checkpoint DIR`` the build is restartable stage by stage: a
killed run resumes from the last completed stage and renders a
certificate byte-identical to an uninterrupted run.  With
``--max-alphabet N`` the engine check runs under an alphabet budget
and, when it trips, degrades the problem via automatic simplification
— every degradation rung appears in the certificate's provenance.
``--trace`` writes the run's span trace as JSON lines; ``--metrics``
prints the per-phase counter table at the end.
"""

import sys

from repro.lowerbound.certificate import build_certificate
from repro.observability.cli import cli_tracing
from repro.robustness.budget import Budget
from repro.robustness.checkpointing import CheckpointStore


def _flag_value(argv: list[str], index: int) -> str:
    if index + 1 >= len(argv):
        raise SystemExit(f"error: {argv[index]} requires a value")
    return argv[index + 1]


def parse_arguments(argv: list[str]):
    positional = []
    checkpoint_dir = None
    max_alphabet = None
    wall_clock = None
    trace_path = None
    metrics = False
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--checkpoint":
            checkpoint_dir = _flag_value(argv, index)
            index += 1
        elif argument == "--max-alphabet":
            max_alphabet = int(_flag_value(argv, index))
            index += 1
        elif argument == "--wall-clock":
            wall_clock = float(_flag_value(argv, index))
            index += 1
        elif argument == "--trace":
            trace_path = _flag_value(argv, index)
            index += 1
        elif argument == "--metrics":
            metrics = True
        elif argument.startswith("--"):
            raise SystemExit(f"error: unknown option {argument}")
        else:
            positional.append(argument)
        index += 1
    delta = int(positional[0]) if positional else 8
    k = int(positional[1]) if len(positional) > 1 else 0
    return delta, k, checkpoint_dir, max_alphabet, wall_clock, trace_path, metrics


def main() -> None:
    (
        delta, k, checkpoint_dir, max_alphabet, wall_clock,
        trace_path, metrics,
    ) = parse_arguments(sys.argv[1:])
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    budget = None
    if max_alphabet is not None or wall_clock is not None:
        budget = Budget(
            max_alphabet=max_alphabet, wall_clock_seconds=wall_clock
        )
    with cli_tracing(trace_path, metrics):
        certificate = build_certificate(delta, k, store=store, budget=budget)
    print(certificate.render())
    if certificate.degraded:
        print(
            "note: some checks ran in a budget-degraded form; "
            "see the provenance lines above"
        )
    if not certificate.ok:
        raise SystemExit("certificate FAILED")


if __name__ == "__main__":
    main()
