"""k-outdegree dominating sets: the upper bound meets Lemma 5.

Run:  python examples/kods_dominating_sets.py [delta] [depth]

Computes k-outdegree dominating sets on a truncated Delta-regular tree
with the Section 1.1 group-sweep algorithm for a range of k, verifies
each output, shows the ~Delta/(k+1) round scaling, and finally feeds
the k-ODS into the Lemma 5 conversion to obtain a certified
Pi_Delta(a, k) labeling.
"""

import sys

from repro.algorithms.sweep import run_kods_sweep
from repro.algorithms.trees import spread_tree_coloring
from repro.analysis.tables import Table
from repro.lowerbound.lemma5 import verify_lemma5
from repro.sim.generators import truncated_regular_tree
from repro.sim.verifiers import verify_k_outdegree_dominating_set


def main() -> None:
    delta = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    graph = truncated_regular_tree(delta, depth)
    # A full (Delta+1)-coloring exposes the Delta/(k+1) sweep scaling
    # (a 3-coloring would make every k >= 2 finish in one phase).
    palette = delta + 1
    coloring_colors = spread_tree_coloring(graph, palette)

    table = Table(
        f"k-outdegree dominating sets on the Delta={delta} regular tree "
        f"(n = {graph.n}; sweeping a {palette}-coloring)",
        ["k", "sweep rounds", "|S|", "valid k-ODS", "Pi(a, k) labeling valid"],
    )
    for k in range(0, delta + 1, max(delta // 4, 1)):
        sweep = run_kods_sweep(graph, coloring_colors, palette, k)
        kods_ok = verify_k_outdegree_dominating_set(
            graph, sweep.selected, sweep.orientation, k
        ).ok
        lemma5 = verify_lemma5(
            graph, sweep.selected, sweep.orientation, k, a=max(delta // 2, 1)
        )
        table.add_row(k, sweep.rounds, len(sweep.selected), kods_ok, lemma5.ok)
    table.print()

    print(
        "Lower bound context (Theorem 1): for k <= Delta^eps these sets\n"
        "need Omega(min{log Delta, log_Delta n}) rounds without the\n"
        "rooting input this upper bound uses."
    )


if __name__ == "__main__":
    main()
