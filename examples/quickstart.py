"""Quickstart: problems, diagrams, and one round-elimination step.

Run:  python examples/quickstart.py

Walks through the paper's formalism on the MIS problem (Section 2.2):
encode it, draw its edge diagram (Figure 1), apply one automatic
round-elimination step Rbar(R(.)) (Theorem 3), and inspect the paper's
problem family Pi_Delta(a, x) with its Figure 4 diagram.
"""

from repro.core.diagram import edge_diagram
from repro.core.round_elimination import speedup
from repro.core.solvability import zero_round_solvable_symmetric
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


def main() -> None:
    delta = 3
    mis = mis_problem(delta)
    print("=== The MIS problem, encoded (Section 2.2) ===")
    print(mis.render())
    print()

    print("=== Its edge diagram (Figure 1) ===")
    print(edge_diagram(mis).render())
    print()

    print("=== One round-elimination step: Rbar(R(MIS)) ===")
    result = speedup(mis)
    print("intermediate problem R(MIS):")
    print(result.intermediate_renamed.problem.render())
    print()
    print("after the full step (exactly one round easier, Theorem 3):")
    print(result.problem.render())
    print()

    a, x = 2, 1
    family = family_problem(delta, a, x)
    print(f"=== The paper's family: Pi_Delta(a={a}, x={x}), Delta={delta} ===")
    print(family.render())
    print()
    print("edge diagram (Figure 4):")
    print(edge_diagram(family).render())
    print()
    print(
        "0-round solvable on the symmetric-port instances (Lemma 12)?",
        zero_round_solvable_symmetric(family),
    )


if __name__ == "__main__":
    main()
