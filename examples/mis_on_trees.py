"""MIS algorithms on trees: the upper-bound landscape of Section 1.3.

Run:  python examples/mis_on_trees.py [n]

Runs Luby's MIS, the Ghaffari-style MIS, and the deterministic
Cole-Vishkin + color-sweep pipeline on random bounded-degree trees,
verifies every output with the independent MIS verifier, and prints the
measured round counts next to the asymptotic expectations.
"""

import random
import sys

from repro.algorithms.cole_vishkin import run_cole_vishkin
from repro.algorithms.ghaffari import run_ghaffari_mis
from repro.algorithms.luby import run_luby_mis
from repro.algorithms.sweep import run_mis_sweep
from repro.analysis.bounds import log_star
from repro.analysis.tables import Table
from repro.sim.generators import random_tree_bounded_degree
from repro.sim.verifiers import verify_mis


def deterministic_tree_mis(graph):
    """Cole-Vishkin 3-coloring, then a 3-round color sweep."""
    coloring = run_cole_vishkin(graph)
    sweep = run_mis_sweep(graph, coloring.outputs, 3)
    selected = {node for node in range(graph.n) if sweep.outputs[node]}
    return selected, coloring.rounds + sweep.rounds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    delta = 4
    rng = random.Random(42)
    table = Table(
        f"MIS on random trees (n = {n}, max degree {delta})",
        ["algorithm", "rounds", "|MIS|", "valid", "expected shape"],
    )
    graph = random_tree_bounded_degree(n, delta, rng)

    luby = run_luby_mis(graph, seed=1)
    luby_set = {node for node in range(graph.n) if luby.outputs[node]}
    table.add_row(
        "Luby [34]",
        luby.rounds,
        len(luby_set),
        verify_mis(graph, luby_set).ok,
        "O(log n)",
    )

    ghaffari = run_ghaffari_mis(graph, seed=1)
    ghaffari_set = {node for node in range(graph.n) if ghaffari.outputs[node]}
    table.add_row(
        "Ghaffari-style [22]",
        ghaffari.rounds,
        len(ghaffari_set),
        verify_mis(graph, ghaffari_set).ok,
        "O(log Delta + ...)",
    )

    selected, rounds = deterministic_tree_mis(graph)
    table.add_row(
        "Cole-Vishkin + sweep",
        rounds,
        len(selected),
        verify_mis(graph, selected).ok,
        f"O(log* n) = ~{log_star(n)} + c",
    )

    table.print()


if __name__ == "__main__":
    main()
