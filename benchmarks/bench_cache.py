"""RE-CACHE: cold/warm benchmarks of the content-addressed operator cache.

Running this file as a script measures the Delta=4 and Delta=5 MIS
round-elimination chains (kernel engine) three ways — uncached, cold
cache (fresh on-disk store), warm cache (same store, second run) — and
appends one ``"mode": "operator-cache"`` entry per chain to
``BENCH_kernel.json``:

* ``PYTHONPATH=src python benchmarks/bench_cache.py``
  measures (best of 3) and *appends* entries to the trajectory.
* ``PYTHONPATH=src python benchmarks/bench_cache.py --quick``
  single measurement, nothing recorded; exit status reflects the
  correctness gate only.

Every measurement is correctness-gated by the differential oracle
before any number is written: the cold-cached, warm-cached, uncached
kernel, and reference-engine chains must produce the *same problem*,
and the traced cold-cached run must show zero semantic-counter drift
against the plain kernel run (``cache.*`` counters are timing-class by
design; see :mod:`repro.observability.schema`).  Failures exit
non-zero with a one-line ``error:`` diagnostic and record nothing.

Cache entries deliberately omit ``kernel_seconds`` so the kernel
regression floor of ``bench_kernel.py --quick`` never compares against
cache amplification ratios.
"""

import json
import os
import shutil
import sys
import tempfile
import time

from repro.core.cache import OperatorCache, caching
from repro.core.round_elimination import speedup
from repro.observability.metrics import (
    diff_semantic_profiles,
    semantic_profile,
    total_counters,
)
from repro.observability.trace import Tracer, tracing
from repro.problems.mis import mis_problem

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_kernel import TRAJECTORY_PATH, load_trajectory

CHAINS = ((4, 2), (5, 2))

#: Span names whose summed duration is "operator time" for this report.
OPERATOR_SPANS = ("op.R", "op.Rbar")


def run_chain(delta: int, steps: int, *, use_kernel: bool = True):
    problem = mis_problem(delta)
    for _ in range(steps):
        problem = speedup(problem, use_kernel=use_kernel).problem
    return problem


def _timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def operator_seconds(records: list[dict]) -> float:
    """Wall-clock spent inside R/Rbar spans (0.0 when all calls hit:
    a cache hit returns before the operator span ever opens)."""
    return sum(
        record["duration_s"]
        for record in records
        if record["type"] == "span" and record["name"] in OPERATOR_SPANS
    )


def traced_records(fn) -> list[dict]:
    tracer = Tracer()
    with tracing(tracer):
        fn()
    return tracer.finish()


def measure_chain(delta: int, steps: int, rounds: int) -> dict:
    """Cold/warm timings plus the correctness gate; raises on failure."""
    uncached = run_chain(delta, steps)
    reference = run_chain(delta, steps, use_kernel=False)
    if uncached != reference:
        raise AssertionError(
            f"kernel and reference disagree on delta={delta} steps={steps}"
        )

    cold_best = warm_best = None
    cold_result = warm_result = None
    stats = None
    for _ in range(rounds):
        directory = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            store = OperatorCache(directory)
            with caching(store):
                cold_seconds, cold_result = _timed(
                    lambda: run_chain(delta, steps)
                )
                warm_seconds, warm_result = _timed(
                    lambda: run_chain(delta, steps)
                )
            stats = store.stats()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        cold_best = min(cold_seconds, cold_best or cold_seconds)
        warm_best = min(warm_seconds, warm_best or warm_seconds)
    if cold_result != uncached or warm_result != uncached:
        raise AssertionError(
            f"cached chain diverged from uncached on delta={delta}"
        )

    # Traced pair for the drift gate and the operator-time split.  The
    # traced cached runs use a fresh in-memory store so "cold" and
    # "warm" are exact, not polluted by the timed runs above.
    plain_records = traced_records(lambda: run_chain(delta, steps))
    traced_store = OperatorCache()
    with caching(traced_store):
        cold_records = traced_records(lambda: run_chain(delta, steps))
        warm_records = traced_records(lambda: run_chain(delta, steps))
    drift = diff_semantic_profiles(
        semantic_profile(plain_records), semantic_profile(cold_records)
    )
    if drift:
        raise AssertionError(
            f"semantic drift between plain and cold-cached runs on "
            f"delta={delta}: {drift}"
        )

    return {
        "chain": f"mis_delta{delta}_steps{steps}",
        "mode": "operator-cache",
        "cold_seconds": round(cold_best, 4),
        "warm_seconds": round(warm_best, 4),
        "speedup": round(cold_best / max(warm_best, 1e-9), 2),
        "operator_seconds": {
            "cold": round(operator_seconds(cold_records), 4),
            "warm": round(operator_seconds(warm_records), 4),
        },
        "cache": stats,
        "counters": {
            "cold": total_counters(cold_records),
            "warm": total_counters(warm_records),
        },
        "semantic_drift": drift,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def report(entry: dict) -> None:
    ops = entry["operator_seconds"]
    print(
        f"{entry['chain']}: cold {entry['cold_seconds']}s -> warm "
        f"{entry['warm_seconds']}s ({entry['speedup']}x); operator time "
        f"cold {ops['cold']}s -> warm {ops['warm']}s; cache {entry['cache']}"
    )


def main(argv: list[str]) -> int:
    quick = False
    for argument in argv:
        if argument == "--quick":
            quick = True
        else:
            print(f"error: unknown option {argument}", file=sys.stderr)
            return 2
    try:
        entries = [
            measure_chain(delta, steps, rounds=1 if quick else 3)
            for delta, steps in CHAINS
        ]
    except Exception as error:  # measurement failures must exit non-zero
        print(f"error: benchmark failed: {error}", file=sys.stderr)
        return 1
    for entry in entries:
        report(entry)
    if quick:
        print("PASS (nothing recorded)")
        return 0
    trajectory = load_trajectory()
    trajectory.extend(entries)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"trajectory length: {len(trajectory)} ({TRAJECTORY_PATH})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
