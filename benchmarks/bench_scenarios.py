"""RE-SCENARIOS: benchmark rows for the declarative scenario library.

Every registered ``.scn`` scenario (see ``src/repro/scenarios``) is a
certified chain run — MIS, sinkless orientation, maximal matching,
2-ruling sets, and the Delta=16 lower-bound family — so each one gets
a trajectory row alongside the Delta=4 MIS chain that
``bench_kernel.py`` maintains:

* ``PYTHONPATH=src python benchmarks/bench_scenarios.py``
  measures every scenario (best of 3) on both engines, cross-checks
  that the chains agree and meet their declared expectations, and
  *appends* one ``mode: scenario`` row per scenario to
  ``BENCH_kernel.json``.
* ``PYTHONPATH=src python benchmarks/bench_scenarios.py --check``
  single measurement, no recording; exits non-zero on any expectation
  failure, cross-engine divergence, or semantic-counter drift.

Scenario rows carry ``mode: scenario`` so the kernel quick gate's
regression floor (which compares Delta=4 MIS chain ratios only) never
mixes them in.  Failures of any kind exit non-zero with a one-line
``error:`` diagnostic.
"""

import json
import os
import sys
import time

from repro.observability.metrics import (
    diff_semantic_profiles,
    semantic_profile,
    total_counters,
)
from repro.observability.trace import Tracer, tracing
from repro.scenarios import ScenarioRun, load_registry, run_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")

USAGE = (
    "usage: bench_scenarios.py            (measure + append trajectory rows)\n"
    "       bench_scenarios.py --check    (single measurement, no recording)\n"
    "\n"
    "Exit status (unified across repro tooling):\n"
    "    0  success: every scenario met its expectations on both engines\n"
    "    1  drift: an expectation failed, engines diverged, or counters\n"
    "       drifted\n"
    "    2  usage error"
)


# ---------------------------------------------------------------------------
# Pytest benchmarks
# ---------------------------------------------------------------------------

def test_quick_scenario_kernel_matches_reference(once):
    """The registry's quick scenario, timed on the kernel path and
    cross-checked problem-by-problem against the reference engine."""
    spec = next(spec for decl, spec in load_registry() if decl.quick)
    kernel = once(lambda: run_scenario(spec, use_kernel=True))
    reference = run_scenario(spec, use_kernel=False)
    assert kernel.ok, kernel.failures
    assert reference.ok, reference.failures
    assert kernel.problems == reference.problems


def test_every_scenario_meets_expectations(once):
    """One timed sweep of the full registry on the reference engine."""
    runs = once(
        lambda: [run_scenario(spec) for _, spec in load_registry()]
    )
    for run in runs:
        assert run.ok, (run.spec.name, run.failures)


# ---------------------------------------------------------------------------
# Trajectory maintenance (script mode)
# ---------------------------------------------------------------------------

def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _traced_run(spec, *, use_kernel: bool) -> tuple[ScenarioRun, list[dict]]:
    """One untimed scenario run under a tracer; run + finished records."""
    tracer = Tracer()
    with tracing(tracer):
        run = run_scenario(spec, use_kernel=use_kernel)
    return run, tracer.finish()


def measure_scenario(spec, rounds: int) -> tuple[dict, list[str]]:
    """Best-of-``rounds`` timings per engine plus the checked outcome.

    Returns the trajectory row and a list of problems (expectation
    failures, cross-engine divergence, semantic drift); an empty list
    means the row is good to record.
    """
    run_scenario(spec, use_kernel=True)  # warm-up (imports, caches)
    reference_seconds = min(
        _timed(lambda: run_scenario(spec, use_kernel=False))
        for _ in range(rounds)
    )
    kernel_seconds = min(
        _timed(lambda: run_scenario(spec, use_kernel=True))
        for _ in range(rounds)
    )
    reference, reference_records = _traced_run(spec, use_kernel=False)
    kernel, kernel_records = _traced_run(spec, use_kernel=True)
    problems: list[str] = []
    for engine, run in (("reference", reference), ("kernel", kernel)):
        problems.extend(
            f"{spec.name} [{engine}]: {failure}" for failure in run.failures
        )
    if not problems and reference.problems != kernel.problems:
        problems.append(f"{spec.name}: engines produced different chains")
    drift = diff_semantic_profiles(
        semantic_profile(reference_records), semantic_profile(kernel_records)
    )
    problems.extend(f"{spec.name}: {line}" for line in drift)
    row = {
        "chain": spec.name.replace("-", "_"),
        "mode": "scenario",
        "family": spec.family,
        "operator": spec.operator,
        "certified_rounds": kernel.certified_rounds,
        "reference_seconds": round(reference_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(reference_seconds / kernel_seconds, 2),
        "counters": {
            "reference": total_counters(reference_records),
            "kernel": total_counters(kernel_records),
        },
        "semantic_drift": drift,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return row, problems


def measure_registry(rounds: int) -> tuple[list[dict], list[str]]:
    rows: list[dict] = []
    problems: list[str] = []
    for _, spec in load_registry():
        row, failures = measure_scenario(spec, rounds=rounds)
        rows.append(row)
        problems.extend(failures)
        print(
            f"{row['chain']}: speedup {row['speedup']}x "
            f"(reference {row['reference_seconds']}s, "
            f"kernel {row['kernel_seconds']}s, "
            f"certified={row['certified_rounds']})"
        )
    return rows, problems


def load_trajectory() -> list[dict]:
    if not os.path.exists(TRAJECTORY_PATH):
        return []
    with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def record() -> int:
    rows, problems = measure_registry(rounds=3)
    if problems:
        for line in problems:
            print(f"  {line}")
        print("error: scenario measurements failed checks", file=sys.stderr)
        return 1
    trajectory = load_trajectory()
    trajectory.extend(rows)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(
        f"recorded {len(rows)} scenario rows; trajectory length: "
        f"{len(trajectory)} ({TRAJECTORY_PATH})"
    )
    return 0


def check() -> int:
    _, problems = measure_registry(rounds=1)
    if problems:
        for line in problems:
            print(f"  {line}")
        print("error: scenario checks failed", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    checking = False
    for argument in argv:
        if argument == "--check":
            checking = True
        else:
            print(f"error: unknown option {argument}", file=sys.stderr)
            return 2
    try:
        return check() if checking else record()
    except Exception as error:  # any measurement failure must exit non-zero
        print(f"error: benchmark failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
