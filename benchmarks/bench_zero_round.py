"""LEM12/15: zero-round impossibility and the failure-probability bound.

Deterministic side (Lemma 12): exhaustive 0-round checks across the
(a, x) parameter grid, confirming impossibility exactly in the lemma's
range (a >= 1, x <= Delta - 1) and possibility at the boundary.
Randomized side (Lemma 15): the analytic 1/(3 Delta)^2 bound versus the
failure rate of concrete strategies measured by Monte Carlo on the
symmetric-port instances.
"""

from fractions import Fraction

from repro.analysis.tables import Table
from repro.core.solvability import (
    randomized_zero_round_failure_bound,
    zero_round_solvable_symmetric,
)
from repro.lowerbound.zero_round import (
    GreedyStrategy,
    UniformStrategy,
    monte_carlo_zero_round_failure,
)
from repro.problems.family import family_problem


def test_lemma12_parameter_grid(once):
    def grid():
        rows = []
        for delta in (3, 4, 5, 6):
            for a in range(delta + 1):
                for x in range(delta + 1):
                    solvable = zero_round_solvable_symmetric(
                        family_problem(delta, a, x)
                    )
                    expected = not (a >= 1 and x <= delta - 1)
                    rows.append((delta, a, x, solvable, expected))
        return rows

    rows = once(grid)
    mismatches = [row for row in rows if row[3] != row[4]]
    assert not mismatches, mismatches

    table = Table(
        "Lemma 12 - 0-round solvability of Pi_Delta(a, x), full grid",
        ["delta", "grid points", "solvable exactly outside lemma range"],
    )
    for delta in (3, 4, 5, 6):
        points = [row for row in rows if row[0] == delta]
        table.add_row(delta, len(points), all(r[3] == r[4] for r in points))
    table.print()


def test_lemma15_monte_carlo(once):
    def experiments():
        rows = []
        for delta in (3, 4):
            problem = family_problem(delta, max(delta // 2, 1), 1)
            bound = randomized_zero_round_failure_bound(problem)
            uniform = monte_carlo_zero_round_failure(
                problem, strategy=UniformStrategy(problem), trials=150, seed=7
            )
            greedy = monte_carlo_zero_round_failure(
                problem, strategy=GreedyStrategy(problem), trials=150, seed=7
            )
            rows.append((delta, bound, uniform.failure_rate, greedy.failure_rate))
        return rows

    rows = once(experiments)
    table = Table(
        "Lemma 15 - analytic failure bound vs measured 0-round strategies",
        ["delta", "bound 1/(3 Delta)^2", ">= 1/Delta^8", "uniform rate", "greedy rate"],
    )
    for delta, bound, uniform_rate, greedy_rate in rows:
        table.add_row(
            delta,
            f"{float(bound):.4f}",
            bound >= Fraction(1, delta**8),
            uniform_rate,
            greedy_rate,
        )
    table.print()
    for delta, bound, uniform_rate, greedy_rate in rows:
        assert uniform_rate >= float(bound)
        assert greedy_rate >= float(bound)
