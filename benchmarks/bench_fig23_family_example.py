"""FIG2/3: regenerate Figures 2 and 3 — a valid Pi_Delta(2, 2) labeling
with Delta = 4, containing all three node types.

The paper's figures show an instance with type-1 (dominating), type-2
(pointing) and type-3 (owning) nodes and a labeling satisfying the
constraints; we build such a labeling on a 4-regular graph, verify it
with the generic LCL verifier, and report the type census.
"""

from collections import Counter

from repro.analysis.tables import Table
from repro.problems.family import family_problem
from repro.sim.generators import complete_bipartite_graph
from repro.sim.verifiers import verify_lcl


def build_figure_labeling():
    """Delta = 4, a = 2, x = 2 (exactly the parameters of Figure 2).

    On K_{4,4}: left nodes 0,1 are type-1 (M^2 X^2), left nodes 2,3 are
    type-3 (A^2 X^2), right nodes are type-2, pointing at a type-1 node.
    """
    delta, a, x = 4, 2, 2
    graph = complete_bipartite_graph(delta)
    labeling = {}
    # type-1 nodes place their M edges so that together they cover all
    # type-2 nodes: node 0 toward right nodes 0,1 - node 1 toward 2,3.
    coverage = {0: (delta + 0, delta + 1), 1: (delta + 2, delta + 3)}
    for node in (0, 1):
        m_ports = {graph.port_to(node, target) for target in coverage[node]}
        for port in range(delta):
            labeling[(node, port)] = "M" if port in m_ports else "X"
    for node in (2, 3):  # type-3: own two edges
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a else "X"
    for node in range(delta, 2 * delta):  # type-2: point at node 0 or 1
        pointer = next(
            port
            for port in range(delta)
            if graph.neighbor(node, port) in (0, 1)
            and labeling[
                (graph.neighbor(node, port),
                 graph.port_to(graph.neighbor(node, port), node))
            ] == "M"
        )
        for port in range(delta):
            labeling[(node, port)] = "P" if port == pointer else "O"
    return graph, labeling, family_problem(delta, a, x)


def test_fig23_example_labeling(benchmark):
    graph, labeling, problem = benchmark(build_figure_labeling)
    result = verify_lcl(graph, problem, labeling)
    assert result.ok, result.violations

    census = Counter()
    for node in range(graph.n):
        labels = frozenset(
            labeling[(node, port)] for port in range(graph.degree(node))
        )
        if "M" in labels:
            census["type-1 (dominating)"] += 1
        elif "A" in labels:
            census["type-3 (owning)"] += 1
        else:
            census["type-2 (pointing)"] += 1
    table = Table(
        "Figures 2/3 - example Pi_4(a=2, x=2) labeling (verified)",
        ["node type", "count", "paper shows"],
    )
    table.add_row("type-1 (dominating)", census["type-1 (dominating)"], ">= 1")
    table.add_row("type-2 (pointing)", census["type-2 (pointing)"], ">= 1")
    table.add_row("type-3 (owning)", census["type-3 (owning)"], ">= 1")
    table.print()
    assert all(count >= 1 for count in census.values())
