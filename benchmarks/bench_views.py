"""VIEWS: indistinguishability on the hard instances.

The engine-side Lemma 12/15 arguments rest on all nodes of the
symmetric-port instances sharing one view; here that is measured
directly: view-class counts per radius, on the Cayley instances versus
ordinary trees (where classes refine as the radius grows).
"""

import random

from repro.analysis.tables import Table
from repro.sim.generators import (
    colored_port_cayley_graph,
    random_tree,
    truncated_regular_tree,
)
from repro.sim.views import view_classes


def test_cayley_blindness(once):
    def compute():
        rows = []
        for delta in (2, 3, 4):
            graph = colored_port_cayley_graph(delta)
            for radius in (0, 1, 2):
                rows.append((delta, graph.n, radius, len(view_classes(graph, radius))))
        return rows

    rows = once(compute)
    table = Table(
        "Symmetric-port Cayley instances - PN view classes per radius",
        ["delta", "n", "radius", "view classes (1 = algorithm is blind)"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(classes == 1 for *_, classes in rows)


def test_trees_refine_with_radius(once):
    def compute():
        graph = random_tree(40, random.Random(3))
        return [(radius, len(view_classes(graph, radius))) for radius in (0, 1, 2, 3)]

    rows = once(compute)
    table = Table(
        "Random tree (n=40) - view classes refine with the radius",
        ["radius", "view classes"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    counts = [classes for _, classes in rows]
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[-1] > counts[0]


def test_view_signature_timing(benchmark):
    graph = truncated_regular_tree(3, 4)
    signature = benchmark(lambda: view_classes(graph, 2))
    assert len(signature) >= 2
