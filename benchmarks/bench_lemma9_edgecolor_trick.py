"""LEM9: the Delta-edge-coloring conversion, at scale.

Converts Pi+ solutions that genuinely use the C and A configurations
(on edge-colored K_{Delta,Delta}) into Pi(floor((a-2x-1)/2), x+1)
solutions, verifying before and after; sweeps Delta and the (a, x)
parameters along the Lemma 13 trajectory.
"""

from repro.analysis.tables import Table
from repro.lowerbound.lemma9 import lemma9_target_a, verify_lemma9
from repro.sim.generators import complete_bipartite_graph

SWEEP = [(5, 4, 1), (6, 5, 1), (8, 7, 2), (10, 9, 2), (12, 11, 3), (16, 15, 4)]


def build_labeling(delta, a, x):
    graph = complete_bipartite_graph(delta)
    labeling = {}
    for node in range(delta):
        for port in range(delta):
            labeling[(node, port)] = "C" if port >= x else "X"
    for node in range(delta, 2 * delta):
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a - x - 1 else "X"
    return graph, labeling


def test_lemma9_conversion_sweep(once):
    def run_all():
        rows = []
        for delta, a, x in SWEEP:
            graph, labeling = build_labeling(delta, a, x)
            result = verify_lemma9(graph, labeling, delta, a, x)
            rows.append((delta, a, x, lemma9_target_a(a, x), result.ok))
        return rows

    rows = once(run_all)
    table = Table(
        "Lemma 9 - 0-round conversion Pi+(a, x) -> Pi(floor((a-2x-1)/2), x+1)",
        ["delta", "a", "x", "target a'", "converted labeling valid"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(row[-1] for row in rows)


def test_lemma9_single_conversion_timing(benchmark):
    delta, a, x = 8, 7, 2
    graph, labeling = build_labeling(delta, a, x)
    result = benchmark(lambda: verify_lemma9(graph, labeling, delta, a, x))
    assert result.ok
