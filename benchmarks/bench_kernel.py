"""RE-KERNEL: benchmarks of the interned-bitmask fast path.

Pytest benchmarks time the kernel operators against the reference
engine; running the file as a script maintains ``BENCH_kernel.json``,
a committed trajectory of measured speedups on the Delta=4 MIS chain:

* ``PYTHONPATH=src python benchmarks/bench_kernel.py``
  measures (best of 3) and *appends* an entry to the trajectory.
* ``PYTHONPATH=src python benchmarks/bench_kernel.py --quick``
  single measurement, no recording; exits non-zero if the current
  kernel-vs-reference speedup ratio fell below one third of the best
  recorded ratio (a >3x regression).  Comparing *ratios* rather than
  wall-clock seconds keeps the gate meaningful across machines of
  different speeds; the whole run stays well under a minute.  The
  quick gate also runs a seeded chaos mini-run of the shard scheduler
  (worker killed mid-chain under a memory budget) and fails on any
  semantic drift, missed recovery, or budget overrun, printing the
  recovered ``mp.retries`` / ``mp.mem_admitted_peak`` counters, plus
  the registry's ``quick`` scenarios (currently the Delta=2 maximal-
  matching self-reduction — a non-MIS family) on both engines, failing
  on any expectation drift or cross-engine divergence.
* ``PYTHONPATH=src python benchmarks/bench_kernel.py --sharded``
  records a ``mode: sharded`` trajectory row for the Delta=5 chain on
  the supervised scheduler: cold (fresh spill directory) and warm
  (resumed from the full spill) timings, the admitted-memory
  high-water mark under a 64 KiB budget, and the recovery counters.
* ``PYTHONPATH=src python benchmarks/bench_kernel.py --hotpath``
  records a ``mode: hotpath`` trajectory row for the *cold* Delta=5
  chain (fresh transport registry, serial kernel): best-of-3 wall
  clock against the reference engine, the per-op timing/allocation
  breakdown from one profiled run
  (:mod:`repro.observability.profiling`), and the profiler's coverage
  of the traced kernel wall time (must be >= 90%).  ``--quick`` gates
  against the best recorded hotpath row ratio-wise: a >1.5x speedup
  regression on the Delta=5 chain fails the gate.  Add
  ``--trace <path>`` to also write the profiled kernel trace as JSON
  lines — written before the gate checks, so CI can upload it and run
  ``tools/trace_report.py hotspots`` over a failing run.

Besides timings, every measurement runs the chain once per engine
under a tracer and records the summed counters: the semantic ones
(which the two engines must agree on — ``--quick`` fails on any drift)
plus the kernel's cache behavior, giving the trajectory a
work-per-second denominator that wall-clock alone cannot provide.
Failures of any kind exit non-zero with a one-line ``error:``
diagnostic.
"""

import json
import os
import sys
import tempfile
import time

from repro.core.kernel.interning import transport_registry
from repro.core.kernel.sharding import ShardPolicy, scheduling
from repro.core.round_elimination import R, Rbar, rename_to_strings, speedup
from repro.observability.metrics import (
    diff_semantic_profiles,
    hotspot_profile,
    semantic_profile,
    total_counters,
)
from repro.observability.profiling import Profiler, profiling
from repro.observability.trace import Tracer, tracing
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)  # for tests.faults in the chaos gate
from bench_engine import MIS_CHAIN_DELTA, MIS_CHAIN_STEPS, run_mis_chain

TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")
REGRESSION_FACTOR = 3.0

#: Admission budget used by the chaos gate and the sharded trajectory
#: row — small enough to force batch-at-a-time admission on the Delta=4
#: and Delta=5 chains, large enough for their biggest single unit.
SHARD_BUDGET_BYTES = 65536

SHARDED_DELTA = 5
SHARDED_WORKERS = 4

#: The hot-path row: the serial cold Delta=5 chain the engine rewrite
#: optimizes.  The quick gate tolerates a 1.5x ratio regression against
#: the best recorded row; the profiler's sections must account for at
#: least 90% of the traced kernel wall time.
HOTPATH_DELTA = 5
HOTPATH_REGRESSION_FACTOR = 1.5
HOTPATH_MIN_COVERAGE = 0.9


# ---------------------------------------------------------------------------
# Pytest benchmarks
# ---------------------------------------------------------------------------

def test_kernel_r_timing(benchmark):
    problem = mis_problem(6)
    result = benchmark(lambda: R(problem, use_kernel=True))
    assert result == R(problem)


def test_kernel_rbar_timing(benchmark):
    intermediate = rename_to_strings(R(family_problem(4, 3, 1))).problem
    result = benchmark.pedantic(
        lambda: Rbar(intermediate, use_kernel=True), iterations=1, rounds=3
    )
    assert result == Rbar(intermediate)


def test_kernel_chain_timing(once):
    """The Delta=4 MIS chain on the kernel path, result cross-checked."""
    kernel = once(lambda: run_mis_chain(use_kernel=True))
    assert kernel == run_mis_chain(use_kernel=False)


def test_parallel_rbar_matches_serial(once):
    """The multiprocessing fan-out is timed and must equal the serial
    kernel result (on single-core CI this measures overhead, not gain)."""
    intermediate = rename_to_strings(R(mis_problem(4))).problem
    parallel = once(lambda: Rbar(intermediate, use_kernel=True, workers=2))
    assert parallel == Rbar(intermediate, use_kernel=True)


# ---------------------------------------------------------------------------
# Trajectory maintenance (script mode)
# ---------------------------------------------------------------------------

def traced_chain_records(use_kernel: bool) -> list[dict]:
    """One untimed chain run under a tracer; the finished records."""
    tracer = Tracer()
    with tracing(tracer):
        run_mis_chain(use_kernel=use_kernel)
    return tracer.finish()


def measure_chain(rounds: int) -> dict:
    """Best-of-``rounds`` timings plus counter summaries per engine.

    The timed runs are untraced (the timings gate a <3% tracing
    overhead budget elsewhere and must not include the tracer); one
    extra traced run per engine collects the counters.
    """
    run_mis_chain(use_kernel=True)  # warm-up (imports, caches)
    reference_seconds = min(
        _timed(lambda: run_mis_chain(use_kernel=False)) for _ in range(rounds)
    )
    kernel_seconds = min(
        _timed(lambda: run_mis_chain(use_kernel=True)) for _ in range(rounds)
    )
    assert run_mis_chain(use_kernel=False) == run_mis_chain(use_kernel=True)
    reference_records = traced_chain_records(use_kernel=False)
    kernel_records = traced_chain_records(use_kernel=True)
    drift = diff_semantic_profiles(
        semantic_profile(reference_records), semantic_profile(kernel_records)
    )
    return {
        "chain": f"mis_delta{MIS_CHAIN_DELTA}_steps{MIS_CHAIN_STEPS}",
        "reference_seconds": round(reference_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(reference_seconds / kernel_seconds, 2),
        "counters": {
            "reference": total_counters(reference_records),
            "kernel": total_counters(kernel_records),
        },
        "semantic_drift": drift,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def load_trajectory() -> list[dict]:
    if not os.path.exists(TRAJECTORY_PATH):
        return []
    with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def record() -> None:
    entry = measure_chain(rounds=3)
    trajectory = load_trajectory()
    trajectory.append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"recorded: {entry}")
    print(f"trajectory length: {len(trajectory)} ({TRAJECTORY_PATH})")


def cache_gate() -> int:
    """The operator cache must be invisible except in the counters.

    Three chain runs — uncached, cold-cached, warm-cached (same store)
    — must produce the same problem, the cold-cached traced profile
    must show zero semantic drift against the plain kernel profile
    (``cache.*`` are timing counters, excluded by design), and the warm
    run must actually hit.
    """
    from repro.core.cache import OperatorCache, caching

    plain = run_mis_chain(use_kernel=True)
    store = OperatorCache()  # in-memory tier only; no disk in CI
    with caching(store):
        cold = run_mis_chain(use_kernel=True)
        warm = run_mis_chain(use_kernel=True)
    if not (plain == cold == warm):
        print("error: cached chain diverged from uncached", file=sys.stderr)
        return 1
    if store.hits == 0 or store.misses == 0:
        print(
            f"error: cache gate expected both misses (cold) and hits "
            f"(warm), saw hits={store.hits} misses={store.misses}",
            file=sys.stderr,
        )
        return 1
    tracer = Tracer()
    with tracing(tracer), caching(OperatorCache()):
        run_mis_chain(use_kernel=True)
    cached_records = tracer.finish()
    drift = diff_semantic_profiles(
        semantic_profile(traced_chain_records(use_kernel=True)),
        semantic_profile(cached_records),
    )
    if drift:
        for line in drift:
            print(f"  {line}")
        print(
            "error: cold-cached run drifted semantically from the "
            "plain kernel run",
            file=sys.stderr,
        )
        return 1
    cache_totals = {
        counter: value
        for counter, value in total_counters(cached_records).items()
        if counter.startswith("cache.")
    }
    print(f"cache gate: {store.summary_line()} traced={cache_totals}")
    return 0


def _mem_peak(records: list[dict]) -> int:
    """The largest per-run admitted high-water mark in a trace.

    Each ``kernel.map`` span's ``mp.mem_admitted_peak`` total is that
    scheduler run's in-flight peak, so the max over spans is the
    memory high-water mark of the whole chain.
    """
    return max(
        (
            record["counters"].get("mp.mem_admitted_peak", 0)
            for record in records
            if record.get("type") == "span"
        ),
        default=0,
    )


def chaos_gate() -> int:
    """Seeded worker kills under a memory budget; 0 = full recovery.

    The Delta=4 chain runs on the supervised scheduler with the first
    two dispatches of every step SIGKILLed and a 64 KiB admission
    budget.  The gate fails on output divergence, semantic-counter
    drift against the clean kernel run, a missed injection (no
    recorded deaths/retries), or an admission peak over the budget.
    """
    from tests.faults import WorkerKiller

    policy = ShardPolicy(
        worker_probe=WorkerKiller({0, 1}),
        max_inflight_bytes=SHARD_BUDGET_BYTES,
        backoff_base_seconds=0.01,
        backoff_cap_seconds=0.05,
    )
    tracer = Tracer()
    with tracing(tracer), scheduling(policy):
        chaotic = run_mis_chain(use_kernel=True, workers=2)
    records = tracer.finish()
    if chaotic != run_mis_chain(use_kernel=True):
        print(
            "error: chaos run diverged from the clean kernel chain",
            file=sys.stderr,
        )
        return 1
    drift = diff_semantic_profiles(
        semantic_profile(traced_chain_records(use_kernel=True)),
        semantic_profile(records),
    )
    if drift:
        for line in drift:
            print(f"  {line}")
        print(
            "error: chaos run drifted semantically from the clean run",
            file=sys.stderr,
        )
        return 1
    totals = total_counters(records)
    retries = totals.get("mp.retries", 0)
    deaths = totals.get("mp.worker_deaths", 0)
    peak = _mem_peak(records)
    if deaths == 0 or retries == 0:
        print(
            f"error: chaos gate expected injected deaths and retries, "
            f"saw deaths={deaths} retries={retries}",
            file=sys.stderr,
        )
        return 1
    if peak > SHARD_BUDGET_BYTES:
        print(
            f"error: admitted-memory peak {peak} exceeds the "
            f"{SHARD_BUDGET_BYTES}-byte budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos gate: mp.worker_deaths={deaths} mp.retries={retries} "
        f"mp.mem_admitted_peak={peak} (budget {SHARD_BUDGET_BYTES})"
    )
    return 0


def run_sharded_chain(policy: ShardPolicy):
    """The Delta=5 chain on the supervised scheduler."""
    problem = mis_problem(SHARDED_DELTA)
    with scheduling(policy):
        for _ in range(MIS_CHAIN_STEPS):
            problem = speedup(
                problem, use_kernel=True, workers=SHARDED_WORKERS
            ).problem
    return problem


def record_sharded() -> int:
    """Append a ``mode: sharded`` cold/warm row to the trajectory.

    Cold runs against a fresh spill directory (every finished shard is
    sealed to disk); warm reruns the identical chain against the now-
    full spill store, so shards load instead of recompute.  Both runs
    are traced — the row carries the admitted-memory high-water mark
    under the budget, the recovery/spill counters, and the semantic
    drift against the serial kernel chain (must be empty).
    """
    serial = mis_problem(SHARDED_DELTA)
    tracer = Tracer()
    with tracing(tracer):
        for _ in range(MIS_CHAIN_STEPS):
            serial = speedup(serial, use_kernel=True).problem
    serial_records = tracer.finish()

    with tempfile.TemporaryDirectory(prefix="bench-spill-") as spill_dir:
        policy = ShardPolicy(
            max_inflight_bytes=SHARD_BUDGET_BYTES, spill_dir=spill_dir
        )
        cold_tracer = Tracer()
        started = time.perf_counter()
        with tracing(cold_tracer):
            cold = run_sharded_chain(policy)
        cold_seconds = time.perf_counter() - started
        cold_records = cold_tracer.finish()

        warm_tracer = Tracer()
        started = time.perf_counter()
        with tracing(warm_tracer):
            warm = run_sharded_chain(policy)
        warm_seconds = time.perf_counter() - started
        warm_records = warm_tracer.finish()

    if not (serial == cold == warm):
        print(
            "error: sharded cold/warm runs diverged from the serial "
            "chain",
            file=sys.stderr,
        )
        return 1
    warm_totals = total_counters(warm_records)
    if warm_totals.get("mp.spill_loads", 0) == 0:
        print(
            "error: warm run loaded nothing from the spill store",
            file=sys.stderr,
        )
        return 1
    drift = diff_semantic_profiles(
        semantic_profile(serial_records), semantic_profile(cold_records)
    )
    if drift:
        for line in drift:
            print(f"  {line}")
        print(
            "error: sharded run drifted semantically from serial",
            file=sys.stderr,
        )
        return 1
    cold_totals = total_counters(cold_records)
    entry = {
        "chain": f"mis_delta{SHARDED_DELTA}_steps{MIS_CHAIN_STEPS}",
        "mode": "sharded",
        "workers": SHARDED_WORKERS,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "mem_budget_bytes": SHARD_BUDGET_BYTES,
        "mem_peak_bytes": max(_mem_peak(cold_records), _mem_peak(warm_records)),
        "counters": {
            "cold": {
                counter: value
                for counter, value in sorted(cold_totals.items())
                if counter.startswith("mp.")
            },
            "warm": {
                counter: value
                for counter, value in sorted(warm_totals.items())
                if counter.startswith("mp.")
            },
        },
        "semantic_drift": drift,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    trajectory = load_trajectory()
    trajectory.append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"recorded: {entry}")
    print(f"trajectory length: {len(trajectory)} ({TRAJECTORY_PATH})")
    return 0


def run_hotpath_chain(*, use_kernel: bool = True):
    """The cold serial Delta=5 chain: fresh transport registry, no
    cross-run interned-artifact reuse — every measurement pays the
    full interning and search cost the hot path is built to shrink."""
    transport_registry().clear()
    problem = mis_problem(HOTPATH_DELTA)
    for _ in range(MIS_CHAIN_STEPS):
        problem = speedup(problem, use_kernel=use_kernel).problem
    return problem


def measure_hotpath(rounds: int, trace_path: str | None = None) -> dict:
    """Best-of-``rounds`` cold Delta=5 timings plus the profiled
    per-op breakdown.

    Timed runs are untraced and unprofiled; one extra traced run per
    engine collects the drift-checked counters, and the kernel's
    traced run is also profiled for the per-op wall/allocation
    breakdown and its coverage of the traced kernel wall time.  With
    ``trace_path`` the profiled kernel trace is also written as JSON
    lines (before any gate checks, so a failing run still leaves the
    evidence behind — CI uploads it and renders
    ``tools/trace_report.py hotspots`` over it).
    """
    run_hotpath_chain()  # warm-up (imports, bytecode)
    kernel_seconds = min(
        _timed(run_hotpath_chain) for _ in range(rounds)
    )
    started = time.perf_counter()
    reference_problem = run_hotpath_chain(use_kernel=False)
    reference_seconds = time.perf_counter() - started
    if reference_problem != run_hotpath_chain():
        raise AssertionError(
            "hot-path kernel chain diverged from the reference engine"
        )
    reference_tracer = Tracer()
    with tracing(reference_tracer):
        run_hotpath_chain(use_kernel=False)
    reference_records = reference_tracer.finish()
    kernel_tracer = Tracer()
    with tracing(kernel_tracer), profiling(Profiler()):
        run_hotpath_chain()
    kernel_records = kernel_tracer.finish()
    if trace_path is not None:
        kernel_tracer.write(trace_path)
    drift = diff_semantic_profiles(
        semantic_profile(reference_records), semantic_profile(kernel_records)
    )
    profile = hotspot_profile(kernel_records)
    breakdown = {
        op: {
            "calls": totals["calls"],
            "wall_ms": round(totals["wall_ns"] / 1e6, 3),
            "alloc_blocks": totals["alloc_blocks"],
        }
        for op, totals in sorted(
            profile["ops"].items(),
            key=lambda item: item[1]["wall_ns"],
            reverse=True,
        )
    }
    return {
        "chain": f"mis_delta{HOTPATH_DELTA}_steps{MIS_CHAIN_STEPS}",
        "mode": "hotpath",
        "reference_seconds": round(reference_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(reference_seconds / kernel_seconds, 2),
        "profile": breakdown,
        "coverage": round(profile["coverage"] or 0.0, 4),
        "counters": {
            "reference": total_counters(reference_records),
            "kernel": total_counters(kernel_records),
        },
        "semantic_drift": drift,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _print_hotpath_entry(entry: dict) -> None:
    print(
        f"hotpath: speedup {entry['speedup']}x "
        f"(reference {entry['reference_seconds']}s, "
        f"kernel {entry['kernel_seconds']}s, "
        f"coverage {entry['coverage']:.1%})"
    )
    for op, totals in entry["profile"].items():
        print(
            f"  {op}: calls={totals['calls']} "
            f"wall_ms={totals['wall_ms']} "
            f"alloc_blocks={totals['alloc_blocks']}"
        )


def _check_hotpath_entry(entry: dict) -> int:
    """Shared validity checks for record and gate modes; 0 = sound."""
    if entry["semantic_drift"]:
        for line in entry["semantic_drift"]:
            print(f"  {line}")
        print(
            "error: hot-path run drifted semantically between engines",
            file=sys.stderr,
        )
        return 1
    if entry["coverage"] < HOTPATH_MIN_COVERAGE:
        print(
            f"error: profiled sections cover {entry['coverage']:.1%} of "
            f"kernel wall time, below required "
            f"{HOTPATH_MIN_COVERAGE:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def record_hotpath(trace_path: str | None = None) -> int:
    """Append a ``mode: hotpath`` row to the trajectory."""
    entry = measure_hotpath(rounds=3, trace_path=trace_path)
    _print_hotpath_entry(entry)
    failed = _check_hotpath_entry(entry)
    if failed:
        return failed
    trajectory = load_trajectory()
    trajectory.append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"trajectory length: {len(trajectory)} ({TRAJECTORY_PATH})")
    return 0


def hotpath_gate() -> int:
    """Single Delta=5 measurement vs. the best hotpath row; 0 = pass.

    Ratio-based like the Delta=4 floor — wall-clock seconds do not
    transfer between machines, kernel-vs-reference speedup ratios do —
    but with the tighter ``HOTPATH_REGRESSION_FACTOR``, since the
    single optimized chain shape is far less noisy than the whole
    suite.  Skips silently when no hotpath row has been recorded yet.
    """
    rows = [
        item for item in load_trajectory() if item.get("mode") == "hotpath"
    ]
    if not rows:
        print("no recorded hotpath rows - nothing to compare against")
        return 0
    entry = measure_hotpath(rounds=1)
    _print_hotpath_entry(entry)
    failed = _check_hotpath_entry(entry)
    if failed:
        return failed
    best = max(row["speedup"] for row in rows)
    floor = best / HOTPATH_REGRESSION_FACTOR
    print(
        f"hotpath best recorded: {best}x, regression floor: {floor:.2f}x"
    )
    if entry["speedup"] < floor:
        print(
            f"error: hot-path speedup regressed more than "
            f"{HOTPATH_REGRESSION_FACTOR}x below the best recorded "
            f"hotpath row",
            file=sys.stderr,
        )
        return 1
    return 0


def scenario_gate() -> int:
    """The registry's quick scenarios on both engines; 0 = pass.

    Runs every ``quick=True`` declaration from the scenario registry —
    chosen to cover at least one non-MIS family cheaply — on the
    reference and kernel engines and fails on any expectation drift
    (steps, certified rounds, fixed-point shape) or divergence between
    the two certified chains.
    """
    from repro.scenarios import load_registry, run_scenario

    for decl, spec in load_registry():
        if not decl.quick:
            continue
        reference = run_scenario(spec, use_kernel=False)
        kernel = run_scenario(spec, use_kernel=True)
        for engine, run in (("reference", reference), ("kernel", kernel)):
            if not run.ok:
                for failure in run.failures:
                    print(f"  {failure}")
                print(
                    f"error: scenario {spec.name} failed expectations "
                    f"on the {engine} engine",
                    file=sys.stderr,
                )
                return 1
        if reference.problems != kernel.problems:
            print(
                f"error: scenario {spec.name} diverged between engines",
                file=sys.stderr,
            )
            return 1
        labels = " -> ".join(
            str(len(problem.alphabet)) for problem in kernel.problems
        )
        print(
            f"scenario gate: {spec.name} steps={kernel.steps} "
            f"certified={kernel.certified_rounds} labels {labels}"
        )
    return 0


def quick_gate() -> int:
    """Single measurement vs. the best recorded ratio; 0 = pass.

    Also fails on any semantic-counter drift between the engines —
    the differential contract checked for free while we have the
    traced runs in hand — and on any cache-transparency violation
    (see :func:`cache_gate`).
    """
    entry = measure_chain(rounds=1)
    trajectory = load_trajectory()
    print(
        f"current: speedup {entry['speedup']}x "
        f"(reference {entry['reference_seconds']}s, "
        f"kernel {entry['kernel_seconds']}s)"
    )
    for engine in ("reference", "kernel"):
        counters = " ".join(
            f"{counter}={value}"
            for counter, value in entry["counters"][engine].items()
        )
        print(f"{engine} counters: {counters}")
    if entry["semantic_drift"]:
        for line in entry["semantic_drift"]:
            print(f"  {line}")
        print(
            "error: semantic counters drifted between reference and kernel",
            file=sys.stderr,
        )
        return 1
    failed = cache_gate()
    if failed:
        return failed
    failed = chaos_gate()
    if failed:
        return failed
    failed = scenario_gate()
    if failed:
        return failed
    failed = hotpath_gate()
    if failed:
        return failed
    # The trajectory also holds cold/warm cache entries (bench_cache.py)
    # and per-scenario rows (bench_scenarios.py) whose "speedup" does
    # not measure the Delta=4 MIS chain — only plain kernel
    # measurements set the regression floor.
    kernel_entries = [
        item["speedup"]
        for item in trajectory
        if "kernel_seconds" in item and "mode" not in item
    ]
    if not kernel_entries:
        print("no recorded trajectory - nothing to compare against")
        return 0
    best = max(kernel_entries)
    floor = best / REGRESSION_FACTOR
    print(f"best recorded: {best}x, regression floor: {floor:.2f}x")
    if entry["speedup"] < floor:
        print(
            f"error: kernel speedup regressed more than "
            f"{REGRESSION_FACTOR}x below the best recorded ratio",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


def main(argv: list[str]) -> int:
    quick = False
    sharded = False
    hotpath = False
    trace_path: str | None = None
    arguments = list(argv)
    if "--trace" in arguments:
        where = arguments.index("--trace")
        try:
            trace_path = arguments[where + 1]
        except IndexError:
            print("error: --trace needs a path", file=sys.stderr)
            return 2
        arguments = arguments[:where] + arguments[where + 2:]
    for argument in arguments:
        if argument == "--quick":
            quick = True
        elif argument == "--sharded":
            sharded = True
        elif argument == "--hotpath":
            hotpath = True
        else:
            print(f"error: unknown option {argument}", file=sys.stderr)
            return 2
    if trace_path is not None and not hotpath:
        print("error: --trace only applies to --hotpath", file=sys.stderr)
        return 2
    try:
        if quick:
            return quick_gate()
        if sharded:
            return record_sharded()
        if hotpath:
            return record_hotpath(trace_path)
        record()
        return 0
    except Exception as error:  # any measurement failure must exit non-zero
        print(f"error: benchmark failed: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
