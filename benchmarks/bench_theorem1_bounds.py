"""THM1/COR2: the lifted lower bounds and the improvement over prior work.

Regenerates the paper's headline comparison: Theorem 1's
Omega(min{log Delta, log_Delta n}) against the FOCS'20 bound it
improves (log Delta / loglog Delta), plus the Corollary 2 balancing
choice Delta ~ 2^sqrt(log n).
"""

from repro.analysis.bounds import (
    bbo2020_deterministic_lower_bound,
    bbo2020_randomized_lower_bound,
    this_paper_deterministic_shape,
)
from repro.analysis.tables import Table
from repro.lowerbound.lift import (
    corollary2_delta_choice,
    corollary2_deterministic_bound,
    corollary2_randomized_bound,
    lower_bound_summary,
    theorem1_deterministic_bound,
    theorem1_randomized_bound,
)


def test_theorem1_bound_table(once):
    def compute():
        rows = []
        for exponent in (6, 9, 12, 15, 18):
            delta = 2**exponent
            for n_exponent in (24, 64, 256):
                summary = lower_bound_summary(2**n_exponent, delta, 0)
                rows.append(
                    (
                        f"2^{exponent}",
                        f"2^{n_exponent}",
                        summary["chain_length"],
                        summary["deterministic_rounds"],
                        summary["randomized_rounds"],
                        summary["premises_ok"],
                    )
                )
        return rows

    rows = once(compute)
    table = Table(
        "Theorem 1 - certified lower bounds (rounds), via Lemma 13 + Theorem 14",
        ["Delta", "n", "t(Delta)", "det bound", "rand bound", "premises"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(row[-1] for row in rows)
    # min-structure: the bound never exceeds the chain length.
    for row in rows:
        assert row[3] <= row[2]


def test_improvement_over_focs20(once):
    """The paper's improvement: log Delta vs log Delta / loglog Delta.

    Who wins: this paper, by a factor growing like loglog Delta (for n
    large enough that the Delta branch binds)."""
    n = 10**3000

    def compute():
        rows = []
        for exponent in (8, 12, 16, 24, 32, 48, 64):
            delta = 2.0**exponent
            ours = this_paper_deterministic_shape(n, delta)
            focs20 = bbo2020_deterministic_lower_bound(n, delta)
            rows.append((exponent, ours, focs20, ours / focs20))
        return rows

    rows = once(compute)
    table = Table(
        "Improvement over [5] (FOCS'20) - deterministic, Delta branch",
        ["log2 Delta", "this paper", "FOCS'20", "ratio"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    ratios = [row[3] for row in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))  # grows
    assert ratios[-1] >= 2.0  # clear separation at Delta = 2^64


def test_corollary2_bounds(once):
    def compute():
        rows = []
        for exponent in (16, 36, 64, 144, 400, 1024):
            n = 2**exponent
            rows.append(
                (
                    f"2^{exponent}",
                    corollary2_delta_choice(n),
                    corollary2_deterministic_bound(n),
                    corollary2_randomized_bound(n),
                )
            )
        return rows

    rows = once(compute)
    table = Table(
        "Corollary 2 - balanced Delta ~ 2^sqrt(log n) and the resulting bounds",
        ["n", "Delta choice", "det rounds (~sqrt(log n))", "rand rounds"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    deterministic = [row[2] for row in rows]
    assert all(b >= a for a, b in zip(deterministic, deterministic[1:]))
    assert deterministic[-1] >= 4  # Omega(sqrt(log n)) kicks in


def test_theorem1_k_dependence(once):
    delta = 2**15
    n = 10**100

    def compute():
        return [
            (k, theorem1_deterministic_bound(n, delta, k),
             theorem1_randomized_bound(n, delta, k))
            for k in (0, 1, 8, 64, 512, 4096)
        ]

    rows = once(compute)
    table = Table(
        "Theorem 1 - k-outdegree relaxation: bound vs k (Delta = 2^15)",
        ["k", "det bound", "rand bound"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    bounds = [row[1] for row in rows]
    assert all(b <= a for a, b in zip(bounds, bounds[1:]))
