"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one paper artifact (figure, lemma, or
theorem-shaped table), asserts its shape, and prints the table so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation narrative end to end.  Timing numbers come from
pytest-benchmark; correctness assertions run on the timed results.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "bench: paper-artifact regeneration benchmarks"
    )


@pytest.fixture
def once(benchmark):
    """Run the timed callable exactly once (for heavy computations)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
