"""LEM8: Pi+ is one round easier — direct engine check + the paper's
case analysis at larger Delta.

The direct check computes the node constraint of Rbar(R(Pi)) in full
and relaxes every configuration into Pi_rel; the argument check
executes the proof's right-closedness and counting facts, which scale
to Delta far beyond what the direct computation can reach.
"""

from repro.analysis.tables import Table
from repro.lowerbound.lemma8 import verify_lemma8_argument, verify_lemma8_direct

DIRECT_SWEEP = [(3, 2, 0), (4, 3, 1), (5, 3, 1), (5, 4, 2)]
ARGUMENT_SWEEP = [(6, 4, 1), (8, 6, 2), (10, 7, 2), (12, 9, 3), (14, 10, 3)]


def test_lemma8_direct_sweep(once):
    results = once(
        lambda: [verify_lemma8_direct(delta, a, x) for delta, a, x in DIRECT_SWEEP]
    )
    table = Table(
        "Lemma 8 (direct) - all configs of Rbar(R(Pi)) relax into Pi_rel",
        ["delta", "a", "x", "verified"],
    )
    for (delta, a, x), ok in zip(DIRECT_SWEEP, results):
        table.add_row(delta, a, x, ok)
    table.print()
    assert all(results)


def test_lemma8_argument_sweep(once):
    reports = once(
        lambda: [
            verify_lemma8_argument(delta, a, x) for delta, a, x in ARGUMENT_SWEEP
        ]
    )
    table = Table(
        "Lemma 8 (paper's case analysis) - at Delta beyond direct reach",
        ["delta", "a", "x", "diagram facts", "counting facts", "all ok"],
    )
    for (delta, a, x), report in zip(ARGUMENT_SWEEP, reports):
        diagram_facts = all(
            [
                report.no_p_implies_mubq,
                report.no_u_implies_abpq,
                report.no_m_implies_ouabpq,
                report.no_b_implies_pq,
                report.no_a_implies_ubpq,
            ]
        )
        counting_facts = (
            report.no_m_p_u_configuration and report.no_a_u_b_configuration
        )
        table.add_row(delta, a, x, diagram_facts, counting_facts, report.ok)
    table.print()
    assert all(report.ok for report in reports)


def test_lemma8_direct_single_timing(benchmark):
    assert benchmark.pedantic(
        verify_lemma8_direct, args=(4, 3, 1), iterations=1, rounds=3
    )
