"""FIG4: regenerate Figure 4 — the edge diagram of Pi_Delta(a, x).

Paper claim: the diagram is the chain P -> A -> O -> X with M -> X on
the side, independent of a and x (the edge constraint does not involve
them).
"""

import itertools

from repro.analysis.tables import Table
from repro.core.diagram import edge_diagram
from repro.problems.family import family_problem

EXPECTED = {("P", "A"), ("A", "O"), ("O", "X"), ("M", "X")}


def test_fig4_family_edge_diagram(benchmark):
    diagram = benchmark(lambda: edge_diagram(family_problem(5, 3, 1)))
    assert diagram.hasse_edges() == EXPECTED

    table = Table(
        "Figure 4 - edge diagram of Pi_Delta(a, x) (computed)",
        ["Hasse edge (weak -> strong)", "in paper figure"],
    )
    for weak, strong in sorted(diagram.hasse_edges()):
        table.add_row(f"{weak} -> {strong}", (weak, strong) in EXPECTED)
    table.print()


def test_fig4_parameter_sweep(benchmark):
    def sweep():
        edge_sets = []
        for delta in (4, 5, 6, 8):
            for a, x in itertools.product(range(delta + 1), repeat=2):
                edge_sets.append(
                    edge_diagram(family_problem(delta, a, x)).hasse_edges()
                )
        return edge_sets

    edge_sets = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert all(edges == EXPECTED for edges in edge_sets)


def test_fig4_right_closed_sets_are_the_lemma6_eight(benchmark):
    diagram = benchmark(lambda: edge_diagram(family_problem(6, 4, 1)))
    expected_sets = {
        frozenset("X"), frozenset("MX"), frozenset("OX"), frozenset("MOX"),
        frozenset("AOX"), frozenset("MAOX"), frozenset("PAOX"),
        frozenset("MPAOX"),
    }
    assert set(diagram.right_closed_sets()) == expected_sets
