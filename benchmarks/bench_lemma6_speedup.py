"""FIG5 / LEM6: regenerate Lemma 6 and Figure 5.

The engine recomputes R(Pi_Delta(a, x)) across a (Delta, a, x) sweep
and must reproduce the claimed normal form exactly; the node diagram of
the result must be the Figure 5 Hasse diagram.
"""

from repro.analysis.tables import Table
from repro.lowerbound.lemma6 import (
    FIGURE5_HASSE_EDGES,
    compute_r_of_family,
    expected_r_of_family,
    figure5_diagram,
    verify_lemma6,
)

SWEEP = [(4, 3, 1), (5, 3, 1), (5, 4, 2), (6, 4, 1), (6, 5, 2), (7, 5, 1)]


def test_lemma6_normal_form_sweep(once):
    def sweep():
        return [verify_lemma6(delta, a, x) for delta, a, x in SWEEP]

    results = once(sweep)
    assert all(results)

    table = Table(
        "Lemma 6 - R(Pi_Delta(a, x)) equals the claimed normal form",
        ["delta", "a", "x", "labels", "node configs", "matches paper"],
    )
    for (delta, a, x), ok in zip(SWEEP, results):
        problem = expected_r_of_family(delta, a, x)
        table.add_row(delta, a, x, len(problem.alphabet),
                      len(problem.node_constraint), ok)
    table.print()


def test_lemma6_single_instance_timing(benchmark):
    problem = benchmark(lambda: compute_r_of_family(5, 3, 1).problem)
    assert len(problem.alphabet) == 8
    assert len(problem.edge_constraint) == 4


def test_figure5_node_diagram(benchmark):
    diagram = benchmark(lambda: figure5_diagram(6, 4, 1))
    assert diagram.hasse_edges() == FIGURE5_HASSE_EDGES

    table = Table(
        "Figure 5 - node diagram of R(Pi_Delta(a, x)) (computed)",
        ["Hasse edge (weak -> strong)"],
    )
    for weak, strong in sorted(diagram.hasse_edges()):
        table.add_row(f"{weak} -> {strong}")
    table.print()
