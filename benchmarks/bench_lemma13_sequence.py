"""LEM13: the Omega(log Delta) chain — length vs Delta, and vs k.

This is the paper's central quantitative object: the number of
round-elimination steps certified by the problem family.  The series
must grow linearly in log Delta, and collapse once k approaches a
power of Delta (the k <= Delta^epsilon hypothesis).
"""

import math

from repro.analysis.tables import Table, series
from repro.lowerbound.sequence import (
    lemma13_chain,
    max_k_for_logdelta_bound,
    sequence_length,
    verify_chain_arithmetic,
)


def test_lemma13_length_vs_delta(once):
    exponents = list(range(4, 31, 2))

    def compute():
        return [sequence_length(2**e, 0) for e in exponents]

    lengths = once(compute)
    table = Table(
        "Lemma 13 - chain length t(Delta) (the Omega(log Delta) series)",
        ["log2 Delta", "t(Delta)", "t / log2 Delta"],
    )
    for exponent, length in zip(exponents, lengths):
        table.add_row(exponent, length, length / exponent)
    table.print()
    print("shape:", series(lengths))

    # Linear in log Delta: ratio t / log2(Delta) converges into [1/4, 1/2].
    ratios = [length / exponent for exponent, length in zip(exponents, lengths)]
    assert all(b >= a for a, b in zip(lengths, lengths[1:]))
    assert 0.2 <= ratios[-1] <= 0.5
    # Certified: every chain passes the side-condition audit.
    for exponent in (8, 16, 24):
        assert verify_chain_arithmetic(lemma13_chain(2**exponent, 0))


def test_lemma13_length_vs_k(once):
    delta = 2**15

    def compute():
        ks = [0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096]
        return [(k, sequence_length(delta, k)) for k in ks]

    rows = once(compute)
    table = Table(
        f"Lemma 13 - chain length vs k (Delta = 2^15); the k <= Delta^eps edge",
        ["k", "t(Delta, k)", "k as Delta^eps"],
    )
    for k, length in rows:
        eps = math.log(k, delta) if k > 1 else 0.0
        table.add_row(k, length, f"eps = {eps:.2f}")
    table.print()
    lengths = [length for _, length in rows]
    assert all(b <= a for a, b in zip(lengths, lengths[1:]))
    assert lengths[0] >= 4
    assert lengths[-1] <= 1

    threshold = max_k_for_logdelta_bound(delta)
    print(f"largest k retaining half the k=0 chain: {threshold}")
    assert threshold >= delta**0.2
