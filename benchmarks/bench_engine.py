"""RE-ENGINE: micro-benchmarks of the round-elimination operators.

The paper (Sec. 1.2) discusses the doubly-exponential growth of naive
round elimination; these benchmarks measure the engine's R / Rbar cost
versus Delta and alphabet size, and document the growth the family
avoids by staying at 5 labels.
"""

from repro.analysis.tables import Table
from repro.core.round_elimination import R, Rbar, rename_to_strings, speedup
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


def test_r_of_family_scaling(once):
    def compute():
        rows = []
        for delta in (4, 6, 8, 10, 12):
            problem = family_problem(delta, delta - 2, 1)
            result = R(problem)
            rows.append(
                (delta, len(result.alphabet), len(result.node_constraint),
                 len(result.edge_constraint))
            )
        return rows

    rows = once(compute)
    table = Table(
        "R(Pi_Delta(a, x)) size vs Delta (labels stay at 8: Lemma 6)",
        ["delta", "labels", "node configs", "edge configs"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(labels == 8 and edges == 4 for _, labels, _, edges in rows)


def test_r_timing_mis(benchmark):
    problem = mis_problem(6)
    result = benchmark(lambda: R(problem))
    assert len(result.edge_constraint) == 2


def test_rbar_timing_family(benchmark):
    intermediate = rename_to_strings(R(family_problem(4, 3, 1))).problem
    result = benchmark.pedantic(
        lambda: Rbar(intermediate), iterations=1, rounds=3
    )
    assert len(result.node_constraint) >= 1


def test_speedup_growth_without_simplification(once):
    """The doubly-exponential growth the paper's Sec. 1.2 describes:
    label counts under iterated speedup of MIS, no simplification."""

    def compute():
        problem = mis_problem(3)
        counts = [len(problem.alphabet)]
        for _ in range(2):
            problem = speedup(problem).problem
            counts.append(len(problem.alphabet))
        return counts

    counts = once(compute)
    table = Table(
        "Iterated speedup of MIS (Delta=3), label growth (Sec 1.2)",
        ["step", "labels"],
    )
    for step, count in enumerate(counts):
        table.add_row(step, count)
    table.print()
    assert counts[0] == 3
    assert counts[-1] > counts[0]  # growth without simplification


def test_sinkless_orientation_fixed_point(benchmark):
    """SO reaches its speedup fixed point: the engine agrees with [14]."""
    so = sinkless_orientation_problem(3)

    def compute():
        first = speedup(so).problem
        second = speedup(first).problem
        return first, second

    first, second = benchmark.pedantic(compute, iterations=1, rounds=1)
    assert first.is_isomorphic(second)
