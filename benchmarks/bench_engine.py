"""RE-ENGINE: micro-benchmarks of the round-elimination operators.

The paper (Sec. 1.2) discusses the doubly-exponential growth of naive
round elimination; these benchmarks measure the engine's R / Rbar cost
versus Delta and alphabet size, and document the growth the family
avoids by staying at 5 labels.

Running this file as a script (``PYTHONPATH=src python
benchmarks/bench_engine.py``) times the Delta=4 MIS round-elimination
chain on both engines, checks the results are identical, and reports
the kernel speedup (expected >= 5x; see benchmarks/bench_kernel.py for
the recorded trajectory).
"""

import time

from repro.analysis.tables import Table
from repro.core.round_elimination import R, Rbar, rename_to_strings, speedup
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem

MIS_CHAIN_DELTA = 4
MIS_CHAIN_STEPS = 2


def run_mis_chain(*, use_kernel: bool, workers: int | None = None):
    """The Delta=4 MIS chain: two full speedup steps Rbar(R(.))."""
    problem = mis_problem(MIS_CHAIN_DELTA)
    for _ in range(MIS_CHAIN_STEPS):
        problem = speedup(problem, use_kernel=use_kernel, workers=workers).problem
    return problem


def test_r_of_family_scaling(once):
    def compute():
        rows = []
        for delta in (4, 6, 8, 10, 12):
            problem = family_problem(delta, delta - 2, 1)
            result = R(problem)
            rows.append(
                (delta, len(result.alphabet), len(result.node_constraint),
                 len(result.edge_constraint))
            )
        return rows

    rows = once(compute)
    table = Table(
        "R(Pi_Delta(a, x)) size vs Delta (labels stay at 8: Lemma 6)",
        ["delta", "labels", "node configs", "edge configs"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(labels == 8 and edges == 4 for _, labels, _, edges in rows)


def test_r_timing_mis(benchmark):
    problem = mis_problem(6)
    result = benchmark(lambda: R(problem))
    assert len(result.edge_constraint) == 2


def test_rbar_timing_family(benchmark):
    intermediate = rename_to_strings(R(family_problem(4, 3, 1))).problem
    result = benchmark.pedantic(
        lambda: Rbar(intermediate), iterations=1, rounds=3
    )
    assert len(result.node_constraint) >= 1


def test_speedup_growth_without_simplification(once):
    """The doubly-exponential growth the paper's Sec. 1.2 describes:
    label counts under iterated speedup of MIS, no simplification."""

    def compute():
        problem = mis_problem(3)
        counts = [len(problem.alphabet)]
        for _ in range(2):
            problem = speedup(problem).problem
            counts.append(len(problem.alphabet))
        return counts

    counts = once(compute)
    table = Table(
        "Iterated speedup of MIS (Delta=3), label growth (Sec 1.2)",
        ["step", "labels"],
    )
    for step, count in enumerate(counts):
        table.add_row(step, count)
    table.print()
    assert counts[0] == 3
    assert counts[-1] > counts[0]  # growth without simplification


def test_sinkless_orientation_fixed_point(benchmark):
    """SO reaches its speedup fixed point: the engine agrees with [14]."""
    so = sinkless_orientation_problem(3)

    def compute():
        first = speedup(so).problem
        second = speedup(first).problem
        return first, second

    first, second = benchmark.pedantic(compute, iterations=1, rounds=1)
    assert first.is_isomorphic(second)


def test_kernel_matches_reference_on_chain(once):
    """The interned-bitmask fast path reproduces the reference chain."""
    reference = run_mis_chain(use_kernel=False)
    kernel = once(lambda: run_mis_chain(use_kernel=True))
    assert reference == kernel


def main() -> None:
    """Time the Delta=4 MIS chain, reference vs kernel, and report."""
    # Warm-up pass so import costs and caches don't pollute the timing.
    run_mis_chain(use_kernel=True)
    started = time.perf_counter()
    reference = run_mis_chain(use_kernel=False)
    reference_seconds = time.perf_counter() - started
    started = time.perf_counter()
    kernel = run_mis_chain(use_kernel=True)
    kernel_seconds = time.perf_counter() - started
    assert reference == kernel, "kernel chain result differs from reference"
    ratio = reference_seconds / kernel_seconds
    table = Table(
        f"MIS Delta={MIS_CHAIN_DELTA} chain ({MIS_CHAIN_STEPS} speedup steps)",
        ["engine", "seconds"],
    )
    table.add_row("reference", f"{reference_seconds:.3f}")
    table.add_row("kernel", f"{kernel_seconds:.3f}")
    table.print()
    print(f"kernel speedup: {ratio:.1f}x (use_kernel=True, identical output)")


if __name__ == "__main__":
    main()
