"""LINE: the Section 1.1 line-graph claims, exercised at scale.

Two claims: (1) an MIS of L(G) maps to a maximal matching of G;
(2) outdegree <= k in a line-graph subgraph forces degree O(k) — the
reason the paper's k-outdegree and k-degree bounds coincide on line
graphs.
"""

import random

from repro.algorithms.greedy import greedy_mis
from repro.algorithms.luby import run_luby_mis
from repro.analysis.tables import Table
from repro.sim.generators import random_tree_bounded_degree, truncated_regular_tree
from repro.sim.transform import (
    degeneracy_orientation,
    induced_subgraph,
    is_maximal_matching,
    line_graph,
    matching_from_line_graph_mis,
)
from repro.sim.verifiers import verify_mis


def test_line_graph_mis_is_maximal_matching(once):
    def run_all():
        rows = []
        for delta, depth in ((3, 4), (4, 3), (5, 3)):
            base = truncated_regular_tree(delta, depth)
            line = line_graph(base)
            result = run_luby_mis(line.graph, seed=delta)
            mis = {node for node in range(line.graph.n) if result.outputs[node]}
            matching = matching_from_line_graph_mis(base, line, mis)
            rows.append(
                (
                    delta,
                    base.n,
                    line.graph.n,
                    verify_mis(line.graph, mis).ok,
                    is_maximal_matching(base, matching),
                )
            )
        return rows

    rows = once(run_all)
    table = Table(
        "Line graphs - MIS of L(G) == maximal matching of G (Sec. 1.1)",
        ["delta", "|V(G)|", "|V(L(G))|", "MIS valid", "matching maximal"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    assert all(row[3] and row[4] for row in rows)


def test_outdegree_vs_degree_in_line_graphs(once):
    """Measured max-degree / outdegree ratio across random samples: the
    paper's O(k) with the clique argument's factor ~4 as the ceiling."""

    def run_all():
        worst = 0.0
        samples = 0
        for seed in range(30):
            rng = random.Random(seed)
            base = random_tree_bounded_degree(60, 5, rng)
            line = line_graph(base)
            selected = {
                node for node in range(line.graph.n) if rng.random() < 0.6
            }
            if len(selected) < 2:
                continue
            subgraph, _ = induced_subgraph(line.graph, selected)
            _, degeneracy = degeneracy_orientation(subgraph)
            max_degree = max(
                subgraph.degree(node) for node in range(subgraph.n)
            )
            if degeneracy:
                worst = max(worst, max_degree / degeneracy)
            samples += 1
        return worst, samples

    worst, samples = once(run_all)
    table = Table(
        "Line graphs - degree / outdegree ratio over random subsets",
        ["samples", "worst degree/outdeg ratio", "paper bound O(k): factor <= ~4"],
    )
    table.add_row(samples, worst, worst <= 4.5)
    table.print()
    assert samples >= 20
    assert worst <= 4.5


def test_line_graph_construction_timing(benchmark):
    base = truncated_regular_tree(4, 4)
    result = benchmark(lambda: line_graph(base))
    assert result.graph.n == base.m
