"""UPPER: the Section 1.1 upper bounds, measured on the simulator.

The k-outdegree dominating-set sweep must scale like Delta/(k+1) rounds
(plus the coloring), reproducing the O(Delta/k + log* n) discussion;
overlaying Theorem 1's lower bound shows who wins where (the bounds
are compatible: log Delta <= Delta/k for k <= Delta^eps).
"""

from repro.algorithms.cole_vishkin import run_cole_vishkin
from repro.algorithms.sweep import run_kods_sweep
from repro.algorithms.trees import spread_tree_coloring
from repro.analysis.bounds import log_star, upper_bound_k_outdegree_ds
from repro.analysis.tables import Table
from repro.lowerbound.lift import theorem1_deterministic_bound
from repro.sim.generators import truncated_regular_tree
from repro.sim.verifiers import verify_k_outdegree_dominating_set


def test_kods_rounds_vs_k(once):
    delta, depth = 8, 2
    graph = truncated_regular_tree(delta, depth)
    coloring = run_cole_vishkin(graph)

    def compute():
        rows = []
        # Sweep over a full (Delta+1)-coloring to expose the Delta/(k+1)
        # scaling (greedy 2-colors a tree and would hide it).
        palette = delta + 1
        colors = spread_tree_coloring(graph, palette)
        for k in (0, 1, 2, 3, 7):
            result = run_kods_sweep(graph, colors, palette, k)
            valid = verify_k_outdegree_dominating_set(
                graph, result.selected, result.orientation, k
            ).ok
            rows.append((k, result.rounds, len(result.selected), valid))
        return rows

    rows = once(compute)
    table = Table(
        f"k-ODS sweep on the Delta={delta} regular tree "
        f"(n={graph.n}; + {coloring.rounds} coloring rounds)",
        ["k", "sweep rounds", "|S|", "valid", "paper shape Delta/k + log* n"],
    )
    for k, rounds, size, valid in rows:
        table.add_row(
            k, rounds, size, valid,
            f"{upper_bound_k_outdegree_ds(graph.n, delta, max(k, 1)):.1f}",
        )
    table.print()
    assert all(valid for _, _, _, valid in rows)
    round_counts = [rounds for _, rounds, _, _ in rows]
    assert all(b <= a for a, b in zip(round_counts, round_counts[1:]))
    assert round_counts[0] >= 2 * round_counts[-1]  # genuine Delta/k scaling


def test_upper_vs_lower_crossover(once):
    """Who wins: the lower bound stays below the upper bound everywhere,
    and the gap (Delta/k vs log Delta) widens with Delta — the paper's
    open-question territory (is the truth Omega(Delta)?)."""
    n = 10**80

    def compute():
        rows = []
        for exponent in (6, 9, 12, 15):
            delta = 2**exponent
            lower = theorem1_deterministic_bound(n, delta, 1)
            upper = upper_bound_k_outdegree_ds(n, delta, 1)
            rows.append((f"2^{exponent}", lower, upper, upper / max(lower, 1)))
        return rows

    rows = once(compute)
    table = Table(
        "Lower (Thm 1, certified) vs upper (Sec 1.1) for k = 1",
        ["Delta", "lower bound", "upper bound", "gap factor"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    for _, lower, upper, _ in rows:
        assert lower <= upper
    gaps = [row[3] for row in rows]
    assert gaps[-1] > gaps[0]  # the open Delta-vs-log-Delta gap widens


def test_mis_sweep_logstar_shape(once):
    """MIS via Cole-Vishkin + sweep: rounds ~ log* n + constant, the
    O(Delta + log* n) shape of [10] at Delta = 3."""

    def compute():
        rows = []
        for depth in (2, 4, 6, 8):
            graph = truncated_regular_tree(3, depth)
            coloring = run_cole_vishkin(graph)
            rows.append((graph.n, coloring.rounds + 3, log_star(graph.n)))
        return rows

    rows = once(compute)
    table = Table(
        "Deterministic MIS on regular trees: rounds vs log* n",
        ["n", "total rounds (coloring + 3-sweep)", "log* n"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    # Round counts grow far slower than n: within additive constant of log*.
    for n, rounds, logstar in rows:
        assert rounds <= logstar + 10
