"""FIG1: regenerate Figure 1 — the edge diagram of the MIS problem.

Paper claim: in the MIS encoding, O is stronger than P and M is
unrelated to both.
"""

from repro.analysis.tables import Table
from repro.core.diagram import edge_diagram
from repro.problems.mis import mis_problem


def test_fig1_mis_edge_diagram(benchmark):
    diagram = benchmark(lambda: edge_diagram(mis_problem(3)))
    assert diagram.hasse_edges() == {("P", "O")}
    assert not diagram.at_least_as_strong("M", "P")
    assert not diagram.at_least_as_strong("P", "M")

    table = Table(
        "Figure 1 - edge diagram of MIS (computed)",
        ["relation", "paper", "measured"],
    )
    table.add_row("P -> O (O stronger than P)", "yes", diagram.stronger("O", "P"))
    table.add_row("M comparable to P", "no", diagram.at_least_as_strong("M", "P")
                  or diagram.at_least_as_strong("P", "M"))
    table.add_row("M comparable to O", "no", diagram.at_least_as_strong("M", "O")
                  or diagram.at_least_as_strong("O", "M"))
    table.print()


def test_fig1_stable_across_delta(benchmark):
    def compute():
        return [edge_diagram(mis_problem(delta)).hasse_edges() for delta in range(2, 9)]

    edge_sets = benchmark(compute)
    assert all(edges == {("P", "O")} for edges in edge_sets)
