"""MIS-ALGS: the Section 1.3 algorithm landscape, measured.

Round counts of Luby, the Ghaffari-style MIS and the deterministic
Cole-Vishkin pipeline on trees of growing size; outputs verified.
The shape to reproduce: Luby ~ log n, Ghaffari-style flat-ish in n
(log Delta + lower-order), Cole-Vishkin ~ log* n.
"""

import random

from repro.algorithms.cole_vishkin import run_cole_vishkin
from repro.algorithms.ghaffari import run_ghaffari_mis
from repro.algorithms.luby import run_luby_mis
from repro.algorithms.sweep import run_mis_sweep
from repro.analysis.bounds import log_star
from repro.analysis.tables import Table
from repro.sim.generators import random_tree_bounded_degree
from repro.sim.verifiers import verify_mis


def _mis_from(result, graph):
    return {node for node in range(graph.n) if result.outputs[node]}


def test_mis_round_counts_vs_n(once):
    delta = 4

    def compute():
        rows = []
        for n in (50, 200, 800):
            graph = random_tree_bounded_degree(n, delta, random.Random(n))
            luby = run_luby_mis(graph, seed=1)
            ghaffari = run_ghaffari_mis(graph, seed=1)
            coloring = run_cole_vishkin(graph)
            sweep = run_mis_sweep(graph, coloring.outputs, 3)
            assert verify_mis(graph, _mis_from(luby, graph)).ok
            assert verify_mis(graph, _mis_from(ghaffari, graph)).ok
            assert verify_mis(graph, _mis_from(sweep, graph)).ok
            rows.append(
                (n, luby.rounds, ghaffari.rounds,
                 coloring.rounds + sweep.rounds, log_star(n))
            )
        return rows

    rows = once(compute)
    table = Table(
        f"MIS on random trees (max degree {delta}) - rounds, all verified",
        ["n", "Luby", "Ghaffari-style", "CV + sweep", "log* n"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()
    # Shapes: CV pipeline grows by at most 2 rounds over a 16x n range;
    # Luby stays within a generous O(log n).
    deterministic = [row[3] for row in rows]
    assert deterministic[-1] - deterministic[0] <= 2
    for n, luby_rounds, *_ in rows:
        import math

        assert luby_rounds <= 8 * math.log2(n)


def test_luby_timing(benchmark):
    graph = random_tree_bounded_degree(300, 4, random.Random(7))
    result = benchmark(lambda: run_luby_mis(graph, seed=3))
    assert verify_mis(graph, _mis_from(result, graph)).ok


def test_mis_size_quality(once):
    """|MIS| is within the classic bounds n/(Delta+1) <= |MIS|."""

    def compute():
        graph = random_tree_bounded_degree(500, 5, random.Random(2))
        result = run_luby_mis(graph, seed=5)
        return graph, _mis_from(result, graph)

    graph, selected = once(compute)
    assert len(selected) >= graph.n / (graph.max_degree() + 1)
