"""LEM5: the 1-round conversion from k-ODS to Pi_Delta(a, k), at scale.

Runs the conversion over random bounded-degree trees and the regular
Cayley instances, verifying every produced labeling with the generic
LCL verifier.
"""

import random

from repro.algorithms.greedy import greedy_mis
from repro.analysis.tables import Table
from repro.lowerbound.lemma5 import verify_lemma5
from repro.sim.generators import (
    colored_port_cayley_graph,
    random_tree_bounded_degree,
)


def test_lemma5_on_cayley_instances(once):
    def run_all():
        rows = []
        for delta in (3, 4, 5, 6):
            graph = colored_port_cayley_graph(delta)
            mis = greedy_mis(graph)
            result = verify_lemma5(graph, mis, {}, k=0, a=delta // 2)
            rows.append((delta, graph.n, len(mis), result.ok))
        return rows

    rows = once(run_all)
    table = Table(
        "Lemma 5 - MIS (k = 0) to Pi_Delta(a, 0) on Delta-regular instances",
        ["delta", "n", "|S|", "labeling valid"],
    )
    for row in rows:
        table.add_row(*row)
    assert all(row[-1] for row in rows)
    table.print()


def test_lemma5_on_random_trees(once):
    def run_all():
        rows = []
        for seed in range(5):
            graph = random_tree_bounded_degree(200, 5, random.Random(seed))
            mis = greedy_mis(graph)
            result = verify_lemma5(graph, mis, {}, k=0, a=2)
            rows.append((seed, graph.n, len(mis), result.ok))
        return rows

    rows = once(run_all)
    assert all(row[-1] for row in rows)


def test_lemma5_with_positive_k(once):
    """S = V with the bit orientation: a Delta-outdegree dominating set."""

    def run_all():
        rows = []
        for delta in (3, 4, 5):
            graph = colored_port_cayley_graph(delta)
            orientation = {}
            for edge_id, u, v in graph.edges():
                color = graph.edge_color(edge_id)
                orientation[edge_id] = u if (u >> color) & 1 else v
            result = verify_lemma5(
                graph, set(range(graph.n)), orientation, k=delta, a=1
            )
            rows.append((delta, result.ok))
        return rows

    rows = once(run_all)
    assert all(ok for _, ok in rows)
