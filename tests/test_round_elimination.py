"""Round-elimination operator tests, cross-validated on known results."""

import itertools

import pytest

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.diagram import Diagram
from repro.core.round_elimination import (
    R,
    Rbar,
    existential_condensed,
    existential_constraint,
    maximize_edge_constraint,
    maximize_node_constraint,
    rename_to_strings,
    speedup,
)
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


def brute_force_maximal_edge(problem):
    """Exhaustive reference for the edge maximization (tiny alphabets)."""
    labels = list(problem.alphabet)
    subsets = []
    for size in range(1, len(labels) + 1):
        subsets.extend(frozenset(c) for c in itertools.combinations(labels, size))
    allowed = []
    for left in subsets:
        for right in subsets:
            if all(problem.edge_allows(a, b) for a in left for b in right):
                allowed.append((left, right))
    maximal = set()
    for left, right in allowed:
        dominated = any(
            (left <= other_left and right <= other_right)
            and (left != other_left or right != other_right)
            for other_left, other_right in allowed
        )
        if not dominated:
            maximal.add(Configuration((left, right)))
    return maximal


def brute_force_maximal_node(problem):
    """Exhaustive reference for the node maximization (tiny instances)."""
    labels = list(problem.alphabet)
    subsets = []
    for size in range(1, len(labels) + 1):
        subsets.extend(frozenset(c) for c in itertools.combinations(labels, size))
    node = problem.node_constraint
    allowed = []
    for combo in itertools.combinations_with_replacement(subsets, problem.delta):
        if all(
            Configuration(choice) in node
            for choice in itertools.product(*combo)
        ):
            allowed.append(combo)
    maximal = set()
    for combo in allowed:
        dominated = False
        for other in allowed:
            if combo == other:
                continue
            from repro.core.relaxation import can_relax

            if can_relax(Configuration(combo), Configuration(other)):
                dominated = True
                break
        if not dominated:
            maximal.add(Configuration(combo))
    return maximal


class TestEdgeMaximization:
    def test_mis_matches_hand_computation(self):
        """R(MIS) has edge constraint {M}{PO} and {O}{MO}."""
        result = maximize_edge_constraint(mis_problem(3))
        expected = {
            Configuration((frozenset("M"), frozenset("PO"))),
            Configuration((frozenset("O"), frozenset("MO"))),
        }
        assert set(result.configurations) == expected

    def test_family_matches_lemma6(self):
        """Lemma 6: the edge constraint of R(Pi_Delta(a, x)) is
        XQ, OB, AU, PM under the renaming of the lemma."""
        result = maximize_edge_constraint(family_problem(5, 3, 1))
        expected = {
            Configuration((frozenset("X"), frozenset("MPAOX"))),
            Configuration((frozenset("MX"), frozenset("PAOX"))),
            Configuration((frozenset("OX"), frozenset("MAOX"))),
            Configuration((frozenset("MOX"), frozenset("AOX"))),
        }
        assert set(result.configurations) == expected

    @pytest.mark.parametrize(
        "problem",
        [
            mis_problem(3),
            mis_problem(4),
            family_problem(4, 2, 1),
            sinkless_orientation_problem(3),
        ],
        ids=["mis3", "mis4", "family", "so3"],
    )
    def test_against_brute_force(self, problem):
        fast = set(maximize_edge_constraint(problem).configurations)
        assert fast == brute_force_maximal_edge(problem)

    def test_all_result_sets_right_closed(self):
        """Observation 4 of the paper."""
        problem = family_problem(5, 3, 1)
        diagram = Diagram(problem.edge_constraint, problem.alphabet)
        result = maximize_edge_constraint(problem)
        for labels in result.labels_used():
            assert diagram.is_right_closed(labels)


class TestNodeMaximization:
    @pytest.mark.parametrize(
        "problem",
        [
            mis_problem(2),
            mis_problem(3),
            sinkless_orientation_problem(3),
        ],
        ids=["mis2", "mis3", "so3"],
    )
    def test_against_brute_force(self, problem):
        fast = set(maximize_node_constraint(problem).configurations)
        assert fast == brute_force_maximal_node(problem)

    def test_all_result_sets_right_closed(self):
        problem = sinkless_orientation_problem(4)
        diagram = Diagram(problem.node_constraint, problem.alphabet)
        result = maximize_node_constraint(problem)
        for labels in result.labels_used():
            assert diagram.is_right_closed(labels)

    def test_results_pairwise_incomparable(self):
        from repro.core.relaxation import can_relax

        result = maximize_node_constraint(mis_problem(3))
        configs = list(result.configurations)
        for first in configs:
            for second in configs:
                if first != second:
                    assert not can_relax(first, second)


class TestExistentialStep:
    def test_matches_condensed_replacement(self):
        """The direct enumeration and the Section 2.3 'simple method'
        agree on R(MIS)'s node constraint."""
        problem = mis_problem(3)
        edge_max = maximize_edge_constraint(problem)
        sigma = set(edge_max.labels_used())
        direct = existential_constraint(problem.node_constraint, sigma, problem.delta)
        via_condensed = set()
        for configuration in problem.node_constraint.configurations:
            condensed = existential_condensed(configuration, sigma)
            via_condensed |= condensed.expand()
        assert set(direct.configurations) == via_condensed

    def test_edge_arity_two(self):
        problem = mis_problem(3)
        after_r = R(problem)
        node_max = maximize_node_constraint(after_r)
        sigma = set(node_max.labels_used())
        result = existential_constraint(after_r.edge_constraint, sigma, 2)
        assert result.arity == 2


class TestOperators:
    def test_r_of_sinkless_orientation_is_sinkless_orientation(self):
        """R(SO) renames back to SO itself (the classic warm-up)."""
        so = sinkless_orientation_problem(3)
        after = rename_to_strings(R(so)).problem
        assert after.is_isomorphic(so)

    def test_speedup_of_so_reaches_fixed_point(self):
        """The first speedup of SO yields a problem that is a fixed
        point of the speedup — SO cannot lose more than one round,
        reproducing the Omega(log n) structure of [14, 17]."""
        so = sinkless_orientation_problem(3)
        first = speedup(so).problem
        second = speedup(first).problem
        assert first.is_isomorphic(second)

    def test_speedup_keeps_delta(self):
        result = speedup(mis_problem(3)).problem
        assert result.delta == 3

    def test_rename_to_strings_concatenates(self):
        so = sinkless_orientation_problem(3)
        renamed = rename_to_strings(R(so))
        assert set(renamed.mapping.values()) <= {"I", "O", "IO"}

    def test_rename_handles_collisions(self):
        problem = mis_problem(3)
        intermediate = R(problem)
        naming = {label: "Z" for label in list(intermediate.alphabet)[:1]}
        renamed = rename_to_strings(intermediate, naming=naming)
        values = list(renamed.mapping.values())
        assert len(values) == len(set(values))

    def test_two_coloring_speedup_becomes_zero_round_solvable(self):
        """2-coloring is 0-round solvable in the formalism after one
        speedup on 2-regular graphs? No — it stays hard; instead check
        a problem that IS trivial: the 'everything allowed' problem."""
        free = Constraint.from_condensed(["[AB]^3"])
        free_edges = Constraint.from_condensed(["[AB] [AB]"])
        from repro.core.problem import Problem

        problem = Problem(["A", "B"], free, free_edges, name="free")
        result = speedup(problem).problem
        # A fully unconstrained problem stays fully unconstrained:
        # one label set {A, B} survives and everything is allowed.
        assert len(result.alphabet) == 1
