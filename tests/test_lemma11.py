"""Tests for Lemma 11: monotonicity of the family in (a, x)."""

import pytest

from repro.lowerbound.lemma11 import (
    convert_labeling_lemma11,
    verify_lemma11,
    verify_lemma11_on_labeling,
)
from repro.problems.family import family_problem
from repro.sim.generators import complete_bipartite_graph


def bipartite_family_labeling(delta, a, x):
    """A Pi_Delta(a, x) solution on K_{delta,delta}: left nodes use the
    A configuration, right nodes the M configuration."""
    graph = complete_bipartite_graph(delta)
    labeling = {}
    for node in range(delta):
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a else "X"
    for node in range(delta, 2 * delta):
        for port in range(delta):
            labeling[(node, port)] = "M" if port < delta - x else "X"
    return graph, labeling


class TestWitnesses:
    @pytest.mark.parametrize(
        "delta,a,x,a2,x2",
        [(5, 4, 1, 2, 2), (5, 4, 1, 4, 1), (6, 6, 0, 1, 3), (4, 2, 1, 2, 2)],
    )
    def test_witness_exists(self, delta, a, x, a2, x2):
        witnesses = verify_lemma11(delta, a, x, a2, x2)
        source = family_problem(delta, a, x)
        assert set(witnesses) == set(source.node_constraint.configurations)

    def test_hypothesis_enforced(self):
        with pytest.raises(ValueError):
            verify_lemma11(5, 2, 2, 4, 2)  # a increases
        with pytest.raises(ValueError):
            verify_lemma11(5, 4, 2, 4, 1)  # x decreases


class TestLabelingConversion:
    @pytest.mark.parametrize(
        "delta,a,x,a2,x2",
        [(5, 4, 1, 2, 2), (6, 5, 0, 3, 1), (6, 5, 0, 1, 4)],
    )
    def test_converted_labeling_valid(self, delta, a, x, a2, x2):
        graph, labeling = bipartite_family_labeling(delta, a, x)
        result = verify_lemma11_on_labeling(graph, labeling, delta, a, x, a2, x2)
        assert result.ok, result.violations

    def test_counts_after_conversion(self):
        delta, a, x, a2, x2 = 6, 5, 0, 3, 1
        graph, labeling = bipartite_family_labeling(delta, a, x)
        converted = convert_labeling_lemma11(graph, labeling, delta, a, x, a2, x2)
        for node in range(delta):  # A-nodes now own a2 edges
            labels = [converted[(node, port)] for port in range(delta)]
            assert labels.count("A") == a2
        for node in range(delta, 2 * delta):  # M-nodes now have x2 X
            labels = [converted[(node, port)] for port in range(delta)]
            assert labels.count("M") == delta - x2

    def test_identity_conversion(self):
        delta, a, x = 5, 3, 1
        graph, labeling = bipartite_family_labeling(delta, a, x)
        converted = convert_labeling_lemma11(graph, labeling, delta, a, x, a, x)
        result = verify_lemma11_on_labeling(graph, labeling, delta, a, x, a, x)
        assert result.ok
        assert set(converted) == set(labeling)

    def test_invalid_input_rejected(self):
        delta, a, x = 5, 4, 1
        graph, labeling = bipartite_family_labeling(delta, a, x)
        labeling[(0, 0)] = "P"
        with pytest.raises(ValueError):
            verify_lemma11_on_labeling(graph, labeling, delta, a, x, 2, 2)
