"""Shared test fixtures.

The kernel's transport registry is process-global by design (chains
reuse interned artifacts across steps), but cross-test reuse would make
cache-counter assertions order-dependent — a problem interned by an
earlier test could serve as a transport source for a later one.  Every
test therefore starts with an empty registry.
"""

import pytest

from repro.core.kernel.interning import transport_registry


@pytest.fixture(autouse=True)
def _fresh_transport_registry():
    transport_registry().clear()
    yield
    transport_registry().clear()
