"""Tests for problem serialization (text and JSON)."""

import pytest

from repro.core.io import (
    problem_from_json,
    problem_from_text,
    problem_to_json,
    problem_to_text,
    roundtrip_safe,
)
from repro.core.round_elimination import R, rename_to_strings
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


class TestTextFormat:
    def test_roundtrip_mis(self):
        problem = mis_problem(3)
        assert problem_from_text(problem_to_text(problem)) == problem

    def test_roundtrip_family(self):
        problem = family_problem(5, 3, 1)
        assert problem_from_text(problem_to_text(problem)) == problem

    def test_roundtrip_renamed_speedup(self):
        renamed = rename_to_strings(R(mis_problem(3))).problem
        assert problem_from_text(problem_to_text(renamed)) == renamed

    def test_blank_line_separates(self):
        text = "M^3\nP O^2\n\nM [PO]\nO O"
        problem = problem_from_text(text)
        assert problem == mis_problem(3)

    def test_extra_blank_lines_tolerated(self):
        text = "\nM^3\nP O^2\n\n\nM [PO]\nO O\n\n"
        assert problem_from_text(text) == mis_problem(3)

    def test_missing_sections_rejected(self):
        with pytest.raises(ValueError):
            problem_from_text("M^3\nP O^2")
        with pytest.raises(ValueError):
            problem_from_text("")

    def test_roundtrip_safe_predicate(self):
        assert roundtrip_safe(mis_problem(4))
        assert roundtrip_safe(family_problem(4, 2, 1))
        # frozenset labels do not round trip through text:
        assert not roundtrip_safe(R(mis_problem(3)))


class TestJsonFormat:
    def test_roundtrip_mis(self):
        problem = mis_problem(3)
        assert problem_from_json(problem_to_json(problem)) == problem

    def test_json_structure(self):
        import json

        payload = json.loads(problem_to_json(family_problem(4, 2, 1)))
        assert payload["delta"] == 4
        assert set(payload["alphabet"]) == {"M", "P", "O", "A", "X"}
        assert all(len(config) == 4 for config in payload["node_constraint"])
        assert all(len(config) == 2 for config in payload["edge_constraint"])

    def test_name_preserved(self):
        problem = mis_problem(3)
        restored = problem_from_json(problem_to_json(problem))
        assert restored.name == problem.name
