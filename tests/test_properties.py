"""Property-based tests (hypothesis) on the core invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.diagram import Diagram
from repro.core.problem import Problem
from repro.core.relaxation import can_relax
from repro.core.round_elimination import (
    R,
    existential_constraint,
    maximize_edge_constraint,
)

LABELS = ["A", "B", "C", "D"]


@st.composite
def random_problems(draw, delta=3, max_labels=4):
    """Small random problems with non-empty, consistent constraints."""
    label_count = draw(st.integers(min_value=2, max_value=max_labels))
    labels = LABELS[:label_count]
    pairs = list(itertools.combinations_with_replacement(labels, 2))
    edge_choice = draw(
        st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs), unique=True)
    )
    edge_constraint = Constraint(Configuration(pair) for pair in edge_choice)
    node_pool = list(itertools.combinations_with_replacement(labels, delta))
    node_choice = draw(
        st.lists(st.sampled_from(node_pool), min_size=1, max_size=6, unique=True)
    )
    node_constraint = Constraint(Configuration(combo) for combo in node_choice)
    return Problem(labels, node_constraint, edge_constraint)


class TestEdgeMaximizationProperties:
    @given(random_problems())
    @settings(max_examples=60, deadline=None)
    def test_maximal_configs_are_fully_compatible(self, problem):
        """Every choice from a maximal pair must be an allowed edge."""
        result = maximize_edge_constraint(problem)
        for configuration in result.configurations:
            left, right = configuration.items
            for a in left:
                for b in right:
                    assert problem.edge_allows(a, b)

    @given(random_problems())
    @settings(max_examples=60, deadline=None)
    def test_maximal_configs_form_antichain(self, problem):
        result = maximize_edge_constraint(problem)
        configs = list(result.configurations)
        for first in configs:
            for second in configs:
                if first != second:
                    assert not can_relax(first, second)

    @given(random_problems())
    @settings(max_examples=60, deadline=None)
    def test_every_allowed_pair_is_covered(self, problem):
        """Each original edge configuration embeds in some maximal pair."""
        result = maximize_edge_constraint(problem)
        for configuration in problem.edge_constraint.configurations:
            a, b = configuration.items
            covered = any(
                (a in left and b in right) or (a in right and b in left)
                for left, right in (c.items for c in result.configurations)
            )
            assert covered

    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_result_sets_right_closed(self, problem):
        """Observation 4 of the paper, on random problems."""
        diagram = Diagram(problem.edge_constraint, problem.alphabet)
        result = maximize_edge_constraint(problem)
        for labels in result.labels_used():
            assert diagram.is_right_closed(labels)


class TestExistentialProperties:
    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_every_config_has_a_witness_choice(self, problem):
        edge_max = maximize_edge_constraint(problem)
        sigma = set(edge_max.labels_used())
        try:
            node = existential_constraint(
                problem.node_constraint, sigma, problem.delta
            )
        except ValueError:
            return  # locally unsatisfiable random problem: empty step
        for configuration in node.configurations:
            witness = any(
                Configuration(choice) in problem.node_constraint
                for choice in itertools.product(*configuration.items)
            )
            assert witness


class TestROperatorProperties:
    @given(random_problems())
    @settings(max_examples=30, deadline=None)
    def test_r_preserves_delta(self, problem):
        try:
            result = R(problem)
        except ValueError:
            return  # degenerate problems may have empty steps
        assert result.delta == problem.delta

    @given(random_problems())
    @settings(max_examples=30, deadline=None)
    def test_r_alphabet_nonempty_sets(self, problem):
        try:
            result = R(problem)
        except ValueError:
            return
        for label in result.alphabet:
            assert isinstance(label, frozenset)
            assert label
            assert label <= set(problem.alphabet)


class TestNodeMaximizationProperties:
    @given(random_problems(delta=2))
    @settings(max_examples=30, deadline=None)
    def test_all_choices_allowed(self, problem):
        from repro.core.round_elimination import maximize_node_constraint

        try:
            result = maximize_node_constraint(problem)
        except ValueError:
            return
        for configuration in result.configurations:
            for choice in itertools.product(*configuration.items):
                assert Configuration(choice) in problem.node_constraint

    @given(random_problems(delta=2))
    @settings(max_examples=30, deadline=None)
    def test_antichain(self, problem):
        from repro.core.round_elimination import maximize_node_constraint

        try:
            result = maximize_node_constraint(problem)
        except ValueError:
            return
        configs = list(result.configurations)
        for first in configs:
            for second in configs:
                if first != second:
                    assert not can_relax(first, second)

    @given(random_problems(delta=2))
    @settings(max_examples=30, deadline=None)
    def test_every_node_config_covered(self, problem):
        """Each allowed configuration embeds into some maximal one."""
        from repro.core.round_elimination import maximize_node_constraint

        try:
            result = maximize_node_constraint(problem)
        except ValueError:
            return
        for configuration in problem.node_constraint.configurations:
            singleton = Configuration(
                [frozenset([label]) for label in configuration.items]
            )
            assert any(
                can_relax(singleton, maximal)
                for maximal in result.configurations
            )


class TestDiagramProperties:
    @given(random_problems())
    @settings(max_examples=60, deadline=None)
    def test_strength_preorder(self, problem):
        diagram = Diagram(problem.edge_constraint, problem.alphabet)
        labels = diagram.labels
        for a in labels:
            assert diagram.at_least_as_strong(a, a)
        for a, b, c in itertools.product(labels, repeat=3):
            if diagram.at_least_as_strong(a, b) and diagram.at_least_as_strong(b, c):
                assert diagram.at_least_as_strong(a, c)

    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_right_closed_sets_closed_under_union_intersection(self, problem):
        diagram = Diagram(problem.edge_constraint, problem.alphabet)
        sets = diagram.right_closed_sets()
        for first in sets[:6]:
            for second in sets[:6]:
                union = first | second
                assert diagram.is_right_closed(union)
                meet = first & second
                if meet:
                    assert diagram.is_right_closed(meet)


class TestRelaxationProperties:
    SETS = st.lists(
        st.sampled_from([frozenset("A"), frozenset("AB"), frozenset("B"),
                         frozenset("ABC"), frozenset("C")]),
        min_size=1,
        max_size=4,
    )

    @given(SETS)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, sets):
        config = Configuration(sets)
        assert can_relax(config, config)

    @given(SETS, SETS)
    @settings(max_examples=80, deadline=None)
    def test_antisymmetry(self, left_sets, right_sets):
        left = Configuration(left_sets)
        right = Configuration(right_sets)
        if left.arity != right.arity or left == right:
            return
        if can_relax(left, right) and can_relax(right, left):
            # Mutual relaxation of distinct multisets is impossible:
            # subset-matching both ways forces equality.
            raise AssertionError(f"{left.render()} <~> {right.render()}")

    @given(SETS, SETS, SETS)
    @settings(max_examples=60, deadline=None)
    def test_transitivity(self, a_sets, b_sets, c_sets):
        a = Configuration(a_sets)
        b = Configuration(b_sets)
        c = Configuration(c_sets)
        if not (a.arity == b.arity == c.arity):
            return
        if can_relax(a, b) and can_relax(b, c):
            assert can_relax(a, c)
