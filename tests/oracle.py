"""Differential-testing oracle: kernel fast path vs. reference engine.

The kernel (:mod:`repro.core.kernel`) promises to return *exactly* the
same objects as the reference implementation — same frozenset labels,
same constraints, same problem names — for every operator it
reimplements.  This module provides the corpus and the comparison
helpers the differential tests run over:

* a corpus of classic problems, small :math:`\\Pi_\\Delta(a, x)` family
  instances, base problems of registered scenarios
  (:mod:`repro.scenarios`), and seeded random constraint systems;
* ``differential_*`` checks that run reference and kernel side by side
  and assert agreement, including agreement on *failure* (both raise
  :class:`InvalidProblem`, or neither does).

The corpus is parameterized by the scenario registry: registering a
scenario whose ``oracle_corpus`` names a fresh entry adds its base
problem to :func:`full_corpus` automatically, so a new family joins
every differential gate without touching this file.

The single sanctioned divergence: ``find_label_relabeling`` may return
a *different* witness map from the two engines (both backtrack, in
different candidate orders), so there the oracle checks None-ness and
validates any returned witness independently.
"""

from __future__ import annotations

import random

from repro.core.constraints import Constraint
from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.core.relaxation import find_label_relabeling
from repro.core.round_elimination import R, Rbar, rename_to_strings
from repro.core.self_reduction import self_reduce
from repro.core.solvability import (
    zero_round_solvable_pn,
    zero_round_solvable_symmetric,
)
from repro.problems.classic import (
    coloring_problem,
    perfect_matching_problem,
    sinkless_orientation_problem,
)
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem
from repro.robustness.errors import InvalidProblem


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------

def classic_corpus() -> list[tuple[str, Problem]]:
    """Named classic problems + small Pi_Delta(a, x) family instances."""
    return [
        ("mis3", mis_problem(3)),
        ("mis4", mis_problem(4)),
        ("sinkless_orientation3", sinkless_orientation_problem(3)),
        ("perfect_matching3", perfect_matching_problem(3)),
        ("coloring33", coloring_problem(3, 3)),
        ("family320", family_problem(3, 2, 0)),
        ("family431", family_problem(4, 3, 1)),
        ("family441", family_problem(4, 4, 1)),
        # Appended last so prefix slices over the corpus stay stable:
        # the Δ=5 quick case exercises the sizes the hot-path DFS
        # optimization targets (its one-step speedup is cheap on both
        # engines; only multi-step chains hit the expensive regime).
        ("mis5", mis_problem(5)),
    ]


def scenario_corpus() -> list[tuple[str, Problem]]:
    """Base problems of registered scenarios not already covered above.

    A scenario whose ``oracle_corpus`` declaration names an existing
    classic entry is covered there and skipped — the Delta=16 lemma13
    chain start does this, since one differential speedup on it is far
    too expensive while the classics already cover its family at small
    Delta.  Every other scenario contributes its base problem under its
    declared corpus name.
    """
    from repro.scenarios import load_registry
    from repro.scenarios.runner import build_problem

    classics = {name for name, _ in classic_corpus()}
    return [
        (decl.oracle_corpus, build_problem(spec))
        for decl, spec in load_registry()
        if decl.oracle_corpus not in classics
    ]


def random_problem(rng: random.Random, *, max_labels: int = 4) -> Problem:
    """A random small constraint system (string labels, delta 2 or 3).

    Draws a label alphabet, a non-empty random edge relation over it,
    and a non-empty set of random node configurations.  Everything the
    constraints mention lands in the alphabet, so construction itself
    never fails — downstream operators may still legitimately raise
    :class:`InvalidProblem` (e.g. an existential step coming up empty),
    which the differential checks treat as an outcome to agree on.
    """
    label_count = rng.randint(2, max_labels)
    labels = [chr(ord("A") + index) for index in range(label_count)]
    delta = rng.randint(2, 3)
    edge_pairs = set()
    for left in labels:
        for right in labels:
            if rng.random() < 0.45:
                edge_pairs.add(Configuration((left, right)))
    if not edge_pairs:
        edge_pairs.add(Configuration((rng.choice(labels), rng.choice(labels))))
    node_configurations = set()
    for _ in range(rng.randint(1, 5)):
        node_configurations.add(
            Configuration(rng.choice(labels) for _ in range(delta))
        )
    node_constraint = Constraint(node_configurations)
    edge_constraint = Constraint(edge_pairs)
    alphabet = sorted(
        node_constraint.labels_used() | edge_constraint.labels_used()
    )
    return Problem(
        alphabet,
        node_constraint,
        edge_constraint,
        name=f"random-{rng.getrandbits(24):06x}",
    )


def random_corpus(seed: int, count: int) -> list[tuple[str, Problem]]:
    """``count`` seeded random problems (deterministic across runs)."""
    rng = random.Random(seed)
    return [(f"random{index}", random_problem(rng)) for index in range(count)]


def full_corpus(seed: int = 20210726, random_count: int = 12) -> list[tuple[str, Problem]]:
    """The whole differential corpus: classics + scenarios + random."""
    return classic_corpus() + scenario_corpus() + random_corpus(seed, random_count)


# ---------------------------------------------------------------------------
# Differential checks
# ---------------------------------------------------------------------------

_SENTINEL = object()


def _outcome(function, *args, **kwargs):
    """The function's return value, or the InvalidProblem it raised."""
    try:
        return function(*args, **kwargs)
    except InvalidProblem as error:
        return ("InvalidProblem", str(error))


def assert_same_outcome(name: str, reference, kernel) -> None:
    """Both engines returned equal values, or both failed the same way."""
    reference_failed = isinstance(reference, tuple) and reference[:1] == ("InvalidProblem",)
    kernel_failed = isinstance(kernel, tuple) and kernel[:1] == ("InvalidProblem",)
    assert reference_failed == kernel_failed, (
        f"{name}: engines disagree on failure: "
        f"reference={reference!r} kernel={kernel!r}"
    )
    if not reference_failed:
        assert reference == kernel, (
            f"{name}: engines disagree:\n"
            f"reference: {reference!r}\n"
            f"kernel:    {kernel!r}"
        )


def differential_R(name: str, problem: Problem) -> Problem | None:
    """R agrees between engines; returns the (reference) result if any."""
    reference = _outcome(R, problem)
    kernel = _outcome(R, problem, use_kernel=True)
    assert_same_outcome(f"R({name})", reference, kernel)
    if isinstance(reference, Problem):
        assert reference.name == kernel.name
        return reference
    return None


def differential_Rbar(
    name: str, problem: Problem, *, workers: int | None = None
) -> Problem | None:
    """Rbar agrees between engines (optionally the parallel kernel)."""
    reference = _outcome(Rbar, problem)
    kernel = _outcome(Rbar, problem, use_kernel=True, workers=workers)
    assert_same_outcome(f"Rbar({name})", reference, kernel)
    if isinstance(reference, Problem):
        assert reference.name == kernel.name
        return reference
    return None


def differential_speedup(name: str, problem: Problem) -> None:
    """One full Rbar(R(.)) step agrees between engines, end to end."""
    intermediate = differential_R(name, problem)
    if intermediate is None:
        return
    renamed = rename_to_strings(intermediate).problem
    differential_Rbar(f"{name} renamed", renamed)


def differential_self_reduction(name: str, problem: Problem) -> None:
    """One ``condense(speedup(condense(.)))`` step agrees between engines.

    Checks the condensed input, the final reduced problem (values *and*
    alphabet order — the cache transport depends on it), and the
    fixed-point verdict.
    """
    reference = _outcome(self_reduce, problem)
    kernel = _outcome(self_reduce, problem, use_kernel=True)
    if isinstance(reference, tuple) or isinstance(kernel, tuple):
        assert_same_outcome(f"self_reduce({name})", reference, kernel)
        return
    for stage in ("condensed", "problem"):
        reference_stage = getattr(reference, stage)
        kernel_stage = getattr(kernel, stage)
        assert_same_outcome(
            f"self_reduce({name}).{stage}", reference_stage, kernel_stage
        )
        assert tuple(reference_stage.alphabet) == tuple(kernel_stage.alphabet), (
            f"self_reduce({name}).{stage}: alphabet order differs: "
            f"{reference_stage.alphabet!r} vs {kernel_stage.alphabet!r}"
        )
    assert reference.fixed_point == kernel.fixed_point, (
        f"self_reduce({name}): fixed-point verdict disagrees"
    )


def differential_zero_round(name: str, problem: Problem) -> None:
    """Both solvability tests agree between engines."""
    assert zero_round_solvable_pn(problem) == zero_round_solvable_pn(
        problem, use_kernel=True
    ), f"zero_round_solvable_pn({name}) disagrees"
    assert zero_round_solvable_symmetric(problem) == zero_round_solvable_symmetric(
        problem, use_kernel=True
    ), f"zero_round_solvable_symmetric({name}) disagrees"


def relabeling_is_valid(source: Problem, target: Problem, mapping: dict) -> bool:
    """Independently check a find_label_relabeling witness.

    The map must be total on the source alphabet and send every allowed
    source configuration (node and edge) to an allowed target one.
    """
    if set(mapping) != set(source.alphabet):
        return False
    if not set(mapping.values()) <= set(target.alphabet):
        return False
    for constraint, target_constraint in (
        (source.node_constraint, target.node_constraint),
        (source.edge_constraint, target.edge_constraint),
    ):
        for configuration in constraint.configurations:
            if configuration.replace_all(mapping) not in target_constraint:
                return False
    return True


def differential_relabeling(name: str, source: Problem, target: Problem) -> None:
    """Relabeling existence agrees; any witness from either engine is valid."""
    reference = find_label_relabeling(source, target)
    kernel = find_label_relabeling(source, target, use_kernel=True)
    assert (reference is None) == (kernel is None), (
        f"find_label_relabeling({name}): existence disagrees: "
        f"reference={reference!r} kernel={kernel!r}"
    )
    for engine, witness in (("reference", reference), ("kernel", kernel)):
        if witness is not None:
            assert relabeling_is_valid(source, target, witness), (
                f"find_label_relabeling({name}): invalid {engine} witness {witness!r}"
            )
