"""Tests for problem simplifications and iterated speedup."""

import pytest

from repro.core.problem import Problem
from repro.core.simplify import (
    equivalent_label_classes,
    is_safe_removal,
    iterate_speedup,
    merge_equivalent_labels,
    remove_label,
)
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


def problem_with_twin_labels():
    """Labels O and Z are fully interchangeable."""
    return Problem.from_text(
        ["M^3", "P [OZ]^2"],
        ["M [POZ]", "[OZ] [OZ]"],
    )


class TestEquivalenceMerging:
    def test_twin_labels_detected(self):
        classes = equivalent_label_classes(problem_with_twin_labels())
        assert frozenset({"O", "Z"}) in classes

    def test_merge_recovers_mis(self):
        merged = merge_equivalent_labels(problem_with_twin_labels())
        assert merged.is_isomorphic(mis_problem(3))

    def test_no_spurious_merges_in_family(self):
        problem = family_problem(5, 3, 1)
        classes = equivalent_label_classes(problem)
        assert all(len(group) == 1 for group in classes)

    def test_merge_is_idempotent(self):
        merged = merge_equivalent_labels(problem_with_twin_labels())
        assert merge_equivalent_labels(merged) == merged


class TestLabelRemoval:
    def test_remove_label_restricts(self):
        problem = family_problem(4, 2, 1)
        without_a = remove_label(problem, "A")
        assert "A" not in set(without_a.alphabet)
        assert all(
            "A" not in config.support()
            for config in without_a.node_constraint.configurations
        )

    def test_cannot_remove_last_label(self):
        problem = Problem.from_text(["A^2"], ["A A"])
        with pytest.raises(ValueError):
            remove_label(problem, "A")

    def test_safe_removal_weak_into_strong(self):
        # In the family, X is at least as strong as M on edges; but on
        # nodes M and X are not interchangeable, so removal of M is NOT
        # safe — while removing a twin label is.
        problem = problem_with_twin_labels()
        assert is_safe_removal(problem, "Z", "O")
        family = family_problem(4, 2, 1)
        assert not is_safe_removal(family, "M", "X")


class TestCertifiedUpperBound:
    def test_free_problem_zero_rounds(self):
        from repro.core.simplify import certified_upper_bound

        problem = Problem.from_text(["[AB]^3"], ["[AB] [AB]"])
        assert certified_upper_bound(problem) == 0

    def test_sinkless_orientation_never_certifies(self):
        from repro.core.simplify import certified_upper_bound

        assert certified_upper_bound(
            sinkless_orientation_problem(3), max_steps=2
        ) is None

    def test_mis_not_certified_within_two_steps(self):
        """MIS needs Omega(log* n) rounds, so no finite PN certificate."""
        from repro.core.simplify import certified_upper_bound

        assert certified_upper_bound(mis_problem(2), max_steps=2) is None

    def test_family_boundary_zero_rounds(self):
        from repro.core.simplify import certified_upper_bound

        assert certified_upper_bound(family_problem(3, 0, 3), max_steps=0) == 0


class TestIteratedSpeedup:
    def test_sinkless_orientation_fixed_point(self):
        trajectory = iterate_speedup(sinkless_orientation_problem(3), max_steps=3)
        assert trajectory.reached_fixed_point
        assert trajectory.steps <= 3

    def test_free_problem_immediately_fixed(self):
        problem = Problem.from_text(["[AB]^3"], ["[AB] [AB]"])
        trajectory = iterate_speedup(problem, max_steps=2)
        assert trajectory.reached_fixed_point

    def test_max_steps_respected(self):
        trajectory = iterate_speedup(mis_problem(3), max_steps=1)
        assert trajectory.steps == 1
