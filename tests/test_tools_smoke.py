"""Subprocess smoke tests for the repo's script entry points.

Every script must honor the CLI contract: exit 0 on success, exit
non-zero with a one-line ``error:`` diagnostic on any failure path —
bad flags, unreadable inputs, stale goldens, semantic drift.  These
tests run the scripts exactly as CI and humans do (fresh interpreter,
``PYTHONPATH=src``), so a broken import or a swallowed failure shows
up here and not in production.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_script(*argv, timeout=300):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        env=environment,
        stdin=subprocess.DEVNULL,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def write_demo_trace(path) -> None:
    completed = run_script(
        "examples/lowerbound_sequence.py", "16", "0", "--trace", str(path)
    )
    assert completed.returncode == 0, completed.stderr


class TestRegenGolden:
    def test_check_mode_passes_on_committed_corpus(self):
        completed = run_script("tools/regen_golden.py", "--check")
        assert completed.returncode == 0, completed.stderr
        assert "current" in completed.stdout
        # --check must never write: the corpus predates this test run.

    def test_check_mode_fails_on_stale_corpus(self, tmp_path):
        # Run --check against a doctored copy of one golden file via a
        # fresh GOLDEN_DIR; a missing file must fail loudly.
        completed = run_script(
            "-c",
            "import tools.regen_golden as rg; import sys; "
            f"rg.GOLDEN_DIR = {str(tmp_path)!r}; "
            "sys.exit(rg.main(['--check']))",
        )
        assert completed.returncode == 1
        assert "MISSING" in completed.stdout
        assert "error:" in completed.stderr

    def test_unknown_flag_exits_2(self):
        completed = run_script("tools/regen_golden.py", "--bogus")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_script("tools/regen_golden.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout


class TestRunScenario:
    def test_list_shows_every_registered_scenario(self):
        completed = run_script("tools/run_scenario.py", "list")
        assert completed.returncode == 0, completed.stderr
        for name in (
            "mis3-speedup",
            "maximal-matching2-selfreduce",
            "ruling-set2-2-selfreduce",
        ):
            assert name in completed.stdout

    def test_run_maximal_matching_scenario(self):
        """Scenario smoke for the new maximal-matching family."""
        completed = run_script(
            "tools/run_scenario.py", "run", "maximal-matching2-selfreduce"
        )
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "certified=3" in completed.stdout

    def test_run_ruling_set_scenario_kernel(self):
        """Scenario smoke for the new ruling-set family, kernel engine."""
        completed = run_script(
            "tools/run_scenario.py", "run", "ruling-set2-2-selfreduce",
            "--kernel",
        )
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "certified=2" in completed.stdout

    def test_unknown_scenario_exits_2(self):
        completed = run_script("tools/run_scenario.py", "run", "nope")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_unknown_command_exits_2(self):
        completed = run_script("tools/run_scenario.py", "frobnicate")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_workers_without_kernel_exits_2(self):
        completed = run_script(
            "tools/run_scenario.py", "run", "--all", "--workers", "2"
        )
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_script("tools/run_scenario.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout

    def test_expectation_drift_exits_1(self, tmp_path):
        """A spec whose pinned certified count is wrong must exit 1."""
        doctored = tmp_path / "scenarios"
        doctored.mkdir()
        source = os.path.join(REPO_ROOT, "scenarios")
        for entry in os.listdir(source):
            with open(os.path.join(source, entry), encoding="utf-8") as handle:
                text = handle.read()
            if entry == "mis3_speedup.scn":
                text = text.replace("certified: 2", "certified: 7")
            (doctored / entry).write_text(text)
        completed = run_script(
            "-c",
            "import sys; import pathlib; "
            "import repro.scenarios.registry as registry; "
            f"registry.SCENARIO_DIR = pathlib.Path({str(doctored)!r}); "
            "import tools.run_scenario as rs; "
            "sys.exit(rs.main(['run', 'mis3-speedup']))",
        )
        assert completed.returncode == 1
        assert "error:" in completed.stderr
        assert "certified" in completed.stderr


class TestBenchKernel:
    def test_unknown_flag_exits_2(self):
        completed = run_script("benchmarks/bench_kernel.py", "--bogus")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    @pytest.mark.slow
    def test_quick_gate_passes_and_prints_counters(self):
        completed = run_script("benchmarks/bench_kernel.py", "--quick")
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "reference counters:" in completed.stdout
        assert "kernel counters:" in completed.stdout
        assert "labels.in=" in completed.stdout
        assert "scenario gate: maximal-matching2-selfreduce" in completed.stdout


class TestBenchScenarios:
    def test_unknown_flag_exits_2(self):
        completed = run_script("benchmarks/bench_scenarios.py", "--bogus")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_script("benchmarks/bench_scenarios.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout

    @pytest.mark.slow
    def test_check_passes_for_every_registered_scenario(self):
        completed = run_script("benchmarks/bench_scenarios.py", "--check")
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "maximal_matching2_selfreduce" in completed.stdout
        assert "ruling_set2_2_selfreduce" in completed.stdout
        assert completed.stdout.rstrip().endswith("PASS")


class TestServe:
    def test_help_documents_exit_codes(self):
        completed = run_script("tools/serve.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout

    def test_no_command_exits_2(self):
        completed = run_script("tools/serve.py")
        assert completed.returncode == 2
        assert "usage" in completed.stderr

    def test_unknown_command_exits_2(self):
        completed = run_script("tools/serve.py", "frobnicate")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_bad_port_exits_2(self):
        completed = run_script("tools/serve.py", "serve", "--port", "lots")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    @pytest.mark.slow
    def test_smoke_gates_hold_and_write_a_trace(self, tmp_path):
        """The CI service gate, end to end: every endpoint over a real
        socket, dedup asserted, the master trace consumable by
        trace_report."""
        trace = tmp_path / "service.jsonl"
        completed = run_script(
            "tools/serve.py", "smoke",
            "--job-dir", str(tmp_path / "jobs"),
            "--trace", str(trace),
        )
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "duplicate was deduped" in completed.stdout
        assert completed.stdout.rstrip().endswith("smoke: all gates held")
        report = run_script("tools/trace_report.py", "report", str(trace))
        assert report.returncode == 0, report.stderr
        assert "service.job" in report.stdout


class TestTraceReport:
    def test_report_renders_a_valid_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_demo_trace(trace)
        completed = run_script("tools/trace_report.py", "report", str(trace))
        assert completed.returncode == 0, completed.stderr
        assert "chain.run" in completed.stdout
        assert completed.stdout.startswith("trace: ")

    def test_diff_zero_drift_against_itself(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_demo_trace(trace)
        completed = run_script(
            "tools/trace_report.py", "diff", str(trace), str(trace)
        )
        assert completed.returncode == 0, completed.stderr
        assert "agree" in completed.stdout

    def test_diff_detects_semantic_drift(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_demo_trace(trace)
        doctored_path = tmp_path / "doctored.jsonl"
        doctored_lines = []
        for line in trace.read_text().splitlines():
            record = json.loads(line)
            if record.get("name") == "chain.run":
                record["counters"]["chain.steps"] += 1
            doctored_lines.append(json.dumps(record, sort_keys=True))
        doctored_path.write_text("\n".join(doctored_lines) + "\n")
        completed = run_script(
            "tools/trace_report.py", "diff", str(trace), str(doctored_path)
        )
        assert completed.returncode == 1
        assert "chain.run / chain.steps" in completed.stdout
        assert "error:" in completed.stderr

    def test_invalid_trace_exits_2(self, tmp_path):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text('{"type": "mystery"}\n')
        completed = run_script("tools/trace_report.py", "report", str(garbage))
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_missing_file_exits_2(self, tmp_path):
        completed = run_script(
            "tools/trace_report.py", "report", str(tmp_path / "absent.jsonl")
        )
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_unknown_command_exits_2(self):
        completed = run_script("tools/trace_report.py", "frobnicate")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_script("tools/trace_report.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout

    def test_hotspots_renders_profiled_trace_and_gates(self, tmp_path):
        trace = tmp_path / "profiled.jsonl"
        completed = run_script(
            "-c",
            "from repro.problems.mis import mis_problem\n"
            "from repro.core.round_elimination import speedup\n"
            "from repro.observability.trace import Tracer, tracing\n"
            "from repro.observability.profiling import Profiler, profiling\n"
            "tracer = Tracer()\n"
            "with tracing(tracer), profiling(Profiler()):\n"
            "    q = mis_problem(4)\n"
            "    for _ in range(2):\n"
            "        q = speedup(q, use_kernel=True).problem\n"
            f"tracer.write({str(trace)!r})\n",
        )
        assert completed.returncode == 0, completed.stderr
        rendered = run_script(
            "tools/trace_report.py", "hotspots", str(trace)
        )
        assert rendered.returncode == 0, rendered.stderr
        assert "node_max.dfs" in rendered.stdout
        assert "coverage: profiled" in rendered.stdout
        gated = run_script(
            "tools/trace_report.py", "hotspots", str(trace),
            "--min-coverage", "0.9",
        )
        assert gated.returncode == 0, gated.stderr
        impossible = run_script(
            "tools/trace_report.py", "hotspots", str(trace),
            "--min-coverage", "1.5",
        )
        assert impossible.returncode == 1
        assert "below required" in impossible.stderr

    def test_hotspots_gate_fails_without_profiler_samples(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_demo_trace(trace)
        ungated = run_script(
            "tools/trace_report.py", "hotspots", str(trace)
        )
        assert ungated.returncode == 0, ungated.stderr
        gated = run_script(
            "tools/trace_report.py", "hotspots", str(trace),
            "--min-coverage", "0.5",
        )
        assert gated.returncode == 1
        assert "no profiler samples" in gated.stderr

    def test_hotspots_usage_errors_exit_2(self, tmp_path):
        no_operand = run_script("tools/trace_report.py", "hotspots")
        assert no_operand.returncode == 2
        assert no_operand.stderr.startswith("error:")
        bad_number = run_script(
            "tools/trace_report.py", "hotspots", "x.jsonl",
            "--min-coverage", "lots",
        )
        assert bad_number.returncode == 2
        assert bad_number.stderr.startswith("error:")
        missing = run_script(
            "tools/trace_report.py", "hotspots",
            str(tmp_path / "absent.jsonl"),
        )
        assert missing.returncode == 2
        assert missing.stderr.startswith("error:")

    def test_cache_summary_on_uncached_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_demo_trace(trace)
        completed = run_script("tools/trace_report.py", "cache", str(trace))
        assert completed.returncode == 0, completed.stderr
        assert "operator cache:" in completed.stdout
        gated = run_script(
            "tools/trace_report.py", "cache", str(trace),
            "--min-hit-rate", "0.9",
        )
        assert gated.returncode == 1  # no cache activity at all
        assert "no operator cache activity" in gated.stderr

    def test_cache_gate_passes_on_warm_rerun(self, tmp_path):
        """The CI warm-cache step, end to end: two identical cached
        runs, the second one >= 90% hits."""
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        environment["REPRO_CACHE_DIR"] = str(tmp_path / "opcache")
        problem_text = "M^4\nP O^3\n\nM [PO]\nO O\n"
        for run in ("cold", "warm"):
            completed = subprocess.run(
                [
                    sys.executable, "examples/round_eliminator_cli.py", "2",
                    "--kernel", "--cache",
                    "--trace", str(tmp_path / f"{run}.jsonl"),
                ],
                cwd=REPO_ROOT, env=environment, input=problem_text,
                capture_output=True, text=True, timeout=300,
            )
            assert completed.returncode == 0, completed.stderr
        gate = run_script(
            "tools/trace_report.py", "cache", str(tmp_path / "warm.jsonl"),
            "--min-hit-rate", "0.9",
        )
        assert gate.returncode == 0, gate.stderr + gate.stdout
        assert "hit_rate=100.00%" in gate.stdout


class TestReproLint:
    def test_shipped_tree_is_clean(self):
        completed = run_script(
            "-m", "repro.lint", "src", "tests", "tools", "benchmarks"
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_help_exits_0_and_documents_exit_codes(self):
        completed = run_script("-m", "repro.lint", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout
        for fragment in ("0  clean", "1  violations", "2  usage"):
            assert fragment in completed.stdout

    def test_no_paths_exits_2(self):
        completed = run_script("-m", "repro.lint")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_violating_fixture_exits_1(self):
        completed = run_script(
            "-m", "repro.lint",
            "tests/lint_fixtures/rl001/src/repro/analysis/violating.py",
        )
        assert completed.returncode == 1
        assert "RL001" in completed.stdout
        assert "violation" in completed.stderr


class TestReproAnalysis:
    def test_shipped_tree_is_clean(self):
        completed = run_script("-m", "repro.analysis")
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_help_exits_0_and_documents_exit_codes(self):
        completed = run_script("-m", "repro.analysis", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout
        for fragment in ("0  clean", "1  findings", "2  usage"):
            assert fragment in completed.stdout

    def test_fixture_tree_exits_1_with_json_report(self):
        completed = run_script(
            "-m", "repro.analysis", "--json",
            "tests/fixtures/analysis/an001/src",
        )
        assert completed.returncode == 1
        report = json.loads(completed.stdout)
        assert [v["code"] for v in report["violations"]] == ["AN001"]

    def test_missing_path_exits_2(self):
        completed = run_script("-m", "repro.analysis", "no/such/tree")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")


class TestCallgraphReport:
    def test_stats_line_over_shipped_tree(self):
        completed = run_script("tools/callgraph_report.py", "--stats")
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("callgraph: ")
        assert "thread roots" in completed.stdout

    def test_dot_output_is_well_formed(self):
        completed = run_script(
            "tools/callgraph_report.py", "--format", "dot", "--threads"
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("digraph callgraph {")
        assert completed.stdout.rstrip().endswith("}")

    def test_hotpath_filter_selects_kernel_closure(self):
        completed = run_script("tools/callgraph_report.py", "--hotpath")
        assert completed.returncode == 0, completed.stderr
        assert "_maximization_dfs" in completed.stdout

    def test_ambiguous_root_exits_2(self):
        completed = run_script(
            "tools/callgraph_report.py", "--root", "right_closed_sets"
        )
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")
        assert "ambiguous" in completed.stderr

    def test_unknown_flag_exits_2(self):
        completed = run_script("tools/callgraph_report.py", "--bogus")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_script("tools/callgraph_report.py", "--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout


class TestCliTraceFlags:
    def test_round_eliminator_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "re.jsonl"
        completed = run_script(
            "examples/round_eliminator_cli.py", "1",
            "--kernel", "--trace", str(trace), "--metrics",
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert trace.exists()
        assert "op.R" in completed.stdout  # the metrics table
        report = run_script("tools/trace_report.py", "report", str(trace))
        assert report.returncode == 0

    def test_full_certificate_trace(self, tmp_path):
        trace = tmp_path / "cert.jsonl"
        completed = run_script(
            "examples/full_certificate.py", "4", "0",
            "--trace", str(trace), "--metrics",
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "certificate.build" in completed.stdout
        report = run_script("tools/trace_report.py", "report", str(trace))
        assert report.returncode == 0
        assert "certificate.build" in report.stdout
