"""Tests for the end-to-end lower-bound certificate and matching wrapper."""

import random

import pytest

from repro.algorithms.matching import (
    matching_size_lower_bound,
    run_maximal_matching,
)
from repro.lowerbound.certificate import build_certificate
from repro.sim.generators import (
    cycle_graph,
    random_tree_bounded_degree,
    truncated_regular_tree,
)


class TestCertificate:
    def test_small_delta_full_checks(self):
        certificate = build_certificate(4, k=0)
        assert certificate.ok, certificate.render()
        assert "lemma8 direct Rbar" in certificate.checks
        assert "lemma6 normal form" in certificate.checks
        assert "lemma5 instance witness" in certificate.checks
        # Delta = 4 is below the first chain step (a drops to 0): the
        # certificate still validates all lemmas, with 0 certified rounds.
        assert certificate.chain_length == 0

    def test_medium_delta_skips_direct(self):
        certificate = build_certificate(8, k=0)
        assert certificate.ok, certificate.render()
        assert "lemma8 direct Rbar" not in certificate.checks
        assert "lemma8 case analysis" in certificate.checks
        assert certificate.chain_length >= 1

    def test_large_delta_arithmetic_only(self):
        certificate = build_certificate(2**12, k=0)
        assert certificate.ok
        assert certificate.chain_length >= 3
        assert certificate.deterministic_bound > 0
        assert any("lemma8 direct" in name for name in certificate.skipped)

    def test_k_weakens_the_certificate(self):
        strong = build_certificate(2**12, k=0)
        weak = build_certificate(2**12, k=256)
        assert weak.chain_length <= strong.chain_length

    def test_render_mentions_all_checks(self):
        certificate = build_certificate(4, k=0)
        text = certificate.render()
        for name in certificate.checks:
            assert name in text

    @pytest.mark.parametrize("delta", [3, 4, 5])
    def test_certificates_across_small_deltas(self, delta):
        certificate = build_certificate(delta, k=0)
        assert certificate.ok, certificate.render()


class TestMatchingWrapper:
    @pytest.mark.parametrize("seed", range(3))
    def test_maximal_matching_on_trees(self, seed):
        graph = random_tree_bounded_degree(60, 4, random.Random(seed))
        result = run_maximal_matching(graph, seed=seed)
        assert len(result.edges) >= matching_size_lower_bound(graph)

    def test_on_cycle(self):
        graph = cycle_graph(9)
        result = run_maximal_matching(graph, seed=1)
        assert 3 <= len(result.edges) <= 4

    def test_on_regular_tree(self):
        graph = truncated_regular_tree(3, 3)
        result = run_maximal_matching(graph, seed=2)
        covered = result.covered_nodes(graph)
        assert len(covered) == 2 * len(result.edges)

    def test_rounds_reported(self):
        graph = random_tree_bounded_degree(40, 4, random.Random(1))
        result = run_maximal_matching(graph, seed=0)
        assert result.rounds >= 1
        assert result.line_nodes == graph.m
