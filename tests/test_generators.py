"""Tests for graph generators."""

import random

import pytest

from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
    random_tree,
    random_tree_bounded_degree,
    star_graph,
    truncated_regular_tree,
)


class TestBasicShapes:
    def test_path(self):
        graph = path_graph(5)
        assert graph.n == 5 and graph.m == 4 and graph.is_tree()
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_cycle(self):
        graph = cycle_graph(5)
        assert graph.is_regular(2) and graph.girth() == 5

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(4)
        assert graph.degree(0) == 4 and graph.is_tree()


class TestTruncatedRegularTree:
    def test_single_node(self):
        assert truncated_regular_tree(3, 0).n == 1

    def test_radius_one_is_star(self):
        graph = truncated_regular_tree(3, 1)
        assert graph.n == 4 and graph.degree(0) == 3

    @pytest.mark.parametrize("delta,radius", [(3, 2), (3, 3), (4, 2), (5, 2)])
    def test_internal_nodes_have_degree_delta(self, delta, radius):
        graph = truncated_regular_tree(delta, radius)
        assert graph.is_tree()
        degrees = sorted({graph.degree(v) for v in range(graph.n)})
        assert degrees == [1, delta]
        # Interior = all nodes within distance radius-1 of the root.
        from repro.sim.runtime import collect_ball

        interior = collect_ball(graph, 0, radius - 1).nodes
        for node in interior:
            assert graph.degree(node) == delta

    def test_node_count(self):
        # delta = 3, radius = 2: 1 + 3 + 3*2 = 10
        assert truncated_regular_tree(3, 2).n == 10


class TestRandomTrees:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_random_tree_is_tree(self, n):
        graph = random_tree(n, random.Random(7))
        assert graph.n == n
        if n > 1:
            assert graph.is_tree()

    def test_random_tree_deterministic_given_seed(self):
        a = random_tree(20, random.Random(3))
        b = random_tree(20, random.Random(3))
        assert sorted((u, v) for _, u, v in a.edges()) == sorted(
            (u, v) for _, u, v in b.edges()
        )

    @pytest.mark.parametrize("n,delta", [(10, 3), (50, 4), (100, 3)])
    def test_bounded_degree_respected(self, n, delta):
        graph = random_tree_bounded_degree(n, delta, random.Random(5))
        assert graph.is_tree()
        assert graph.max_degree() <= delta

    def test_bounded_degree_single_node(self):
        assert random_tree_bounded_degree(1, 3, random.Random(0)).n == 1


class TestTorusGrid:
    def test_regular(self):
        from repro.sim.generators import torus_grid

        graph = torus_grid(4, 6)
        assert graph.n == 24
        assert graph.is_regular(4)

    def test_proper_coloring_for_even_dimensions(self):
        from repro.sim.edge_coloring import is_proper_edge_coloring
        from repro.sim.generators import torus_grid

        assert is_proper_edge_coloring(torus_grid(4, 4))
        assert is_proper_edge_coloring(torus_grid(6, 8))

    def test_too_small_rejected(self):
        import pytest as _pytest

        from repro.sim.generators import torus_grid

        with _pytest.raises(ValueError):
            torus_grid(2, 5)

    def test_girth_four(self):
        from repro.sim.generators import torus_grid

        assert torus_grid(4, 4).girth() == 4


class TestRandomRegularGraph:
    def test_regularity(self):
        from repro.sim.generators import random_regular_graph

        graph = random_regular_graph(20, 3, random.Random(1))
        assert graph.is_regular(3)

    @pytest.mark.parametrize("n,delta", [(10, 3), (16, 4), (30, 3)])
    def test_various_sizes(self, n, delta):
        from repro.sim.generators import random_regular_graph

        graph = random_regular_graph(n, delta, random.Random(0))
        assert graph.n == n
        assert graph.m == n * delta // 2

    def test_parity_rejected(self):
        from repro.sim.generators import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(5, 3, random.Random(0))

    def test_delta_too_large_rejected(self):
        from repro.sim.generators import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(4, 4, random.Random(0))

    def test_deterministic(self):
        from repro.sim.generators import random_regular_graph

        a = random_regular_graph(20, 3, random.Random(9))
        b = random_regular_graph(20, 3, random.Random(9))
        assert sorted((u, v) for _, u, v in a.edges()) == sorted(
            (u, v) for _, u, v in b.edges()
        )


class TestCayleyInstance:
    """The Lemma 12 / 15 hard instances: port == color at both ends."""

    @pytest.mark.parametrize("delta", [1, 2, 3, 4])
    def test_regular_and_colored(self, delta):
        graph = colored_port_cayley_graph(delta)
        assert graph.n == 2**delta
        assert graph.is_regular(delta)
        assert graph.is_fully_colored()

    def test_port_equals_color_both_sides(self):
        graph = colored_port_cayley_graph(3)
        for edge_id, u, v in graph.edges():
            _, port_u, _, port_v = graph.endpoints(edge_id)
            color = graph.edge_color(edge_id)
            assert port_u == port_v == color

    def test_proper_coloring(self):
        from repro.sim.edge_coloring import is_proper_edge_coloring

        assert is_proper_edge_coloring(colored_port_cayley_graph(4))

    def test_views_identical_everywhere(self):
        """Every node sees the same 0-round view: ports and colors."""
        graph = colored_port_cayley_graph(3)
        views = {
            tuple(graph.color_at(node, port) for port in range(3))
            for node in range(graph.n)
        }
        assert len(views) == 1
