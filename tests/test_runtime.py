"""Tests for the synchronous runtime and node views."""

import pytest

from repro.sim.generators import cycle_graph, path_graph, truncated_regular_tree
from repro.sim.runtime import (
    Algorithm,
    collect_ball,
    run,
    run_ball_algorithm,
)


class EchoDegree(Algorithm):
    """0-round algorithm: output the degree immediately."""

    def init(self, view):
        super().init(view)
        self.halted = True

    def output(self):
        return self.view.degree


class CountNeighbors(Algorithm):
    """1-round algorithm: learn how many neighbors messaged."""

    def send(self):
        return {port: "hello" for port in range(self.view.degree)}

    def receive(self, messages):
        self.heard = len(messages)
        return True

    def output(self):
        return self.heard


class FloodMax(Algorithm):
    """Flood the maximum id for a fixed number of rounds (LOCAL only)."""

    def __init__(self, rounds):
        self.rounds_left = rounds

    def init(self, view):
        super().init(view)
        self.best = view.id

    def send(self):
        return {port: self.best for port in range(self.view.degree)}

    def receive(self, messages):
        for value in messages.values():
            self.best = max(self.best, value)
        self.rounds_left -= 1
        return self.rounds_left == 0

    def output(self):
        return self.best


class TestRun:
    def test_zero_round_algorithm(self):
        result = run(path_graph(4), EchoDegree)
        assert result.rounds == 0
        assert result.outputs == [1, 2, 2, 1]

    def test_one_round_algorithm(self):
        result = run(cycle_graph(5), CountNeighbors)
        assert result.rounds == 1
        assert result.outputs == [2] * 5

    def test_flood_max_needs_diameter_rounds(self):
        graph = path_graph(6)
        partial = run(graph, lambda: FloodMax(2))
        assert partial.rounds == 2
        assert partial.outputs[0] == 2  # only ids within distance 2
        full = run(graph, lambda: FloodMax(5))
        assert full.outputs == [5] * 6

    def test_max_rounds_enforced(self):
        class Forever(Algorithm):
            def receive(self, messages):
                return False

            def output(self):
                return None

        with pytest.raises(RuntimeError):
            run(path_graph(2), Forever, max_rounds=10)

    def test_pn_model_hides_ids(self):
        class ReadId(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True

            def output(self):
                return self.view.id

        with pytest.raises(AttributeError):
            run(path_graph(2), ReadId, model="PN")

    def test_local_model_exposes_ids(self):
        class ReadId(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True

            def output(self):
                return self.view.id

        result = run(path_graph(3), ReadId, model="LOCAL")
        assert result.outputs == [0, 1, 2]

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run(path_graph(2), EchoDegree, model="ASYNC")

    def test_randomness_deterministic_given_seed(self):
        class Coin(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True
                self.value = view.rng.random()

            def output(self):
                return self.value

        first = run(path_graph(5), Coin, seed=42).outputs
        second = run(path_graph(5), Coin, seed=42).outputs
        third = run(path_graph(5), Coin, seed=43).outputs
        assert first == second
        assert first != third

    def test_node_streams_independent(self):
        class Coin(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True
                self.value = view.rng.random()

            def output(self):
                return self.value

        outputs = run(path_graph(5), Coin, seed=1).outputs
        assert len(set(outputs)) == 5

    def test_inputs_reach_views(self):
        class ReadInput(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True

            def output(self):
                return self.view.input

        result = run(path_graph(3), ReadInput, inputs=["a", "b", "c"])
        assert result.outputs == ["a", "b", "c"]

    def test_view_exposes_edge_colors(self):
        from repro.sim.edge_coloring import tree_edge_coloring

        graph = tree_edge_coloring(path_graph(3))

        class ReadColors(Algorithm):
            def init(self, view):
                super().init(view)
                self.halted = True

            def output(self):
                return tuple(self.view.edge_colors)

        result = run(graph, ReadColors)
        assert result.outputs[1] in [(0, 1), (1, 0)]


class TestBallRunner:
    def test_ball_nodes(self):
        graph = truncated_regular_tree(3, 2)
        ball = collect_ball(graph, 0, 1)
        assert set(ball.nodes) == {0, 1, 2, 3}
        assert ball.nodes[0] == 0

    def test_ball_distance(self):
        graph = path_graph(5)
        ball = collect_ball(graph, 2, 2)
        assert ball.distance(2) == 0
        assert ball.distance(0) == 2
        with pytest.raises(ValueError):
            collect_ball(graph, 0, 1).distance(4)

    def test_run_ball_algorithm(self):
        graph = path_graph(4)
        sizes = run_ball_algorithm(graph, 1, lambda ball: len(ball.nodes))
        assert sizes == [2, 3, 3, 2]

    def test_radius_zero_ball(self):
        graph = path_graph(3)
        ball = collect_ball(graph, 1, 0)
        assert ball.nodes == (1,)
