"""Parity pins: iterative machine DFS == frozen recursive reference.

The engine's maximization and existential searches were rewritten from
recursive closures over ``frozenset[int]`` frontiers to iterative
explicit-stack drivers over closure-machine bitmasks.  These tests pin
the rewrite to the preserved pre-rewrite implementations in
:mod:`tests.legacy_dfs`, chunk by chunk, over the classic corpus and a
seeded stream of random problems:

* identical result lists — same tuples, same order, per chunk; and
* identical visit counts — every candidate-level grow of the iterative
  driver (its ``grow_calls`` stat) corresponds 1:1 to one
  ``grow_frontier`` / ``grow_frontier_exists`` call of the recursion.

The Δ=5 second chain step (the size the optimization targets) is
included explicitly alongside the small classics.
"""

import itertools
import random

import pytest

from repro.core.kernel.bitops import iter_bits
from repro.core.kernel.engine import (
    KernelProblem,
    _set_sort_key,
    closure_machine,
    maximize_edge_constraint_kernel,
    pack_ids,
    search_existential_chunk,
    search_maximization_chunk,
)
from repro.core.kernel.interning import LabelInterner
from repro.core.round_elimination import R, rename_to_strings, speedup
from repro.problems.mis import mis_problem
from repro.robustness.errors import InvalidProblem

from tests.legacy_dfs import (
    legacy_existential_chunk,
    legacy_maximization_chunk,
)
from tests.oracle import classic_corpus, random_problem

SEED = 71


def _node_search_inputs(problem):
    """Both encodings of the node-maximization search state."""
    kernel = KernelProblem.of(problem)
    candidates = kernel.node_right_closed_sets()
    shift = kernel.delta.bit_length()
    member_steps = tuple(
        tuple(1 << (shift * label_id) for label_id in iter_bits(mask))
        for mask in candidates
    )
    closure = kernel.node_prefix_closure()
    _elements, trans = kernel.node_dfs_machine()
    member_labels = tuple(tuple(iter_bits(mask)) for mask in candidates)
    return kernel, candidates, member_steps, closure, member_labels, trans


def _assert_node_chunks_match(problem):
    (
        kernel,
        candidates,
        member_steps,
        closure,
        member_labels,
        trans,
    ) = _node_search_inputs(problem)
    for first_index in range(len(candidates)):
        counter = [0]
        legacy = legacy_maximization_chunk(
            candidates, member_steps, closure, kernel.delta, first_index, counter
        )
        stats: dict = {}
        current = search_maximization_chunk(
            candidates, member_labels, trans, kernel.delta, first_index,
            stats=stats,
        )
        assert current == legacy, (
            f"maximization chunk {first_index} diverges on "
            f"{problem.name or problem!r}"
        )
        assert stats.get("grow_calls", 0) == counter[0], (
            f"maximization chunk {first_index} visit counts diverge on "
            f"{problem.name or problem!r}: "
            f"iterative={stats.get('grow_calls')} recursive={counter[0]}"
        )


def _exists_search_inputs(old_constraint, new_labels, arity):
    """Both encodings of the existential search state (mirrors the
    setup block of ``existential_constraint_kernel`` exactly)."""
    labels = sorted(set(new_labels), key=_set_sort_key)
    base = set(old_constraint.labels_used())
    for label_set in labels:
        base |= label_set
    interner = LabelInterner(base)
    shift = max(arity, old_constraint.arity).bit_length()
    member_steps = tuple(
        tuple(
            1 << (shift * label_id)
            for label_id in sorted(
                interner.id_of(member) for member in label_set
            )
        )
        for label_set in labels
    )
    member_labels = tuple(
        tuple(sorted(interner.id_of(member) for member in label_set))
        for label_set in labels
    )
    closure: set[int] = set()
    for configuration in old_constraint.configurations:
        items = interner.ids_of(configuration.items)
        for size in range(len(items) + 1):
            for combo in itertools.combinations(items, size):
                closure.add(pack_ids(combo, shift))
    closure_frozen = frozenset(closure)
    _elements, trans = closure_machine(
        closure_frozen, shift, len(interner)
    )
    return labels, member_steps, closure_frozen, member_labels, trans


def _assert_exists_chunks_match(old_constraint, new_labels, arity, name):
    (
        labels,
        member_steps,
        closure,
        member_labels,
        trans,
    ) = _exists_search_inputs(old_constraint, new_labels, arity)
    for first_index in range(len(labels)):
        counter = [0]
        legacy = legacy_existential_chunk(
            member_steps, closure, arity, first_index, counter
        )
        stats: dict = {}
        current = search_existential_chunk(
            member_labels, trans, arity, first_index, stats=stats
        )
        assert current == legacy, (
            f"existential chunk {first_index} diverges on {name}"
        )
        assert stats.get("grow_calls", 0) == counter[0], (
            f"existential chunk {first_index} visit counts diverge on "
            f"{name}: iterative={stats.get('grow_calls')} "
            f"recursive={counter[0]}"
        )


CLASSICS = classic_corpus()
CLASSIC_IDS = [name for name, _ in CLASSICS]


@pytest.mark.parametrize("name, problem", CLASSICS, ids=CLASSIC_IDS)
def test_maximization_parity_classics(name, problem):
    """Node-max chunks match the recursion on every classic's Rbar input."""
    renamed = rename_to_strings(R(problem, use_kernel=True)).problem
    _assert_node_chunks_match(renamed)


@pytest.mark.parametrize("name, problem", CLASSICS, ids=CLASSIC_IDS)
def test_existential_parity_classics(name, problem):
    """Edge-existential chunks match the recursion on every classic."""
    edge_constraint = maximize_edge_constraint_kernel(problem)
    sigma = sorted(edge_constraint.labels_used(), key=_set_sort_key)
    _assert_exists_chunks_match(
        problem.node_constraint, sigma, problem.delta, name
    )


def test_maximization_parity_random():
    """Node-max chunks match the recursion on seeded random problems."""
    rng = random.Random(SEED)
    checked = 0
    attempts = 0
    while checked < 8 and attempts < 40:
        attempts += 1
        problem = random_problem(rng)
        try:
            renamed = rename_to_strings(R(problem, use_kernel=True)).problem
        except InvalidProblem:
            continue
        _assert_node_chunks_match(renamed)
        checked += 1
    assert checked == 8, "random corpus dried up before 8 instances"


def test_existential_parity_random():
    """Existential chunks match the recursion on seeded random problems."""
    rng = random.Random(SEED + 1)
    checked = 0
    attempts = 0
    while checked < 8 and attempts < 40:
        attempts += 1
        problem = random_problem(rng)
        try:
            edge_constraint = maximize_edge_constraint_kernel(problem)
        except InvalidProblem:
            continue
        sigma = sorted(edge_constraint.labels_used(), key=_set_sort_key)
        _assert_exists_chunks_match(
            problem.node_constraint, sigma, problem.delta, problem.name
        )
        checked += 1
    assert checked == 8, "random corpus dried up before 8 instances"


def test_maximization_parity_delta5_second_step():
    """The Δ=5 second chain step — the exact shape the rewrite targets
    (~20 candidates, ~1200 closure elements) — matches the recursion."""
    step_one = speedup(mis_problem(5), use_kernel=True).problem
    intermediate = rename_to_strings(R(step_one, use_kernel=True)).problem
    _assert_node_chunks_match(intermediate)
