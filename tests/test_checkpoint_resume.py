"""Property tests for checkpoint/resume: a killed run, resumed, must be
indistinguishable from an uninterrupted one — identical chain steps,
byte-identical certificates — and corrupt state must be discarded, not
trusted."""

import json

import pytest

from repro.core.io import (
    canonical_json,
    payload_digest,
    read_json_checkpoint,
    write_json_checkpoint,
)
from repro.lowerbound.certificate import build_certificate
from repro.lowerbound.sequence import lemma13_chain, run_chain
from repro.observability.schema import validate_trace
from repro.observability.trace import Tracer, tracing
from repro.robustness.budget import Budget
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import BudgetExceeded, CheckpointCorrupt

from tests.faults import (
    InjectedFault,
    budget_tripping_budget,
    corrupt_checkpoint,
    tripping_budget,
)


class TestCheckpointFiles:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )

    def test_digest_tracks_content(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "state.json"
        payload = {"steps": [1, 2, 3], "complete": False}
        write_json_checkpoint(path, payload)
        assert read_json_checkpoint(path) == payload

    def test_flipped_byte_breaks_the_seal(self, tmp_path):
        path = tmp_path / "state.json"
        write_json_checkpoint(path, {"steps": list(range(20))})
        corrupt_checkpoint(path)
        with pytest.raises(CheckpointCorrupt):
            read_json_checkpoint(path)

    def test_tampered_payload_breaks_the_seal(self, tmp_path):
        path = tmp_path / "state.json"
        write_json_checkpoint(path, {"value": 1})
        document = json.loads(path.read_text())
        document["payload"]["value"] = 2
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointCorrupt):
            read_json_checkpoint(path)


class TestCheckpointStore:
    def test_save_load_delete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("alpha") is None
        store.save("alpha", {"x": 1})
        assert store.load("alpha") == {"x": 1}
        assert "alpha" in store.stages()
        store.delete("alpha")
        assert store.load("alpha") is None

    def test_load_or_discard_removes_corrupt_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("alpha", {"x": 1})
        corrupt_checkpoint(store.path_for("alpha"))
        payload, error = store.load_or_discard("alpha")
        assert payload is None
        assert isinstance(error, CheckpointCorrupt)
        # The damaged file is gone; the next load is a clean miss.
        assert store.load("alpha") is None


class TestChainResume:
    """run_chain killed mid-construction resumes to the identical chain."""

    @pytest.mark.parametrize("delta,x", [(8, 0), (16, 1), (64, 0), (512, 0)])
    def test_killed_and_resumed_equals_uninterrupted(self, tmp_path, delta, x):
        baseline = lemma13_chain(delta, x)
        store = CheckpointStore(tmp_path)
        budget, injector = tripping_budget(trip_at=2)
        with pytest.raises(InjectedFault):
            run_chain(delta, x, store=store, budget=budget)
        resumed = run_chain(delta, x, store=store)
        assert resumed.chain == baseline
        assert resumed.complete
        assert resumed.resumed_from_step is not None
        assert resumed.resumed_from_step < len(baseline)

    def test_resuming_a_complete_run_is_a_pure_replay(self, tmp_path):
        store = CheckpointStore(tmp_path)
        first = run_chain(64, 0, store=store)
        second = run_chain(64, 0, store=store)
        assert second.chain == first.chain
        assert second.resumed_from_step == len(first.chain)

    def test_corrupt_checkpoint_is_discarded_and_recomputed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        run_chain(64, 0, store=store)
        (stage,) = store.stages()
        corrupt_checkpoint(store.path_for(stage))
        result = run_chain(64, 0, store=store)
        assert result.chain == lemma13_chain(64, 0)
        assert result.resumed_from_step is None
        assert any("corrupt" in entry for entry in result.provenance)


class TestKernelChainResumeTraced:
    """Kernel-path run_chain, killed by an injected BudgetExceeded,
    resumes to byte-identical output — and the resumed run's trace
    marks the chain span ``resumed=true``."""

    def test_budget_trip_resumes_byte_identical_with_resumed_span(
        self, tmp_path
    ):
        delta, x = 64, 0
        baseline = run_chain(delta, x, verify_steps=True, use_kernel=True)
        store = CheckpointStore(tmp_path / "interrupted")
        budget, injector = budget_tripping_budget(trip_at=2)
        with pytest.raises(BudgetExceeded):
            run_chain(
                delta, x, store=store, budget=budget,
                verify_steps=True, use_kernel=True,
            )
        assert store.stages()  # the completed prefix survived the trip

        tracer = Tracer()
        with tracing(tracer):
            resumed = run_chain(
                delta, x, store=store, verify_steps=True, use_kernel=True
            )
        records = tracer.finish()
        validate_trace(records)

        assert resumed.complete
        assert resumed.chain == baseline.chain
        assert resumed.resumed_from_step is not None
        assert 0 < resumed.resumed_from_step < len(baseline.chain)

        # Byte-identical persisted state: the resumed store's checkpoint
        # equals the one from an uninterrupted run.
        fresh = CheckpointStore(tmp_path / "fresh")
        run_chain(delta, x, store=fresh, verify_steps=True, use_kernel=True)
        (stage,) = store.stages()
        assert (
            store.path_for(stage).read_bytes()
            == fresh.path_for(stage).read_bytes()
        )

        chain_span = next(
            r for r in records
            if r["type"] == "span" and r["name"] == "chain.run"
        )
        assert chain_span["attrs"]["resumed"] is True
        assert chain_span["attrs"]["resumed_from_step"] == resumed.resumed_from_step
        assert chain_span["attrs"]["engine"] == "kernel"
        # The resume surfaced in span events and in the provenance
        # summary — which is observational only (appended after the
        # final persist), hence the byte-identity above.
        event_names = {r["name"] for r in records if r["type"] == "event"}
        assert "checkpoint.load" in event_names
        assert "checkpoint.save" in event_names
        assert any(entry.startswith("trace: ") for entry in resumed.provenance)


class TestCertificateResume:
    """build_certificate killed mid-stage renders byte-identically."""

    def test_killed_and_resumed_renders_identically(self, tmp_path):
        baseline = build_certificate(4, 0).render()
        store = CheckpointStore(tmp_path)
        budget, injector = tripping_budget(trip_at=2)
        with pytest.raises(InjectedFault):
            build_certificate(4, 0, store=store, budget=budget)
        resumed = build_certificate(4, 0, store=store)
        assert resumed.render() == baseline
        assert resumed.ok

    def test_degraded_certificate_resumes_identically(self, tmp_path):
        # Same budget shape in both runs: a tight alphabet cap that
        # forces the governed stage to degrade via simplification.
        baseline = build_certificate(
            4, 0, budget=Budget(max_alphabet=4)
        ).render()
        store = CheckpointStore(tmp_path)
        budget, injector = tripping_budget(trip_at=2, max_alphabet=4)
        with pytest.raises(InjectedFault):
            build_certificate(4, 0, store=store, budget=budget)
        resumed = build_certificate(
            4, 0, store=store, budget=Budget(max_alphabet=4)
        )
        assert resumed.render() == baseline
        assert resumed.ok
        assert resumed.degraded
        assert any("LOSSY" in entry for entry in resumed.provenance)

    def test_mismatched_parameters_do_not_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        build_certificate(4, 0, store=store)
        other = build_certificate(4, 1, store=store)
        assert other.k == 1
        assert other.render() == build_certificate(4, 1).render()
