"""The fault-tolerant shard scheduler, under injected process faults.

The contract under test (ISSUE 6 / ROADMAP item 2): no matter how
workers die, wedge, OOM, or get interrupted mid-run, the parallel
kernel either produces output *byte-identical* to the serial engine or
raises a typed :class:`~repro.robustness.errors.ReproError` with the
fleet torn down — never a silent divergence, never the old ``imap``
deadlock.  Every recovery path (retry/backoff, shard split, serial
fallback, spill/resume) is driven here by the process-level injectors
of :mod:`tests.faults` and checked against the serial run.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.io import problem_to_json
from repro.core.kernel.sharding import (
    DEFAULT_MAX_RETRIES,
    ShardPolicy,
    ShardScheduler,
    ShardSpillStore,
    UNIT_BYTES,
    plan_shards,
    scheduling,
    spill_run_key,
    unit_estimates,
)
from repro.core.round_elimination import Rbar, speedup
from repro.observability.metrics import total_counters
from repro.observability.schema import TIMING_COUNTERS, validate_trace
from repro.observability.trace import Tracer, tracing
from repro.problems.mis import mis_problem
from repro.robustness.budget import Budget, governed
from repro.robustness.errors import EngineMisuse
from tests.faults import (
    AllocationCap,
    FaultInjector,
    InjectedFault,
    StallInjector,
    WorkerKiller,
    corrupt_checkpoint,
)
from tests.oracle import classic_corpus

MIS_CHAIN_DELTA = 4
MIS_CHAIN_STEPS = 2

#: Fast backoff for tests — recovery paths identical, wall clock tiny.
FAST = {"backoff_base_seconds": 0.01, "backoff_cap_seconds": 0.05}


def run_chain(*, workers=None, policy=None, budget=None):
    """The Delta=4 MIS chain (two speedups) as one JSON string."""
    problem = mis_problem(MIS_CHAIN_DELTA)
    with governed(budget):
        with scheduling(policy):
            for _ in range(MIS_CHAIN_STEPS):
                problem = speedup(
                    problem, use_kernel=True, workers=workers
                ).problem
    return problem_to_json(problem)


@pytest.fixture(scope="module")
def serial_chain():
    return run_chain()


def spans(records):
    return [r for r in records if r["type"] == "span"]


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

class TestPlanning:
    def test_unit_estimates_shapes(self):
        # DFS kinds: candidate-suffix volume, decreasing in the index.
        node = unit_estimates("node-max", 4)
        assert node == [4 * UNIT_BYTES, 3 * UNIT_BYTES, 2 * UNIT_BYTES, UNIT_BYTES]
        assert unit_estimates("exists", 3) == unit_estimates("node-max", 3)
        # Pairing: one flat charge per closed set (slice width).
        assert unit_estimates("edge-pair", 3) == [UNIT_BYTES] * 3
        with pytest.raises(EngineMisuse):
            unit_estimates("nonsense", 2)

    @given(
        count=st.integers(min_value=1, max_value=60),
        target=st.integers(min_value=1, max_value=100 * UNIT_BYTES),
        kind=st.sampled_from(["node-max", "exists", "edge-pair"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_tiles_the_range(self, count, target, kind):
        estimates = unit_estimates(kind, count)
        shards = plan_shards(estimates, 0, count, target)
        # Contiguous, ordered, exactly tiling [0, count).
        assert shards[0].lo == 0 and shards[-1].hi == count
        for left, right in zip(shards, shards[1:]):
            assert left.hi == right.lo
        for shard in shards:
            assert shard.estimate == sum(estimates[shard.lo:shard.hi])
            # Over target only when a single unit already is.
            if shard.width > 1:
                assert shard.estimate <= target

    def test_run_key_distinguishes_payloads(self):
        one = spill_run_key("node-max", ((1, 2), ((1,),), frozenset({0}), 2), 2)
        two = spill_run_key("node-max", ((1, 3), ((1,),), frozenset({0}), 2), 2)
        assert one != two
        assert one == spill_run_key(
            "node-max", ((1, 2), ((1,),), frozenset({0}), 2), 2
        )


# ---------------------------------------------------------------------------
# The spill store
# ---------------------------------------------------------------------------

class TestSpillStore:
    def test_roundtrip(self, tmp_path):
        store = ShardSpillStore(tmp_path)
        results = [(3, 5), (7, 11)]
        size = store.save("k" * 20, "edge-pair", 0, 2, results)
        assert size > 0
        loaded = store.load_finished("k" * 20, "edge-pair", 4)
        assert loaded == {(0, 2): [(3, 5), (7, 11)]}

    def test_corrupt_shard_discarded(self, tmp_path):
        store = ShardSpillStore(tmp_path)
        store.save("k" * 20, "exists", 0, 1, [(0,)])
        store.save("k" * 20, "exists", 1, 3, [(1, 2)])
        corrupt_checkpoint(store.store.path_for("shard-" + "k" * 20 + "-000001-000003"))
        loaded = store.load_finished("k" * 20, "exists", 3)
        # The damaged range is dropped (and recomputed by the caller),
        # the sealed one survives.
        assert loaded == {(0, 1): [(0,)]}

    def test_wrong_kind_and_overlap_skipped(self, tmp_path):
        store = ShardSpillStore(tmp_path)
        store.save("k" * 20, "exists", 0, 2, [(0,)])
        store.save("k" * 20, "node-max", 1, 3, [(9,)])
        loaded = store.load_finished("k" * 20, "exists", 3)
        assert loaded == {(0, 2): [(0,)]}


# ---------------------------------------------------------------------------
# Recovery: deaths, wedges, retries, the full ladder
# ---------------------------------------------------------------------------

class TestRecovery:
    def test_chaos_chain_acceptance(self, serial_chain):
        """The ISSUE 6 acceptance run: >= 3 SIGKILLed workers in the
        Delta=4 MIS chain, byte-identical output, retries visible."""
        started = time.monotonic()
        tracer = Tracer()
        policy = ShardPolicy(worker_probe=WorkerKiller({0, 1, 2}), **FAST)
        with tracing(tracer):
            faulted = run_chain(workers=4, policy=policy)
        elapsed = time.monotonic() - started
        assert faulted == serial_chain
        totals = total_counters(tracer.finish())
        assert totals.get("mp.worker_deaths", 0) >= 3
        assert totals.get("mp.retries", 0) >= 3
        assert elapsed < 120.0

    def test_kill_only_first_attempts_counts_exactly(self, serial_chain):
        tracer = Tracer()
        policy = ShardPolicy(worker_probe=WorkerKiller({1, 3}), **FAST)
        with tracing(tracer):
            faulted = run_chain(workers=2, policy=policy)
        assert faulted == serial_chain
        totals = total_counters(tracer.finish())
        # Each killed seq is an attempt-0 dispatch; its retry gets a
        # fresh seq and survives.  Every speedup of the chain owns a
        # scheduler with its own dispatch counter, so the two seqs die
        # once per step: exactly 2 * steps deaths, and as many retries.
        assert totals.get("mp.worker_deaths") == 2 * MIS_CHAIN_STEPS
        assert totals.get("mp.retries") == 2 * MIS_CHAIN_STEPS

    def test_wedged_worker_killed_at_deadline(self, serial_chain):
        tracer = Tracer()
        policy = ShardPolicy(
            worker_probe=StallInjector({0}),
            shard_timeout_seconds=0.3,
            **FAST,
        )
        with tracing(tracer):
            faulted = run_chain(workers=2, policy=policy)
        assert faulted == serial_chain
        totals = total_counters(tracer.finish())
        assert totals.get("mp.worker_deaths", 0) >= 1

    def test_kill_every_attempt_degrades_to_serial(self, serial_chain):
        """The full ladder: retries exhaust, splits cannot help (the
        killer keys on the kind, not the range), the serial twin in the
        parent finishes the work — and the output is still identical."""

        faulted = run_chain(
            workers=2,
            policy=ShardPolicy(
                worker_probe=_KillAllNodeMax(), max_retries=1, **FAST
            ),
        )
        assert faulted == serial_chain

    def test_typed_worker_error_propagates(self):
        policy = ShardPolicy(worker_probe=_RaiseTypedAt(seq=1), **FAST)
        with pytest.raises(InjectedFault) as caught:
            run_chain(workers=4, policy=policy)
        assert caught.value.context.get("seq") == 1
        # The error path tore the fleet down — no orphaned workers.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_budget_retry_cap_is_used(self, serial_chain):
        # max_shard_retries arrives through governed(), not the policy.
        tracer = Tracer()
        budget = Budget(max_shard_retries=0)
        policy = ShardPolicy(worker_probe=WorkerKiller({0}), **FAST)
        with tracing(tracer):
            faulted = run_chain(workers=2, policy=policy, budget=budget)
        assert faulted == serial_chain
        totals = total_counters(tracer.finish())
        # Zero retries allowed: the death goes straight down the ladder.
        assert totals.get("mp.retries", 0) == 0
        assert totals.get("mp.worker_deaths", 0) >= 1

    def test_default_retry_cap(self):
        assert ShardScheduler(2)._resolved_retries() == DEFAULT_MAX_RETRIES
        with governed(Budget(max_shard_retries=7)):
            assert ShardScheduler(2)._resolved_retries() == 7
        assert (
            ShardScheduler(2, ShardPolicy(max_retries=1))._resolved_retries()
            == 1
        )


class _KillAllNodeMax:
    """Kill every node-max attempt, any seq, any attempt, any width."""

    def __call__(self, context):
        if context.get("kind") == "node-max":
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)


class _RaiseTypedAt:
    """Raise a typed ReproError inside the worker on one dispatch."""

    def __init__(self, seq):
        self.seq = seq

    def __call__(self, context):
        if context.get("seq") == self.seq:
            raise InjectedFault("typed fault in worker", seq=self.seq)


# ---------------------------------------------------------------------------
# Memory accounting
# ---------------------------------------------------------------------------

class TestMemoryBudget:
    # The budget is honored at unit granularity: a single unsplittable
    # unit larger than the whole budget would be admitted alone (and
    # flagged with a shard.oversized event), so a *feasible* budget is
    # one at least as large as the biggest unit estimate — here the
    # 63-unit node-max suffix of the chain's second step (8064 bytes).
    BUDGET = 8192

    def test_admission_respects_budget(self, serial_chain):
        tracer = Tracer()
        with tracing(tracer):
            governed_chain = run_chain(
                workers=4, budget=Budget(max_shard_bytes=self.BUDGET)
            )
        assert governed_chain == serial_chain
        peaks = [
            record["counters"].get("mp.mem_admitted_peak", 0)
            for record in spans(tracer.finish())
        ]
        # Batch-at-a-time admission: each kernel.map span's total is
        # that run's in-flight high-water mark, and every run's
        # high-water mark stays within the configured budget.
        assert any(peak > 0 for peak in peaks)
        assert max(peaks) <= self.BUDGET

    def test_unbounded_run_admits_more(self, serial_chain):
        tracer = Tracer()
        with tracing(tracer):
            free = run_chain(workers=4)
        assert free == serial_chain
        peaks = [
            record["counters"].get("mp.mem_admitted_peak", 0)
            for record in spans(tracer.finish())
        ]
        assert max(peaks) > self.BUDGET

    def test_allocation_cap_forces_splits(self, serial_chain):
        tracer = Tracer()
        policy = ShardPolicy(
            worker_probe=AllocationCap(2000),
            max_inflight_bytes=10**6,  # plan wide shards, then split
            **FAST,
        )
        with tracing(tracer):
            capped = run_chain(workers=4, policy=policy)
        assert capped == serial_chain
        totals = total_counters(tracer.finish())
        assert totals.get("mp.shard_splits", 0) > 0


# ---------------------------------------------------------------------------
# Spill and resume
# ---------------------------------------------------------------------------

class TestSpillResume:
    def test_interrupt_then_resume_byte_identical(self, tmp_path, serial_chain):
        policy = ShardPolicy(spill_dir=tmp_path, **FAST)
        injector = FaultInjector(trip_at=8)
        with pytest.raises(InjectedFault):
            run_chain(workers=4, policy=policy, budget=Budget(probe=injector))
        spilled = list(tmp_path.glob("shard-*.json"))
        assert spilled, "the interrupted run left no finished shards"

        tracer = Tracer()
        with tracing(tracer):
            resumed = run_chain(workers=4, policy=policy)
        assert resumed == serial_chain
        totals = total_counters(tracer.finish())
        assert totals.get("mp.spill_loads", 0) >= len(spilled) > 0
        assert totals.get("mp.spilled_bytes", 0) > 0

    def test_resume_survives_corrupt_spill(self, tmp_path, serial_chain):
        policy = ShardPolicy(spill_dir=tmp_path, **FAST)
        first = run_chain(workers=2, policy=policy)
        assert first == serial_chain
        victim = sorted(tmp_path.glob("shard-*.json"))[0]
        corrupt_checkpoint(victim)
        resumed = run_chain(workers=2, policy=policy)
        assert resumed == serial_chain

    def test_spilled_files_are_sealed_documents(self, tmp_path, serial_chain):
        run_chain(workers=2, policy=ShardPolicy(spill_dir=tmp_path, **FAST))
        for path in tmp_path.glob("shard-*.json"):
            document = json.loads(path.read_text())
            assert set(document) == {"sha256", "payload"}
            assert set(document["payload"]) == {"kind", "lo", "hi", "results"}


# ---------------------------------------------------------------------------
# Trace-graft correctness under retries (no double counting)
# ---------------------------------------------------------------------------

class TestGraftUnderRetries:
    def traced_rbar(self, problem, policy):
        tracer = Tracer()
        with tracing(tracer):
            with scheduling(policy):
                result = Rbar(problem, use_kernel=True, workers=2)
        return result, tracer.finish()

    @pytest.mark.parametrize(
        "name,problem",
        [(name, problem) for name, problem in classic_corpus()[:4]],
    )
    def test_retries_do_not_double_count(self, name, problem):
        reference, clean_records = self.traced_rbar(problem, None)
        faulted, fault_records = self.traced_rbar(
            problem, ShardPolicy(worker_probe=WorkerKiller({0, 2}), **FAST)
        )
        assert faulted == reference, name
        validate_trace(fault_records)
        clean = total_counters(clean_records)
        noisy = total_counters(fault_records)
        # Abandoned attempts ship nothing: the per-result counter is
        # identical to the unfaulted run even though workers died.
        assert noisy.get("mp.chunk_results") == clean.get("mp.chunk_results")
        assert noisy.get("mp.chunks") == clean.get("mp.chunks")

    def test_no_duplicate_shard_spans(self):
        problem = mis_problem(4)
        _, records = self.traced_rbar(
            problem, ShardPolicy(worker_probe=WorkerKiller({0, 1}), **FAST)
        )
        validate_trace(records)
        shard_spans = [
            r for r in spans(records) if r["name"] == "kernel.shard"
        ]
        ranges = [
            (r["attrs"]["kind"], r["attrs"]["lo"], r["attrs"]["hi"])
            for r in shard_spans
        ]
        # One span per *winning* attempt: every (kind, range) at most once.
        assert len(ranges) == len(set(ranges))
        # And each shard span wraps exactly one chunk span.
        chunk_spans = [
            r for r in spans(records) if r["name"] == "kernel.chunk"
        ]
        assert len(chunk_spans) <= len(shard_spans)

    def test_new_counters_are_declared(self):
        for counter in (
            "mp.shards",
            "mp.retries",
            "mp.worker_deaths",
            "mp.shard_splits",
            "mp.spilled_bytes",
            "mp.spill_loads",
            "mp.mem_admitted_peak",
        ):
            assert counter in TIMING_COUNTERS


# ---------------------------------------------------------------------------
# The pool facade
# ---------------------------------------------------------------------------

class TestKernelPoolFacade:
    def test_single_unit_or_serial_pool_returns_none(self):
        from repro.core.kernel.parallel import KernelPool

        with KernelPool(None) as pool:
            assert pool.map_chunks("edge-pair", ((), ()), 0, phase="x") is None
        with KernelPool(1) as pool:
            assert not pool.usable()
        with KernelPool(4) as pool:
            assert (
                pool.map_chunks("edge-pair", ((3,), (1,)), 1, phase="x")
                is None
            )

    def test_ambient_policy_is_picked_up(self, serial_chain):
        # scheduling() installs the policy; no explicit plumbing needed.
        tracer = Tracer()
        with tracing(tracer):
            chained = run_chain(
                workers=2,
                policy=ShardPolicy(worker_probe=WorkerKiller({0}), **FAST),
            )
        assert chained == serial_chain
        # Each speedup in the chain builds its own scheduler (fresh seq
        # counter), so seq 0 dies once per step.
        assert (
            total_counters(tracer.finish()).get("mp.worker_deaths")
            == MIS_CHAIN_STEPS
        )
