"""Cross-step interned-artifact transport (the renaming fast path).

``KernelProblem.of`` consults a process-global transport registry: when
the incoming problem is a *renaming* of a previously-interned one —
same structure key, same memoized canonical fingerprint — the old
problem's artifacts (Galois lattice, partner cache, ge-masks,
right-closed sets, prefix closure, DFS machine) are permuted through
the relabeling instead of recomputed.  Fingerprints are only ever read
from the canonical-form memo (:func:`repro.core.cache.cached_fingerprint`),
never computed, so the transport probe fires no canonicalization
budget checkpoints; condensed chain iterates qualify because
``condense`` canonicalizes its input first.

These tests pin both halves of the contract: transported views are
*exactly* equal to fresh builds, and chains actually stop paying the
interning tax (``kernel.intern.transported`` fires, ``galois.cache.miss``
stops growing once the registry is warm).
"""

import random

from collections import defaultdict

from repro.core.cache import canonical_form
from repro.core.kernel.engine import KernelProblem
from repro.core.kernel.interning import transport_registry
from repro.core.problem import Problem
from repro.core.self_reduction import condense_problem, self_reduce
from repro.observability.trace import Tracer, tracing
from repro.problems.classic import sinkless_orientation_problem
from repro.problems.mis import mis_problem


def _renamed_copy(problem: Problem, mapping: dict) -> Problem:
    return Problem(
        [mapping[label] for label in problem.alphabet],
        problem.node_constraint.rename(mapping),
        problem.edge_constraint.rename(mapping),
        name=f"renamed({problem.name})",
    )


class TestTransportedView:
    def test_renamed_problem_transports(self):
        """A canonicalized renaming of an interned problem is served by
        transport, not a fresh build."""
        problem = mis_problem(3)
        canonical_form(problem)
        KernelProblem.of(problem)
        renamed = _renamed_copy(problem, {"M": "Z2", "P": "Z0", "O": "Z1"})
        canonical_form(renamed)
        tracer = Tracer()
        with tracing(tracer):
            KernelProblem.of(renamed)
        counters: dict = defaultdict(int)
        for record in tracer.finish():
            if record["type"] == "span":
                for key, value in record["counters"].items():
                    counters[key] += value
        assert counters["kernel.intern.transported"] == 1
        assert counters["kernel.cache.miss"] == 0

    def test_transport_requires_memoized_fingerprint(self):
        """Without a canonical-form memo the probe must stay silent —
        it never computes fingerprints (that would fire budget
        checkpoints mid-interning)."""
        problem = mis_problem(3)
        canonical_form(problem)
        KernelProblem.of(problem)
        renamed = _renamed_copy(problem, {"M": "Z2", "P": "Z0", "O": "Z1"})
        # No canonical_form(renamed): fingerprint memo is cold.
        tracer = Tracer()
        with tracing(tracer):
            KernelProblem.of(renamed)
        counters: dict = defaultdict(int)
        for record in tracer.finish():
            if record["type"] == "span":
                for key, value in record["counters"].items():
                    counters[key] += value
        assert counters["kernel.intern.transported"] == 0
        assert counters["kernel.cache.miss"] == 1

    def test_transported_view_equals_fresh_build(self):
        """Every transported artifact matches a from-scratch interning
        of the renamed problem exactly."""
        rng = random.Random(97)
        for mapping in (
            {"M": "Z2", "P": "Z0", "O": "Z1"},
            {"M": "A", "P": "C", "O": "B"},
        ):
            transport_registry().clear()
            problem = mis_problem(3)
            canonical_form(problem)
            source = KernelProblem.of(problem)
            # Warm the source's lazy artifacts so they all transport.
            source.galois_closed_sets()
            source.node_right_closed_sets()
            source.node_ge_masks()
            source.edge_ge_masks()
            source.node_prefix_closure()
            source.node_dfs_machine()
            renamed = _renamed_copy(problem, mapping)
            canonical_form(renamed)
            transported = KernelProblem.of(renamed)
            fresh = KernelProblem(renamed)
            assert transported.n == fresh.n
            assert transported.delta == fresh.delta
            assert transported.compat == fresh.compat
            assert transported.node_configs == fresh.node_configs
            assert (
                transported.galois_closed_sets()
                == fresh.galois_closed_sets()
            )
            assert (
                transported.node_right_closed_sets()
                == fresh.node_right_closed_sets()
            )
            assert transported.node_ge_masks() == fresh.node_ge_masks()
            assert transported.edge_ge_masks() == fresh.edge_ge_masks()
            assert (
                transported.node_prefix_closure()
                == fresh.node_prefix_closure()
            )
            assert transported.node_dfs_machine() == fresh.node_dfs_machine()
            universe = (1 << fresh.n) - 1
            for _ in range(30):
                mask = rng.getrandbits(fresh.n) & universe
                assert transported.partner(mask) == fresh.partner(mask)


def _per_step_counters(records: list[dict]) -> list[dict]:
    """Counter totals per ``op.self_reduce`` span (descendants summed),
    in execution order."""
    spans = [r for r in records if r["type"] == "span"]
    parent = {s["id"]: s["parent"] for s in spans}
    step_ids = sorted(
        s["id"] for s in spans if s["name"] == "op.self_reduce"
    )
    owners = set(step_ids)

    def owner_of(span_id):
        while span_id is not None:
            if span_id in owners:
                return span_id
            span_id = parent.get(span_id)
        return None

    totals: dict = {sid: defaultdict(int) for sid in step_ids}
    for span in spans:
        owner = owner_of(span["id"])
        if owner is None:
            continue
        for key, value in span["counters"].items():
            totals[owner][key] += value
    return [totals[sid] for sid in step_ids]


class TestChainTransport:
    def test_three_step_chain_transports_and_stops_missing(self):
        """A 3-step self-reduction chain on the sinkless-orientation
        fixed point: condensed iterates are renamed-isomorphic, so
        every step after the first transports at least one interned
        bundle, the per-step Galois miss count never grows past step
        1's, and the fully-warm final step recomputes nothing."""
        tracer = Tracer()
        with tracing(tracer):
            current = condense_problem(
                sinkless_orientation_problem(3), use_kernel=True
            )
            for _ in range(3):
                current = self_reduce(current, use_kernel=True).problem
        steps = _per_step_counters(tracer.finish())
        assert len(steps) == 3
        transported = sum(s["kernel.intern.transported"] for s in steps)
        assert transported >= 1
        for later in steps[1:]:
            assert later["kernel.intern.transported"] >= 1
            assert (
                later["galois.cache.miss"] <= steps[0]["galois.cache.miss"]
            )
        assert steps[-1]["galois.cache.miss"] == 0

    def test_condense_never_misses_after_first_step(self):
        """The condensed (canonicalized) iterates are exactly the
        transport-eligible problems: no ``op.condense`` span after the
        first chain step records a Galois lattice miss."""
        tracer = Tracer()
        with tracing(tracer):
            current = condense_problem(
                sinkless_orientation_problem(3), use_kernel=True
            )
            for _ in range(3):
                current = self_reduce(current, use_kernel=True).problem
        records = tracer.finish()
        spans = [r for r in records if r["type"] == "span"]
        step_ids = sorted(
            s["id"] for s in spans if s["name"] == "op.self_reduce"
        )
        first_step = step_ids[0]
        for span in spans:
            if span["name"] != "op.condense":
                continue
            if span["id"] <= first_step:
                continue
            assert span["counters"].get("galois.cache.miss", 0) == 0
