"""Fault-injection harness for the robustness subsystem.

A :class:`FaultInjector` is a :class:`~repro.robustness.budget.Budget`
probe: the budget calls it with a context dict at every cooperative
checkpoint, and after ``trip_at`` calls it raises
:class:`InjectedFault` — simulating a crash, an OOM kill, or a signal
landing in the middle of the engine's hot loops.  Because every
governed loop in the engine runs through ``Budget.checkpoint``, this
exercises the same interruption points a real failure would hit.

:class:`InjectedFault` deliberately subclasses :class:`ReproError`
*only* (not ``ValueError``): the certificate builder's raise-free
wrapper swallows ``ValueError`` for proof-level checks, and an
injected fault must never be mistaken for a failed proof — it has to
propagate to the harness that injected it.

:func:`corrupt_checkpoint` flips a byte in a checkpoint file so tests
can assert that damaged state is detected (sealed digests), discarded,
and recomputed rather than trusted.

The *process-level* injectors target the shard scheduler
(:mod:`repro.core.kernel.sharding`) through its ``worker_probe`` hook,
which fires inside the worker process before each shard attempt:

* :class:`WorkerKiller` SIGKILLs the worker outright — the real
  OOM-killer/segfault scenario that used to hang ``pool.imap``
  forever.  Keyed on the dispatch ``seq`` and (by default) first
  attempts only, so retries of the same shard survive and the run
  terminates.
* :class:`AllocationCap` raises ``MemoryError`` for any shard whose
  size estimate exceeds a byte threshold, driving the scheduler's
  split ladder until shards fit.
* :class:`StallInjector` sleeps past the shard deadline, simulating a
  wedged (not dead) worker so the supervision kill path is exercised.

All three are picklable module-level classes (they cross the process
boundary inside the task tuple under the ``fork`` start method).
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Iterable
from pathlib import Path

from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded, ReproError


class InjectedFault(ReproError):
    """A deliberate failure raised from inside a cooperative checkpoint."""


class FaultInjector:
    """A budget probe that raises after a fixed number of checkpoints.

    Attributes:
        trip_at: the 1-based checkpoint call on which to raise; ``None``
            never trips (pure call counter).
        calls: how many times the probe has fired so far.
        contexts: the context dict of each call, for assertions on
            where the engine actually checkpoints.
        exception_type: what to raise at the trip — default
            :class:`InjectedFault` (an anonymous crash); pass
            :class:`~repro.robustness.errors.BudgetExceeded` to
            simulate a budget trip at an exact checkpoint, which
            callers that catch-and-resume budget failures will handle
            gracefully rather than propagate.
    """

    def __init__(
        self,
        trip_at: int | None = None,
        *,
        exception_type: type[ReproError] = InjectedFault,
    ):
        self.trip_at = trip_at
        self.calls = 0
        self.contexts: list[dict] = []
        self.exception_type = exception_type

    def __call__(self, context: dict) -> None:
        self.calls += 1
        self.contexts.append(dict(context))
        if self.trip_at is not None and self.calls >= self.trip_at:
            raise self.exception_type(
                "injected fault",
                call=self.calls,
                trip_at=self.trip_at,
                **{
                    key: value
                    for key, value in context.items()
                    if isinstance(value, (int, float, str, bool))
                },
            )


def tripping_budget(trip_at: int, **budget_fields) -> tuple[Budget, FaultInjector]:
    """A budget whose probe raises on the ``trip_at``-th checkpoint."""
    injector = FaultInjector(trip_at=trip_at)
    return Budget(probe=injector, **budget_fields), injector


def budget_tripping_budget(
    trip_at: int, **budget_fields
) -> tuple[Budget, FaultInjector]:
    """A budget whose probe raises ``BudgetExceeded`` at a checkpoint.

    Unlike :func:`tripping_budget`'s anonymous crash, this simulates a
    *typed* budget failure landing at an exactly chosen checkpoint —
    deterministic fuel for testing checkpoint/resume paths that treat
    ``BudgetExceeded`` as a graceful stop.
    """
    injector = FaultInjector(trip_at=trip_at, exception_type=BudgetExceeded)
    return Budget(probe=injector, **budget_fields), injector


def counting_budget(**budget_fields) -> tuple[Budget, FaultInjector]:
    """A budget that only counts checkpoints, never raising."""
    injector = FaultInjector(trip_at=None)
    return Budget(probe=injector, **budget_fields), injector


class WorkerKiller:
    """A worker probe that SIGKILLs the process on chosen dispatches.

    Attributes:
        kill_seqs: the scheduler dispatch sequence numbers to die on.
            Every dispatch (including each retry) gets a fresh ``seq``,
            so a fixed set of seqs yields a fixed number of deaths.
        only_first_attempt: kill only ``attempt == 0`` dispatches
            (the default) — retried shards then survive, guaranteeing
            the run terminates with exactly ``len(kill_seqs)`` deaths
            (for seqs that are actually dispatched).
    """

    def __init__(
        self, kill_seqs: Iterable[int], *, only_first_attempt: bool = True
    ):
        self.kill_seqs = frozenset(kill_seqs)
        self.only_first_attempt = only_first_attempt

    def __call__(self, context: dict) -> None:
        if self.only_first_attempt and context.get("attempt", 0) != 0:
            return
        if context.get("seq") in self.kill_seqs:
            os.kill(os.getpid(), signal.SIGKILL)


class AllocationCap:
    """A worker probe that OOMs any shard estimated past a threshold.

    Raises ``MemoryError`` (the scheduler's cue to *split*, not retry —
    rerunning an identical oversized shard would just OOM again) until
    shard estimates fall to ``max_bytes`` or below.
    """

    def __init__(self, max_bytes: int):
        self.max_bytes = max_bytes

    def __call__(self, context: dict) -> None:
        estimate = context.get("estimate", 0)
        if estimate > self.max_bytes:
            raise MemoryError(
                f"injected allocation cap: shard estimate {estimate} "
                f"exceeds {self.max_bytes} bytes"
            )


class StallInjector:
    """A worker probe that wedges (sleeps) on chosen dispatches.

    Unlike :class:`WorkerKiller` the process stays alive, so only the
    scheduler's shard *deadline* can detect it — this is the probe for
    the supervised-timeout kill path.  Sleeps well past any test
    deadline; the scheduler SIGKILLs the wedged worker, so the sleep
    never actually completes.
    """

    def __init__(
        self,
        stall_seqs: Iterable[int],
        *,
        seconds: float = 60.0,
        only_first_attempt: bool = True,
    ):
        self.stall_seqs = frozenset(stall_seqs)
        self.seconds = seconds
        self.only_first_attempt = only_first_attempt

    def __call__(self, context: dict) -> None:
        if self.only_first_attempt and context.get("attempt", 0) != 0:
            return
        if context.get("seq") in self.stall_seqs:
            time.sleep(self.seconds)


def corrupt_checkpoint(path: str | Path, offset: int = -2) -> None:
    """Flip one byte of a checkpoint file, invalidating its seal.

    The default offset damages the tail of the JSON document (inside
    the payload for any non-trivial checkpoint), which the sealed
    digest must catch.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
