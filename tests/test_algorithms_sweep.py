"""Tests for the color-class sweep algorithms (MIS and k-ODS)."""

import random

import pytest

from repro.algorithms.color_reduction import run_full_coloring_pipeline
from repro.algorithms.greedy import greedy_coloring
from repro.algorithms.sweep import run_kods_sweep, run_mis_sweep
from repro.algorithms.trees import (
    depths,
    orient_toward_parent,
    parent_ports,
    root_tree,
)
from repro.sim.generators import (
    cycle_graph,
    path_graph,
    random_tree,
    random_tree_bounded_degree,
    truncated_regular_tree,
)
from repro.sim.verifiers import (
    verify_k_outdegree_dominating_set,
    verify_mis,
)


class TestTreeUtilities:
    def test_root_tree_parents(self):
        graph = path_graph(4)
        parent = root_tree(graph, 0)
        assert parent == [None, 0, 1, 2]

    def test_parent_ports_consistent(self):
        graph = truncated_regular_tree(3, 2)
        ports = parent_ports(graph, 0)
        parent = root_tree(graph, 0)
        for node in range(1, graph.n):
            assert graph.neighbor(node, ports[node]) == parent[node]
        assert ports[0] is None

    def test_root_tree_rejects_non_tree(self):
        with pytest.raises(ValueError):
            root_tree(cycle_graph(4))

    def test_orient_toward_parent_outdegree(self):
        graph = random_tree(40, random.Random(4))
        orientation = orient_toward_parent(graph, 0)
        outdegree = [0] * graph.n
        for edge_id, u, v in graph.edges():
            head = orientation[edge_id]
            tail = u if head == v else v
            outdegree[tail] += 1
        assert outdegree[0] == 0
        assert all(value <= 1 for value in outdegree)

    def test_depths(self):
        graph = path_graph(5)
        assert depths(graph, 0) == [0, 1, 2, 3, 4]


class TestMisSweep:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_mis(self, seed):
        graph = random_tree_bounded_degree(70, 4, random.Random(seed))
        colors = greedy_coloring(graph)
        palette = max(colors) + 1
        result = run_mis_sweep(graph, colors, palette)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok

    def test_round_count_equals_palette(self):
        graph = truncated_regular_tree(4, 3)
        colors = greedy_coloring(graph)
        palette = max(colors) + 1
        result = run_mis_sweep(graph, colors, palette)
        assert result.rounds == palette

    def test_with_distributed_coloring(self):
        graph = truncated_regular_tree(3, 4)
        colors, _ = run_full_coloring_pipeline(graph)
        result = run_mis_sweep(graph, colors, max(colors) + 1)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok


class TestKodsSweep:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_valid_kods_on_trees(self, k):
        graph = random_tree_bounded_degree(80, 5, random.Random(k))
        colors = greedy_coloring(graph)
        palette = max(colors) + 1
        result = run_kods_sweep(graph, colors, palette, k)
        check = verify_k_outdegree_dominating_set(
            graph, result.selected, result.orientation, k=max(k, 0)
        )
        assert check.ok, check.violations

    def test_rounds_shrink_with_k(self):
        from repro.algorithms.trees import spread_tree_coloring

        graph = truncated_regular_tree(6, 2)
        palette = 7
        colors = spread_tree_coloring(graph, palette)
        rounds = [
            run_kods_sweep(graph, colors, palette, k).rounds for k in (0, 1, 2, 5)
        ]
        assert rounds[0] == palette
        assert all(b <= a for a, b in zip(rounds, rounds[1:]))
        assert rounds[-1] <= rounds[0] // 2

    def test_spread_coloring_proper_and_wide(self):
        from repro.algorithms.trees import spread_tree_coloring
        from repro.sim.verifiers import verify_proper_coloring

        graph = truncated_regular_tree(5, 3)
        colors = spread_tree_coloring(graph, 6)
        assert verify_proper_coloring(graph, colors).ok
        assert len(set(colors)) == 6

    def test_spread_coloring_rejects_small_palette(self):
        from repro.algorithms.trees import spread_tree_coloring

        with pytest.raises(ValueError):
            spread_tree_coloring(truncated_regular_tree(4, 2), 3)

    def test_k_zero_matches_mis_sweep(self):
        graph = random_tree(50, random.Random(8))
        colors = greedy_coloring(graph)
        palette = max(colors) + 1
        kods = run_kods_sweep(graph, colors, palette, 0)
        mis = run_mis_sweep(graph, colors, palette)
        selected = {node for node in range(graph.n) if mis.outputs[node]}
        assert kods.selected == selected

    def test_negative_k_rejected(self):
        graph = path_graph(4)
        with pytest.raises(ValueError):
            run_kods_sweep(graph, [0, 1, 0, 1], 2, -1)

    def test_groups_count(self):
        graph = truncated_regular_tree(5, 2)
        colors = greedy_coloring(graph)
        palette = max(colors) + 1
        result = run_kods_sweep(graph, colors, palette, 2)
        assert result.groups == (palette + 2) // 3
