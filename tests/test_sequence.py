"""Tests for the Lemma 13 chain and its arithmetic."""

import pytest

from repro.lowerbound.sequence import (
    lemma13_chain,
    max_k_for_logdelta_bound,
    sequence_length,
    verify_chain_arithmetic,
)


class TestChainConstruction:
    def test_starts_at_pi_delta_delta_x(self):
        chain = lemma13_chain(64, 0)
        assert chain[0].a == 64 and chain[0].x == 0

    def test_parameters_follow_the_recurrence(self):
        chain = lemma13_chain(2**9, 0)
        for step in chain:
            assert step.a == 2**9 // (2 ** (3 * step.index))
            assert step.x == step.index

    def test_arithmetic_verified(self):
        for delta in (2**6, 2**9, 2**12, 1000):
            assert verify_chain_arithmetic(lemma13_chain(delta, 0))

    def test_arithmetic_verified_with_k(self):
        assert verify_chain_arithmetic(lemma13_chain(2**12, 3))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lemma13_chain(0, 0)
        with pytest.raises(ValueError):
            lemma13_chain(8, -1)


class TestChainLength:
    def test_grows_logarithmically(self):
        """The chain length is Theta(log Delta): within constant factors
        of (log2 Delta) / 3 — the Omega(log Delta) of the paper."""
        for exponent in (6, 9, 12, 15, 18):
            delta = 2**exponent
            length = sequence_length(delta, 0)
            assert length >= exponent / 3 - 2
            assert length <= exponent

    def test_monotone_in_delta(self):
        lengths = [sequence_length(2**e, 0) for e in range(3, 16)]
        assert all(b >= a for a, b in zip(lengths, lengths[1:]))

    def test_decreasing_in_k(self):
        delta = 2**12
        lengths = [sequence_length(delta, k) for k in (0, 1, 4, 16, 64, 256)]
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))

    def test_large_k_kills_the_bound(self):
        """For k near Delta the chain collapses — matching the
        k <= Delta^epsilon hypothesis of Theorem 1."""
        delta = 2**10
        assert sequence_length(delta, 0) >= 2
        assert sequence_length(delta, delta // 2) == 0

    def test_small_delta(self):
        assert sequence_length(1, 0) == 0
        assert sequence_length(4, 0) >= 0

    def test_threshold_k(self):
        delta = 2**12
        threshold = max_k_for_logdelta_bound(delta)
        assert 1 <= threshold < delta
        # The threshold indeed behaves like a power of Delta: it is far
        # above constant and far below linear.
        assert threshold >= delta ** 0.2
        assert threshold <= delta ** 0.9


class TestZeroRoundEndpoint:
    def test_every_chain_member_is_hard(self):
        from repro.core.solvability import zero_round_solvable_symmetric

        for step in lemma13_chain(2**7, 1):
            assert not zero_round_solvable_symmetric(step.problem)
