"""Tests for Cole-Vishkin and the Linial / slow color reductions."""

import random

import pytest

from repro.algorithms.cole_vishkin import cv_iterations, run_cole_vishkin
from repro.algorithms.color_reduction import (
    linial_palette_size,
    linial_parameters,
    linial_step_color,
    reduction_schedule,
    run_full_coloring_pipeline,
    run_linial_reduction,
    run_slow_color_reduction,
)
from repro.analysis.bounds import log_star
from repro.sim.generators import (
    path_graph,
    random_tree,
    random_tree_bounded_degree,
    truncated_regular_tree,
)
from repro.sim.verifiers import verify_proper_coloring


class TestColeVishkin:
    @pytest.mark.parametrize("seed", range(4))
    def test_three_coloring_on_random_trees(self, seed):
        graph = random_tree(60, random.Random(seed))
        result = run_cole_vishkin(graph)
        assert verify_proper_coloring(graph, result.outputs).ok
        assert set(result.outputs) <= {0, 1, 2}

    def test_on_regular_tree(self):
        graph = truncated_regular_tree(3, 4)
        result = run_cole_vishkin(graph)
        assert verify_proper_coloring(graph, result.outputs).ok

    def test_on_path(self):
        graph = path_graph(40)
        result = run_cole_vishkin(graph)
        assert verify_proper_coloring(graph, result.outputs).ok
        assert set(result.outputs) <= {0, 1, 2}

    def test_round_count_is_logstar_plus_constant(self):
        graph = path_graph(200)
        result = run_cole_vishkin(graph)
        assert result.rounds == cv_iterations(200) + 6
        assert result.rounds <= log_star(200) + 10

    def test_cv_iterations_growth(self):
        """cv_iterations grows like log*: tiny even for tower inputs."""
        assert cv_iterations(6) == 0
        assert cv_iterations(2**16) <= 5
        assert cv_iterations(2**64) <= 6

    def test_single_node(self):
        from repro.sim.graph import Graph

        result = run_cole_vishkin(Graph(1))
        assert result.outputs == [0]

    def test_two_nodes(self):
        result = run_cole_vishkin(path_graph(2))
        assert len(set(result.outputs)) == 2


class TestLinialParameters:
    def test_q_exceeds_d_delta(self):
        for m in (100, 10_000, 10**6):
            for delta in (3, 10, 50):
                q, d = linial_parameters(m, delta)
                assert q >= d * delta + 1
                assert q ** (d + 1) >= m

    def test_palette_shrinks_for_large_m(self):
        assert linial_palette_size(10**6, 4) < 10**6

    def test_schedule_reaches_fixed_point(self):
        sizes = reduction_schedule(10**6, 4)
        assert sizes[0] == 10**6
        assert all(b < a for a, b in zip(sizes, sizes[1:]))
        # Fixed point is polynomial in Delta, independent of m:
        assert sizes[-1] <= (4 * 4 + 20) ** 2

    def test_step_color_proper(self):
        m, delta = 1000, 3
        # A node colored 17 with neighbors 42, 999, 0:
        color = linial_step_color(17, [42, 999, 0], m, delta)
        assert 0 <= color < linial_palette_size(m, delta)


class TestLinialOnGraphs:
    @pytest.mark.parametrize("seed", range(3))
    def test_reduction_proper(self, seed):
        graph = random_tree_bounded_degree(60, 4, random.Random(seed))
        result = run_linial_reduction(graph)
        assert verify_proper_coloring(graph, result.outputs).ok

    def test_round_count_is_schedule_length(self):
        graph = random_tree_bounded_degree(60, 4, random.Random(0))
        result = run_linial_reduction(graph)
        assert result.rounds == len(reduction_schedule(60, 4)) - 1


class TestSlowReduction:
    def test_reduces_to_delta_plus_one(self):
        graph = random_tree_bounded_degree(50, 4, random.Random(2))
        linial = run_linial_reduction(graph)
        palette = reduction_schedule(50, 4)[-1]
        result = run_slow_color_reduction(graph, linial.outputs, palette)
        assert verify_proper_coloring(graph, result.outputs).ok
        assert max(result.outputs) <= graph.max_degree()

    def test_full_pipeline(self):
        graph = truncated_regular_tree(3, 4)
        colors, rounds = run_full_coloring_pipeline(graph)
        assert verify_proper_coloring(graph, colors).ok
        assert max(colors) <= 3
        assert rounds > 0

    def test_already_small_palette_is_zero_rounds(self):
        graph = path_graph(5)
        colors = [0, 1, 2, 0, 1]
        result = run_slow_color_reduction(graph, colors, palette=3)
        assert result.rounds == 0
        assert result.outputs == colors
