"""Tests for exhaustive deterministic-PN solvability on fixed instances."""

import pytest

from repro.problems.family import family_problem
from repro.problems.mis import mis_problem
from repro.sim.brute_force import (
    class_output_options,
    impossible_for_every_radius,
    solvability_radius,
    uniform_algorithm_exists,
    witness_labeling,
)
from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
)
from repro.sim.verifiers import verify_lcl


class TestOutputOptions:
    def test_full_degree_permutations(self):
        options = class_output_options(mis_problem(2), 2)
        assert ("M", "M") in options
        assert ("P", "O") in options and ("O", "P") in options
        assert len(options) == 3

    def test_lower_degree_unconstrained(self):
        options = class_output_options(mis_problem(2), 1)
        assert set(options) == {("M",), ("P",), ("O",)}


class TestMisOnPaths:
    def test_radius_zero_unsolvable(self):
        assert not uniform_algorithm_exists(mis_problem(2), path_graph(4), 0)

    def test_radius_one_solvable(self):
        assert uniform_algorithm_exists(mis_problem(2), path_graph(4), 1)

    def test_solvability_radius(self):
        assert solvability_radius(mis_problem(2), path_graph(4)) == 1

    def test_witness_is_valid(self):
        witness = witness_labeling(mis_problem(2), path_graph(4), 1)
        assert witness is not None
        assert verify_lcl(
            path_graph(4), mis_problem(2), witness,
            skip_non_full_degree_nodes=True,
        ).ok


class TestSymmetricInstances:
    """The Lemma 12 phenomenon, replayed on real networks."""

    @pytest.mark.parametrize("radius", [0, 1, 2])
    def test_family_unsolvable_on_cayley_at_any_radius(self, radius):
        problem = family_problem(2, 1, 1)
        graph = colored_port_cayley_graph(2)
        assert not uniform_algorithm_exists(problem, graph, radius)

    def test_impossibility_certificate(self):
        problem = family_problem(3, 2, 1)
        graph = colored_port_cayley_graph(3)
        assert impossible_for_every_radius(problem, graph)

    def test_certificate_needs_symmetry(self):
        problem = family_problem(2, 1, 1)
        assert not impossible_for_every_radius(problem, path_graph(4))

    def test_certificate_needs_hard_problem(self):
        # Pi(delta, 0, delta) is 0-round solvable (all-X): no certificate.
        problem = family_problem(3, 0, 3)
        graph = colored_port_cayley_graph(3)
        assert not impossible_for_every_radius(problem, graph)

    def test_mis_unsolvable_on_symmetric_cycle(self):
        """A cycle with symmetric ports also defeats uniform algorithms
        when its classes stay merged."""
        problem = mis_problem(2)
        graph = colored_port_cayley_graph(2)  # the 4-cycle, symmetric ports
        assert not uniform_algorithm_exists(problem, graph, 1)


class TestSearchGuard:
    def test_limit_enforced(self):
        problem = family_problem(3, 2, 1)
        graph = cycle_graph(12)
        with pytest.raises(RuntimeError):
            uniform_algorithm_exists(problem, graph, 2, limit=10)
