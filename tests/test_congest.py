"""Tests for the CONGEST model: bit accounting and algorithm fit."""

import random

import pytest

from repro.algorithms.luby import LubyMIS
from repro.sim.generators import path_graph, random_tree_bounded_degree
from repro.sim.runtime import (
    Algorithm,
    MessageTooLargeError,
    estimate_message_bits,
    run,
)
from repro.sim.verifiers import verify_mis


class TestBitEstimation:
    def test_none_is_free(self):
        assert estimate_message_bits(None) == 0

    def test_bool(self):
        assert estimate_message_bits(True) == 1

    def test_int_scales_with_magnitude(self):
        assert estimate_message_bits(1) <= 3
        assert estimate_message_bits(2**40) >= 41

    def test_float(self):
        assert estimate_message_bits(3.14) == 64

    def test_string(self):
        assert estimate_message_bits("hello") == 40

    def test_containers(self):
        assert estimate_message_bits((1, 2)) > estimate_message_bits(1)
        assert estimate_message_bits({"a": 1}) > 8

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_message_bits(object())


class TestCongestRuns:
    class SendId(Algorithm):
        def send(self):
            return {port: self.view.id for port in range(self.view.degree)}

        def receive(self, messages):
            self.seen = sorted(messages.values())
            return True

        def output(self):
            return self.seen

    class SendHuge(Algorithm):
        def send(self):
            return {port: "x" * 10_000 for port in range(self.view.degree)}

        def receive(self, messages):
            return True

        def output(self):
            return None

    def test_ids_available_in_congest(self):
        result = run(path_graph(3), self.SendId, model="CONGEST")
        assert result.outputs[1] == [0, 2]

    def test_small_messages_pass(self):
        run(path_graph(5), self.SendId, model="CONGEST")

    def test_huge_messages_rejected(self):
        with pytest.raises(MessageTooLargeError):
            run(path_graph(3), self.SendHuge, model="CONGEST")

    def test_custom_budget(self):
        with pytest.raises(MessageTooLargeError):
            run(path_graph(3), self.SendId, model="CONGEST", message_bits=1)

    def test_local_unbounded(self):
        run(path_graph(3), self.SendHuge, model="LOCAL")

    def test_luby_fits_in_congest(self):
        """Luby's messages are one float + one bool: O(1) words."""
        graph = random_tree_bounded_degree(60, 4, random.Random(0))
        result = run(graph, LubyMIS, model="CONGEST", seed=1)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok
