"""Integration tests: the proof pipeline and the simulator, end to end."""

import random

import pytest

from repro.algorithms.cole_vishkin import run_cole_vishkin
from repro.algorithms.sweep import run_kods_sweep
from repro.core.round_elimination import speedup
from repro.core.solvability import zero_round_solvable_symmetric
from repro.lowerbound.lemma5 import verify_lemma5
from repro.lowerbound.lemma6 import verify_lemma6
from repro.lowerbound.lemma8 import verify_lemma8_argument, verify_lemma8_direct
from repro.lowerbound.lemma9 import verify_lemma9
from repro.lowerbound.lemma11 import verify_lemma11
from repro.lowerbound.lift import lower_bound_summary, verify_theorem14_premises
from repro.lowerbound.sequence import lemma13_chain, verify_chain_arithmetic
from repro.problems.family import family_problem
from repro.sim.generators import (
    complete_bipartite_graph,
    truncated_regular_tree,
)
from repro.sim.verifiers import verify_k_outdegree_dominating_set


class TestFullProofPipeline:
    """Every lemma of Section 3, chained, for one concrete Delta."""

    def test_delta_four_end_to_end(self):
        delta, a, x = 4, 3, 1
        # Lemma 6: the engine reproduces the normal form of R(Pi).
        assert verify_lemma6(delta, a, x)
        # Lemma 8: full Rbar(R(Pi)) relaxes into Pi_rel.
        assert verify_lemma8_direct(delta, a, x)
        # Lemma 8's symbolic argument agrees.
        assert verify_lemma8_argument(delta, a, x).ok
        # Lemma 9: convert an actual Pi+ solution (a >= 2x+1 holds).
        graph = complete_bipartite_graph(delta)
        labeling = {}
        for node in range(delta):
            for port in range(delta):
                labeling[(node, port)] = "C" if port >= x else "X"
        for node in range(delta, 2 * delta):
            for port in range(delta):
                labeling[(node, port)] = "A" if port < a - x - 1 else "X"
        assert verify_lemma9(graph, labeling, delta, a, x).ok
        # Lemma 11: monotone relaxation exists toward the next chain step.
        assert verify_lemma11(delta, a, x, 1, x + 1)
        # Lemma 12: nothing in range is 0-round solvable.
        assert not zero_round_solvable_symmetric(family_problem(delta, a, x))

    def test_chain_lift_consistency(self):
        delta = 2**9
        chain = lemma13_chain(delta, 0)
        assert verify_chain_arithmetic(chain)
        premises = verify_theorem14_premises(chain)
        assert premises.ok
        summary = lower_bound_summary(2**64, delta, 0)
        assert summary["deterministic_rounds"] <= premises.chain_length
        assert summary["randomized_rounds"] <= summary["deterministic_rounds"]

    @pytest.mark.slow
    def test_speedup_of_family_not_zero_round_trivial(self):
        """Rbar(R(Pi_Delta(a, x))) itself is still not 0-round solvable —
        the sequence does not collapse after one step."""
        problem = family_problem(4, 3, 1)
        stepped = speedup(problem).problem
        assert not zero_round_solvable_symmetric(stepped)


class TestSimulatorToProofBridge:
    """Distributed outputs feed the proof-side conversions."""

    def test_sweep_kods_into_lemma5_labeling(self):
        graph = truncated_regular_tree(5, 3)
        coloring = run_cole_vishkin(graph)
        for k in (0, 1, 2):
            sweep = run_kods_sweep(graph, coloring.outputs, 3, k)
            assert verify_k_outdegree_dominating_set(
                graph, sweep.selected, sweep.orientation, k
            ).ok
            result = verify_lemma5(
                graph, sweep.selected, sweep.orientation, k, a=2
            )
            assert result.ok, result.violations

    def test_random_trees_roundtrip(self):
        for seed in range(3):
            graph = truncated_regular_tree(4, 3)
            coloring = run_cole_vishkin(graph)
            sweep = run_kods_sweep(graph, coloring.outputs, 3, 1, root=seed)
            assert verify_k_outdegree_dominating_set(
                graph, sweep.selected, sweep.orientation, 1
            ).ok

    def test_lower_bound_does_not_contradict_upper_bound(self):
        """The certified lower bound stays below the measured rounds of
        the (input-assisted) upper-bound algorithm only because that
        algorithm uses the rooting input — but both must be finite and
        the lower bound must not exceed the trivial Delta + log* n."""
        from repro.analysis.bounds import upper_bound_mis_bek

        summary = lower_bound_summary(2**30, 2**6, 0)
        assert summary["deterministic_rounds"] <= upper_bound_mis_bek(2**30, 2**6)
