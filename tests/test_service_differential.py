"""Differential gate: the HTTP path equals the in-process path.

For registered scenarios, a job submitted over a real socket must
produce *exactly* the document that rendering an in-process
:func:`repro.scenarios.run_scenario` outcome through the shared
:func:`repro.service.wire.render_result` does — same chain, same
certified rounds, same rendered problems, byte for byte — on both
engines.  Any drift means the service layer transformed a result
somewhere (serialization, caching transport, threading), which is
exactly the class of bug a wire boundary breeds.

The quick-gate scenarios run unmarked; the full-registry sweep is
``slow``-marked alongside the other exhaustive differential suites.
"""

import json
import urllib.request

import pytest

from repro.core.io import canonical_json
from repro.scenarios import load_registry, run_scenario
from repro.service import ReproService
from repro.service.wire import render_result

REGISTRY = load_registry()
QUICK = [(decl, spec) for decl, spec in REGISTRY if decl.quick]
QUICK_IDS = [spec.name for _, spec in QUICK]
FULL_IDS = [spec.name for _, spec in REGISTRY]

ENGINES = ("reference", "kernel")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    with ReproService(
        tmp_path_factory.mktemp("service-jobs"), port=0, workers=2
    ) as running:
        yield running


def run_over_http(service, scenario: str, engine: str) -> dict:
    request = urllib.request.Request(
        service.url + "/v1/jobs",
        data=json.dumps({"scenario": scenario, "engine": engine}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        job_id = json.loads(response.read())["job_id"]
    assert service.orchestrator.wait(job_id, timeout=300)
    with urllib.request.urlopen(
        service.url + f"/v1/jobs/{job_id}", timeout=60
    ) as response:
        document = json.loads(response.read())
    assert document["state"] == "done", document.get("error")
    return dict(document["result"])


def run_in_process(spec, engine: str) -> dict:
    run = run_scenario(spec, use_kernel=engine == "kernel")
    return render_result(
        run.problems,
        run.reached_fixed_point,
        run.certified_rounds,
        run.failures,
    )


def assert_documents_equal(over_http: dict, in_process: dict) -> None:
    # Compare canonical bytes, not just structures: the wire layer must
    # not perturb numbers, ordering, or label renderings in any way.
    assert canonical_json(over_http) == canonical_json(in_process)


class TestQuickScenarios:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("decl, spec", QUICK, ids=QUICK_IDS)
    def test_http_equals_in_process(self, service, decl, spec, engine):
        assert_documents_equal(
            run_over_http(service, spec.name, engine),
            run_in_process(spec, engine),
        )


@pytest.mark.slow
class TestFullRegistry:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("decl, spec", REGISTRY, ids=FULL_IDS)
    def test_http_equals_in_process(self, service, decl, spec, engine):
        assert_documents_equal(
            run_over_http(service, spec.name, engine),
            run_in_process(spec, engine),
        )
