"""End-to-end tests of the HTTP service over a real socket.

Every test here talks to a genuine :class:`repro.service.ReproService`
bound to an ephemeral localhost port with plain ``urllib`` — no test
client shims — so the full stack is exercised: routing, JSON bodies,
the worker threads, the ambient budget/cache/tracer contexts, and the
sealed job store.  The four pillars:

* the full job lifecycle, submission through terminal document and the
  live JSON-lines event stream;
* concurrent *isomorphic* submissions dedup to one computation — the
  duplicate replays through the warm renaming-invariant cache (zero
  ``cache.miss``) and still gets its result in its own label
  coordinates;
* a budget-exceeded job surfaces as a typed ``BudgetExceeded`` inside
  a structured ``422`` body, not as a dead worker;
* killing the server and restarting over the same job directory
  re-serves a completed job's document byte-identically.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ReproService, computation_key, parse_job_request

#: The quick-gate scenario — the cheapest registered chain.
SCENARIO = "maximal-matching2-selfreduce"

#: Maximal matching on 3-regular trees, in the inline text format.
MATCHING = "M U U\nO P P\n\nM O\nP O\nP P\nU O\nU P\n"

#: The same problem under a label bijection (M,U,O,P -> X,Y,Z,W):
#: isomorphic, so it must share MATCHING's computation key.
MATCHING_RENAMED = "X Y Y\nZ W W\n\nX Z\nW Z\nW W\nY Z\nY W\n"


def get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def get_json(base, path):
    status, body = get(base, path)
    return status, json.loads(body)


def post_json(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def finish(service, job_id):
    """Wait for a job and return its (status, document)."""
    assert service.orchestrator.wait(job_id, timeout=120), "job never finished"
    return get_json(service.url, f"/v1/jobs/{job_id}")


@pytest.fixture
def service(tmp_path):
    with ReproService(tmp_path / "jobs", port=0, workers=2) as running:
        yield running


class TestLifecycle:
    def test_healthz_and_scenarios(self, service):
        status, health = get_json(service.url, "/v1/healthz")
        assert status == 200
        assert health["ok"] is True
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}
        status, listing = get_json(service.url, "/v1/scenarios")
        assert status == 200
        names = [row["name"] for row in listing["scenarios"]]
        assert SCENARIO in names
        quick = [row for row in listing["scenarios"] if row["quick"]]
        assert [row["name"] for row in quick] == [SCENARIO]

    def test_scenario_job_full_lifecycle(self, service):
        status, accepted = post_json(
            service.url, "/v1/jobs", {"scenario": SCENARIO}
        )
        assert status == 202
        assert accepted["state"] == "queued"
        assert accepted["key"].startswith("self-reduce-")
        status, document = finish(service, accepted["job_id"])
        assert status == 200
        assert document["state"] == "done"
        assert document["deduped"] is False
        result = document["result"]
        assert result["ok"] is True
        assert result["steps"] == 2
        assert result["certified_rounds"] == 3
        assert len(result["problems"]) == result["steps"] + 1
        assert document["counters"]["service.jobs"] == 1

    def test_event_stream_ends_with_terminal_state(self, service):
        _, accepted = post_json(service.url, "/v1/jobs", {"scenario": SCENARIO})
        job_id = accepted["job_id"]
        status, body = get(service.url, f"/v1/jobs/{job_id}/events")
        assert status == 200
        events = [json.loads(line) for line in body.splitlines() if line]
        assert events[0] == {
            "type": "job.state", "job": job_id, "state": "running",
        }
        assert events[-1] == {
            "type": "job.state", "job": job_id, "state": "done",
        }
        # The stream carries the real trace: the service.job span closed.
        spans = [e for e in events if e.get("type") == "span"]
        assert any(e["name"] == "service.job" for e in spans)

    def test_inline_problem_job(self, service):
        _, accepted = post_json(
            service.url,
            "/v1/jobs",
            {"problem": MATCHING, "operator": "speedup", "steps": 1},
        )
        status, document = finish(service, accepted["job_id"])
        assert status == 200
        assert document["state"] == "done"
        assert document["result"]["steps"] == 1
        # The rendered iterates are in the submission's own labels.
        assert document["result"]["problems"][0]["alphabet"] == [
            "M", "O", "P", "U",
        ]


class TestErrorPaths:
    def test_unknown_job_is_404(self, service):
        status, body = get_json(service.url, "/v1/jobs/absent")
        assert (status, body["type"]) == (404, "NotFound")

    def test_unknown_route_is_404(self, service):
        status, _ = get_json(service.url, "/v1/nope")
        assert status == 404

    def test_malformed_json_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/v1/jobs", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=60)
        assert caught.value.code == 400
        assert json.loads(caught.value.read())["type"] == "InvalidJobRequest"

    def test_unknown_scenario_is_400(self, service):
        status, body = post_json(
            service.url, "/v1/jobs", {"scenario": "no-such"}
        )
        assert (status, body["type"]) == (400, "InvalidScenario")

    def test_malformed_inline_problem_is_400(self, service):
        status, body = post_json(
            service.url,
            "/v1/jobs",
            {"problem": "", "operator": "speedup", "steps": 1},
        )
        assert status == 400
        assert body["type"] in ("InvalidJobRequest", "InvalidProblem")

    def test_budget_exceeded_is_structured_422(self, service):
        """A tripped budget is a typed API outcome, not a crash."""
        _, accepted = post_json(
            service.url,
            "/v1/jobs",
            {
                "problem": MATCHING,
                "operator": "speedup",
                "steps": 3,
                "budget": {"max_configurations": 1},
            },
        )
        status, document = finish(service, accepted["job_id"])
        assert status == 422
        assert document["state"] == "failed"
        assert document["result"] is None
        assert document["error"]["type"] == "BudgetExceeded"
        assert "configuration budget" in document["error"]["message"]
        assert document["counters"]["service.errors"] == 1


class TestDedup:
    def test_isomorphic_requests_share_a_computation_key(self):
        plain = parse_job_request(
            {"problem": MATCHING, "operator": "speedup", "steps": 2}
        )
        renamed = parse_job_request(
            {"problem": MATCHING_RENAMED, "operator": "speedup", "steps": 2}
        )
        assert computation_key(plain) == computation_key(renamed)

    def test_concurrent_isomorphic_submissions_compute_once(self, service):
        """Two isomorphic jobs racing on two workers: exactly one chain
        computation, counter-asserted; the duplicate replays through the
        warm cache and gets its result in its own coordinates."""
        _, first = post_json(
            service.url,
            "/v1/jobs",
            {"problem": MATCHING, "operator": "speedup", "steps": 2},
        )
        _, second = post_json(
            service.url,
            "/v1/jobs",
            {"problem": MATCHING_RENAMED, "operator": "speedup", "steps": 2},
        )
        assert first["key"] == second["key"]
        _, doc_a = finish(service, first["job_id"])
        _, doc_b = finish(service, second["job_id"])
        assert doc_a["state"] == doc_b["state"] == "done"

        flags = sorted((doc_a["deduped"], doc_b["deduped"]))
        assert flags == [False, True], "exactly one job must be the primary"
        primary, replay = (
            (doc_a, doc_b) if doc_b["deduped"] else (doc_b, doc_a)
        )
        assert replay["deduped_from"] == primary["job_id"]

        # One underlying computation: the primary took every cache miss,
        # the replay had none (pure warm-cache hits) and counted the dedup.
        assert primary["counters"]["cache.miss"] > 0
        assert replay["counters"].get("cache.miss", 0) == 0
        assert replay["counters"]["cache.hit"] > 0
        assert replay["counters"]["service.dedup"] == 1
        assert "service.dedup" not in primary["counters"]

        # Same chain shape, each in its submission's own coordinates.
        for field in ("steps", "certified_rounds", "alphabet_sizes"):
            assert primary["result"][field] == replay["result"][field]
        assert primary["result"]["problems"][0]["alphabet"] != (
            replay["result"]["problems"][0]["alphabet"]
        )

    def test_duplicate_scenario_submission_is_deduped(self, service):
        _, first = post_json(service.url, "/v1/jobs", {"scenario": SCENARIO})
        _, doc_a = finish(service, first["job_id"])
        _, second = post_json(service.url, "/v1/jobs", {"scenario": SCENARIO})
        _, doc_b = finish(service, second["job_id"])
        assert doc_b["deduped"] is True
        assert doc_b["deduped_from"] == first["job_id"]
        assert doc_b["result"] == doc_a["result"]
        assert doc_b["counters"].get("cache.miss", 0) == 0


class TestRestart:
    def test_completed_job_reserved_byte_identically(self, tmp_path):
        """Kill the server, restart over the same directory, and the
        job document comes back byte-for-byte."""
        directory = tmp_path / "jobs"
        with ReproService(directory, port=0, workers=1) as service:
            _, accepted = post_json(
                service.url, "/v1/jobs", {"scenario": SCENARIO}
            )
            job_id = accepted["job_id"]
            assert service.orchestrator.wait(job_id, timeout=120)
            _, before = get(service.url, f"/v1/jobs/{job_id}")
        with ReproService(directory, port=0, workers=1) as service:
            _, after = get(service.url, f"/v1/jobs/{job_id}")
            assert after == before
            # A finished job needs no recovery re-run.
            assert service.orchestrator.resumed_jobs == 0

    def test_restart_resumes_queued_jobs(self, tmp_path):
        """A job persisted as queued (server killed before a worker ran
        it) is re-queued, run, and counted by the next server."""
        directory = tmp_path / "jobs"
        # workers=1 and a first job that holds the only worker briefly:
        # submit two, stop the server mid-flight, then restart.
        with ReproService(directory, port=0, workers=1) as service:
            _, first = post_json(
                service.url, "/v1/jobs", {"scenario": SCENARIO}
            )
            assert service.orchestrator.wait(first["job_id"], timeout=120)
            # Persist a fresh queued record the workers never see by
            # writing through the store (the orchestrator is live, so
            # simply not waiting would be racy).
            record = service.orchestrator.get(first["job_id"])
            from repro.service.jobs import JobRecord, new_job_id

            queued = JobRecord(
                job_id=new_job_id(), request=record.request, key=record.key
            )
            service.orchestrator.store.save(queued)
        with ReproService(directory, port=0, workers=1) as service:
            assert service.orchestrator.resumed_jobs == 1
            assert service.orchestrator.wait(queued.job_id, timeout=120)
            _, document = get_json(service.url, f"/v1/jobs/{queued.job_id}")
            assert document["state"] == "done"
            assert document["counters"]["service.resumed"] == 1
            # Recovery also repopulated the completed-key table, so the
            # resumed run dedups against the pre-restart primary and
            # replays its cached operators.
            assert document["deduped"] is True
            assert document["deduped_from"] == first["job_id"]
            assert document["counters"].get("cache.miss", 0) == 0
