"""Golden-file tests for the round-elimination operators.

Each golden under ``tests/golden/`` pins the canonical JSON of one full
speedup step ``Rbar(R(P))`` for a fixed input (MIS Delta=3 — the
paper's Fig. 1 chain start — sinkless orientation, and one
Pi_Delta(a, x) family instance).  The tests recompute the step with the
reference engine *and* the kernel fast path and require byte-for-byte
equality, failing with a unified diff.  Regenerate intentionally with
``PYTHONPATH=src python tools/regen_golden.py``.
"""

import difflib
import os
import sys

import pytest

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

from tools.regen_golden import GOLDEN_CASES, GOLDEN_DIR

from repro.core.io import problem_to_json
from repro.core.round_elimination import speedup

CASE_NAMES = sorted(GOLDEN_CASES)


def read_golden(name: str) -> str:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    assert os.path.exists(path), (
        f"missing golden {path} - run: PYTHONPATH=src python tools/regen_golden.py"
    )
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def assert_matches_golden(name: str, actual: str, engine: str) -> None:
    expected = read_golden(name)
    if actual == expected:
        return
    diff = "\n".join(
        difflib.unified_diff(
            expected.splitlines(),
            actual.splitlines(),
            fromfile=f"golden/{name}.json",
            tofile=f"computed ({engine})",
            lineterm="",
        )
    )
    pytest.fail(f"golden mismatch for {name} ({engine} engine):\n{diff}")


@pytest.mark.parametrize("name", CASE_NAMES)
def test_speedup_matches_golden_reference(name):
    problem = GOLDEN_CASES[name]()
    actual = problem_to_json(speedup(problem).problem) + "\n"
    assert_matches_golden(name, actual, "reference")


@pytest.mark.parametrize("name", CASE_NAMES)
def test_speedup_matches_golden_kernel(name):
    problem = GOLDEN_CASES[name]()
    actual = problem_to_json(speedup(problem, use_kernel=True).problem) + "\n"
    assert_matches_golden(name, actual, "kernel")


def test_goldens_are_current():
    """regen_golden would be a no-op: files on disk match the generator."""
    from tools.regen_golden import golden_text

    for name, factory in GOLDEN_CASES.items():
        assert read_golden(name) == golden_text(factory), (
            f"{name}.json is stale - run tools/regen_golden.py and review the diff"
        )
