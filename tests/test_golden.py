"""Golden-file tests for the round-elimination operators.

Each golden under ``tests/golden/`` pins the canonical JSON of one
operator application — a full speedup step ``Rbar(R(P))`` or the
Khoury-Schild self-reduction — for a fixed input: the static classics
(MIS Delta=3, sinkless orientation, one Pi_Delta(a, x) family
instance) plus one derived case per registered scenario with a fresh
golden name.  The tests recompute each case with the reference engine
*and* the kernel fast path and require byte-for-byte equality, failing
with a unified diff.  Regenerate intentionally with
``PYTHONPATH=src python tools/regen_golden.py``.
"""

import difflib
import os
import sys

import pytest

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

from tools.regen_golden import GOLDEN_CASES, GOLDEN_DIR, apply_operator

from repro.core.io import problem_to_json

CASE_NAMES = sorted(GOLDEN_CASES)


def read_golden(name: str) -> str:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    assert os.path.exists(path), (
        f"missing golden {path} - run: PYTHONPATH=src python tools/regen_golden.py"
    )
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def assert_matches_golden(name: str, actual: str, engine: str) -> None:
    expected = read_golden(name)
    if actual == expected:
        return
    diff = "\n".join(
        difflib.unified_diff(
            expected.splitlines(),
            actual.splitlines(),
            fromfile=f"golden/{name}.json",
            tofile=f"computed ({engine})",
            lineterm="",
        )
    )
    pytest.fail(f"golden mismatch for {name} ({engine} engine):\n{diff}")


@pytest.mark.parametrize("name", CASE_NAMES)
def test_operator_matches_golden_reference(name):
    factory, operator = GOLDEN_CASES[name]
    actual = problem_to_json(apply_operator(factory, operator)) + "\n"
    assert_matches_golden(name, actual, "reference")


@pytest.mark.parametrize("name", CASE_NAMES)
def test_operator_matches_golden_kernel(name):
    factory, operator = GOLDEN_CASES[name]
    actual = (
        problem_to_json(apply_operator(factory, operator, use_kernel=True))
        + "\n"
    )
    assert_matches_golden(name, actual, "kernel")


def test_goldens_are_current():
    """regen_golden would be a no-op: files on disk match the generator."""
    from tools.regen_golden import golden_text

    for name, (factory, operator) in GOLDEN_CASES.items():
        assert read_golden(name) == golden_text(factory, operator), (
            f"{name}.json is stale - run tools/regen_golden.py and review the diff"
        )


def test_no_orphaned_goldens():
    """Every committed golden file is referenced by a case."""
    from tools.regen_golden import _orphans

    assert _orphans(GOLDEN_CASES) == []


def test_every_scenario_golden_has_a_case():
    """Scenario golden declarations resolve into the case table."""
    from repro.scenarios import SCENARIOS

    for decl in SCENARIOS:
        assert decl.golden in GOLDEN_CASES, (
            f"scenario {decl.spec} declares golden {decl.golden!r} "
            "but no golden case produces it"
        )
