"""Tests for Lemma 5: from k-outdegree dominating sets to Pi_Delta(a, k)."""

import random

import pytest

from repro.lowerbound.lemma5 import labeling_from_kods, verify_lemma5
from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    random_tree_bounded_degree,
    truncated_regular_tree,
)


def greedy_mis(graph):
    selected = set()
    for node in range(graph.n):
        if all(neighbor not in selected for neighbor in graph.neighbors(node)):
            selected.add(node)
    return selected


class TestFromMis:
    """An MIS is a 0-outdegree dominating set; the conversion must give
    a valid Pi_Delta(a, 0) solution for every a."""

    @pytest.mark.parametrize("delta", [3, 4, 5])
    def test_on_cayley_instance(self, delta):
        graph = colored_port_cayley_graph(delta)
        mis = greedy_mis(graph)
        for a in (1, delta // 2, delta):
            result = verify_lemma5(graph, mis, {}, k=0, a=a)
            assert result.ok, result.violations

    @pytest.mark.parametrize("seed", range(3))
    def test_on_bounded_degree_trees(self, seed):
        graph = random_tree_bounded_degree(60, 4, random.Random(seed))
        mis = greedy_mis(graph)
        result = verify_lemma5(graph, mis, {}, k=0, a=2)
        assert result.ok, result.violations

    def test_on_truncated_regular_tree(self):
        graph = truncated_regular_tree(3, 3)
        mis = greedy_mis(graph)
        result = verify_lemma5(graph, mis, {}, k=0, a=3)
        assert result.ok, result.violations


class TestPositiveK:
    def test_all_nodes_cycle_k1(self):
        """S = V on a cycle with the rotational orientation: outdeg 1."""
        graph = cycle_graph(6)
        orientation = {}
        for edge_id, u, v in graph.edges():
            orientation[edge_id] = max(u, v) if abs(u - v) == 1 else min(u, v)
        result = verify_lemma5(graph, set(range(6)), orientation, k=1, a=2)
        assert result.ok, result.violations

    def test_all_nodes_cayley_with_matching_orientation(self):
        """S = V on the Cayley graph, orienting color-0 edges by bit:
        every node has outdegree exactly 1 on its matching edge... no -
        every induced edge needs orientation; orient edge of color c
        toward the endpoint with bit c set: outdegree = number of unset
        bits = up to delta, so use k = delta."""
        delta = 3
        graph = colored_port_cayley_graph(delta)
        orientation = {}
        for edge_id, u, v in graph.edges():
            color = graph.edge_color(edge_id)
            head = u if (u >> color) & 1 else v
            orientation[edge_id] = head
        result = verify_lemma5(
            graph, set(range(graph.n)), orientation, k=delta, a=1
        )
        assert result.ok, result.violations

    def test_labeling_counts(self):
        delta = 3
        graph = colored_port_cayley_graph(delta)
        mis = greedy_mis(graph)
        labeling = labeling_from_kods(graph, mis, {}, k=1)
        for node in mis:
            labels = [labeling[(node, port)] for port in range(delta)]
            assert labels.count("X") == 1
            assert labels.count("M") == delta - 1


class TestInputValidation:
    def test_non_dominating_rejected(self):
        graph = cycle_graph(6)
        with pytest.raises(ValueError):
            verify_lemma5(graph, {0}, {}, k=0, a=1)

    def test_outdegree_violation_rejected(self):
        graph = cycle_graph(4)
        orientation = {}
        for edge_id, u, v in graph.edges():
            # orient both of node 0's edges away from node 0
            orientation[edge_id] = v if u == 0 else (u if v == 0 else v)
        with pytest.raises(ValueError):
            verify_lemma5(graph, set(range(4)), orientation, k=0, a=1)

    def test_undominated_node_in_conversion(self):
        graph = cycle_graph(6)
        with pytest.raises(ValueError):
            labeling_from_kods(graph, {0}, {}, k=0)
