"""Tests for the output verifiers."""

from repro.problems.mis import mis_problem
from repro.sim.generators import cycle_graph, path_graph, star_graph
from repro.sim.graph import Graph
from repro.sim.verifiers import (
    verify_arbdefective_coloring,
    verify_defective_coloring,
    verify_dominating_set,
    verify_independent_set,
    verify_k_degree_dominating_set,
    verify_k_outdegree_dominating_set,
    verify_lcl,
    verify_mis,
    verify_proper_coloring,
)


class TestSetVerifiers:
    def test_independent_set(self):
        graph = path_graph(4)
        assert verify_independent_set(graph, {0, 2}).ok
        assert not verify_independent_set(graph, {0, 1}).ok

    def test_dominating_set(self):
        graph = path_graph(4)
        assert verify_dominating_set(graph, {1, 3}).ok
        assert not verify_dominating_set(graph, {0}).ok

    def test_mis(self):
        graph = path_graph(5)
        assert verify_mis(graph, {0, 2, 4}).ok
        assert not verify_mis(graph, {0, 4}).ok  # node 2 undominated
        assert not verify_mis(graph, {0, 1, 3}).ok  # not independent

    def test_violation_messages(self):
        result = verify_mis(path_graph(3), {0, 1})
        assert any("adjacent" in message for message in result.violations)


class TestKOutdegree:
    def test_valid_with_orientation(self):
        # Path 0-1-2-3, S = {1, 2}, edge (1,2) oriented toward 2.
        graph = path_graph(4)
        edge_12 = next(e for e, u, v in graph.edges() if {u, v} == {1, 2})
        result = verify_k_outdegree_dominating_set(
            graph, {1, 2}, {edge_12: 2}, k=1
        )
        assert result.ok

    def test_outdegree_exceeded(self):
        graph = star_graph(3)  # center 0
        orientation = {}
        for edge_id, u, v in graph.edges():
            orientation[edge_id] = v if u == 0 else u  # all point away from 0
        result = verify_k_outdegree_dominating_set(
            graph, {0, 1, 2, 3}, orientation, k=2
        )
        assert not result.ok
        assert any("outdegree 3" in message for message in result.violations)

    def test_unoriented_induced_edge(self):
        graph = path_graph(3)
        result = verify_k_outdegree_dominating_set(graph, {0, 1}, {}, k=1)
        assert not result.ok

    def test_k_zero_is_mis(self):
        graph = path_graph(5)
        assert verify_k_outdegree_dominating_set(graph, {0, 2, 4}, {}, k=0).ok
        assert not verify_k_outdegree_dominating_set(graph, {0, 4}, {}, k=0).ok

    def test_bad_head_rejected(self):
        graph = path_graph(2)
        result = verify_k_outdegree_dominating_set(graph, {0, 1}, {0: 5}, k=1)
        assert not result.ok


class TestKDegree:
    def test_valid(self):
        graph = path_graph(4)
        assert verify_k_degree_dominating_set(graph, {1, 2}, k=1).ok

    def test_degree_exceeded(self):
        graph = star_graph(3)
        result = verify_k_degree_dominating_set(graph, {0, 1, 2, 3}, k=2)
        assert not result.ok

    def test_all_nodes_with_large_k(self):
        graph = cycle_graph(5)
        assert verify_k_degree_dominating_set(graph, set(range(5)), k=2).ok


class TestColoringVerifiers:
    def test_proper(self):
        graph = path_graph(3)
        assert verify_proper_coloring(graph, [0, 1, 0]).ok
        assert not verify_proper_coloring(graph, [0, 0, 1]).ok

    def test_length_mismatch(self):
        assert not verify_proper_coloring(path_graph(3), [0, 1]).ok

    def test_defective(self):
        graph = path_graph(4)
        assert verify_defective_coloring(graph, [0, 0, 1, 1], defect=1).ok
        assert not verify_defective_coloring(graph, [0, 0, 0, 1], defect=1).ok

    def test_arbdefective(self):
        graph = path_graph(3)  # edges (0,1), (1,2), all same color
        orientation = {0: 1, 1: 1}  # both edges point at node 1: outdeg <= 1
        assert verify_arbdefective_coloring(
            graph, [0, 0, 0], orientation, defect=1
        ).ok
        bad_orientation = {0: 0, 1: 2}  # node 1 pushes both edges out
        assert not verify_arbdefective_coloring(
            graph, [0, 0, 0], bad_orientation, defect=1
        ).ok

    def test_arbdefective_requires_orientation(self):
        graph = path_graph(2)
        assert not verify_arbdefective_coloring(graph, [0, 0], {}, defect=1).ok


class TestLclVerifier:
    def make_mis_labeling(self, graph, selected):
        """Labels from an MIS per the Section 2.2 encoding."""
        labeling = {}
        for node in range(graph.n):
            if node in selected:
                for port in range(graph.degree(node)):
                    labeling[(node, port)] = "M"
            else:
                pointer = next(
                    port
                    for port in range(graph.degree(node))
                    if graph.neighbor(node, port) in selected
                )
                for port in range(graph.degree(node)):
                    labeling[(node, port)] = "P" if port == pointer else "O"
        return labeling

    def test_valid_mis_labeling(self):
        graph = cycle_graph(6)
        problem = mis_problem(2)
        labeling = self.make_mis_labeling(graph, {0, 2, 4})
        assert verify_lcl(graph, problem, labeling).ok

    def test_invalid_node_configuration(self):
        graph = cycle_graph(6)
        problem = mis_problem(2)
        labeling = self.make_mis_labeling(graph, {0, 2, 4})
        labeling[(1, 0)] = "O"  # node 1 now outputs O O
        result = verify_lcl(graph, problem, labeling)
        assert not result.ok

    def test_invalid_edge_configuration(self):
        graph = cycle_graph(4)
        problem = mis_problem(2)
        labeling = self.make_mis_labeling(graph, {0, 2})
        labeling[(0, 0)] = "P"  # MIS node pretends to point
        result = verify_lcl(graph, problem, labeling)
        assert not result.ok

    def test_missing_label_reported(self):
        graph = cycle_graph(4)
        problem = mis_problem(2)
        labeling = self.make_mis_labeling(graph, {0, 2})
        del labeling[(1, 0)]
        result = verify_lcl(graph, problem, labeling)
        assert any("unlabeled" in message for message in result.violations)

    def test_skip_non_full_degree_nodes(self):
        graph = path_graph(3)  # middle node degree 2, leaves degree 1
        problem = mis_problem(2)
        labeling = {
            (0, 0): "P",
            (1, 0): "M",
            (1, 1): "M",
            (2, 0): "P",
        }
        strict = verify_lcl(graph, problem, labeling)
        assert not strict.ok
        lenient = verify_lcl(
            graph, problem, labeling, skip_non_full_degree_nodes=True
        )
        assert lenient.ok
