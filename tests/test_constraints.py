"""Unit tests for the Constraint container."""

import pytest

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint


def mis_edges():
    return Constraint.from_condensed(["M [PO]", "O O"])


class TestConstruction:
    def test_from_condensed_strings(self):
        constraint = mis_edges()
        assert len(constraint) == 3
        assert Configuration("MP") in constraint
        assert Configuration("MO") in constraint
        assert Configuration("OO") in constraint

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            Constraint([Configuration("MP"), Configuration("MPO")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Constraint([])

    def test_from_condensed_accepts_parsed_objects(self):
        from repro.core.configurations import parse_condensed

        constraint = Constraint.from_condensed([parse_condensed("M M"), "O O"])
        assert len(constraint) == 2


class TestQueries:
    def test_arity(self):
        assert mis_edges().arity == 2

    def test_labels_used(self):
        assert mis_edges().labels_used() == {"M", "P", "O"}

    def test_allows(self):
        constraint = mis_edges()
        assert constraint.allows(("P", "M"))  # order irrelevant
        assert not constraint.allows(("M", "M"))
        assert not constraint.allows(("P", "P"))

    def test_configurations_containing(self):
        containing_m = mis_edges().configurations_containing("M")
        assert containing_m == {Configuration("MP"), Configuration("MO")}

    def test_restrict_to(self):
        restricted = mis_edges().restrict_to({"M", "O"})
        assert set(restricted.configurations) == {
            Configuration("MO"),
            Configuration("OO"),
        }

    def test_rename(self):
        renamed = mis_edges().rename({"M": "Z"})
        assert Configuration("ZP") in renamed
        assert Configuration("MP") not in renamed

    def test_union(self):
        left = Constraint.from_condensed(["M M"])
        right = Constraint.from_condensed(["O O"])
        merged = left.union(right)
        assert len(merged) == 2

    def test_union_arity_mismatch(self):
        with pytest.raises(ValueError):
            Constraint.from_condensed(["M M"]).union(
                Constraint.from_condensed(["M M M"])
            )

    def test_is_subset_of(self):
        small = Constraint.from_condensed(["M O"])
        assert small.is_subset_of(mis_edges())
        assert not mis_edges().is_subset_of(small)

    def test_iteration_is_sorted_and_stable(self):
        rendered = [config.render() for config in mis_edges()]
        assert rendered == sorted(rendered)
