"""Monte-Carlo zero-round experiments (the empirical side of Lemma 15)."""

from repro.core.solvability import randomized_zero_round_failure_bound
from repro.lowerbound.zero_round import (
    GreedyStrategy,
    UniformStrategy,
    monte_carlo_zero_round_failure,
)
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


class TestMonteCarlo:
    def test_uniform_strategy_fails_at_least_the_bound(self):
        problem = family_problem(3, 2, 1)
        experiment = monte_carlo_zero_round_failure(problem, trials=100, seed=1)
        bound = float(randomized_zero_round_failure_bound(problem))
        assert experiment.failure_rate >= bound

    def test_greedy_strategy_also_fails(self):
        problem = family_problem(3, 2, 1)
        experiment = monte_carlo_zero_round_failure(
            problem, strategy=GreedyStrategy(problem), trials=20, seed=2
        )
        bound = float(randomized_zero_round_failure_bound(problem))
        assert experiment.failure_rate >= bound

    def test_mis_fails(self):
        problem = mis_problem(3)
        experiment = monte_carlo_zero_round_failure(problem, trials=50, seed=3)
        assert experiment.failure_rate >= float(
            randomized_zero_round_failure_bound(problem)
        )

    def test_solvable_problem_can_succeed(self):
        """Pi(delta, a=0, x=delta) is 0-round solvable: the all-X
        strategy exists in the configuration space, so some trials
        should succeed under a uniform strategy... but more robustly,
        the analytic bound is 0 and does not constrain the rate."""
        problem = family_problem(3, 0, 3)
        bound = randomized_zero_round_failure_bound(problem)
        assert bound == 0

    def test_experiment_metadata(self):
        problem = family_problem(3, 2, 1)
        experiment = monte_carlo_zero_round_failure(problem, trials=10, seed=0)
        assert experiment.trials == 10
        assert 0 <= experiment.failures <= 10
        assert experiment.delta == 3

    def test_deterministic_given_seed(self):
        problem = family_problem(3, 2, 1)
        first = monte_carlo_zero_round_failure(problem, trials=30, seed=9)
        second = monte_carlo_zero_round_failure(problem, trials=30, seed=9)
        assert first.failures == second.failures

    def test_uniform_strategy_samples_allowed_configurations(self):
        import random

        problem = family_problem(4, 2, 1)
        strategy = UniformStrategy(problem)
        rng = random.Random(0)
        from repro.core.configurations import Configuration

        for _ in range(50):
            labels = strategy.sample(rng)
            assert Configuration(labels) in problem.node_constraint
