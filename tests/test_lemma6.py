"""Machine-checks of Lemma 6 (and Figure 5) for concrete parameters."""

import pytest

from repro.core.configurations import Configuration
from repro.lowerbound.lemma6 import (
    FIGURE5_HASSE_EDGES,
    LEMMA6_RENAMING,
    compute_r_of_family,
    expected_r_of_family,
    figure5_diagram,
    verify_lemma6,
)


class TestLemma6:
    @pytest.mark.parametrize(
        "delta,a,x",
        [
            (3, 2, 0),
            (4, 3, 1),
            (4, 4, 2),
            (5, 3, 1),
            (5, 4, 2),
            (5, 5, 1),
            (6, 4, 1),
        ],
    )
    def test_engine_matches_normal_form(self, delta, a, x):
        assert verify_lemma6(delta, a, x)

    def test_renaming_is_the_lemma_table(self):
        renamed = compute_r_of_family(4, 3, 1)
        assert renamed.mapping == LEMMA6_RENAMING

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            expected_r_of_family(4, 2, 1)  # a < x + 2

    def test_expected_edge_constraint(self):
        problem = expected_r_of_family(4, 3, 1)
        assert set(problem.edge_constraint.configurations) == {
            Configuration("XQ"),
            Configuration("OB"),
            Configuration("AU"),
            Configuration("PM"),
        }

    def test_expected_node_constraint_contains_lemma_families(self):
        problem = expected_r_of_family(4, 3, 1)
        # One representative from each condensed family:
        assert Configuration("MMMX") in problem.node_constraint  # [MUBQ]^3 [ALL]^1
        assert Configuration("POOO") in problem.node_constraint  # [PQ][OUABPQ]^3
        assert Configuration("ABPX") in problem.node_constraint  # [ABPQ]^3 [ALL]^1

    def test_alphabet_has_eight_labels(self):
        problem = compute_r_of_family(4, 3, 1).problem
        assert set(problem.alphabet) == set("XMOUABPQ")


class TestFigure5:
    @pytest.mark.parametrize("delta,a,x", [(5, 3, 1), (6, 4, 1), (6, 4, 2)])
    def test_node_diagram_matches_figure5(self, delta, a, x):
        diagram = figure5_diagram(delta, a, x)
        assert diagram.hasse_edges() == FIGURE5_HASSE_EDGES

    def test_q_is_strongest(self):
        diagram = figure5_diagram(5, 3, 1)
        for label in "XMOUABP":
            assert diagram.stronger("Q", label)

    def test_x_is_weakest(self):
        diagram = figure5_diagram(5, 3, 1)
        for label in "MOUABPQ":
            assert diagram.stronger(label, "X")

    def test_right_closedness_facts_used_by_lemma8(self):
        """The proof of Lemma 8 reads these off the diagram."""
        diagram = figure5_diagram(5, 3, 1)
        for labels in diagram.right_closed_sets():
            if "P" not in labels:
                assert labels <= frozenset("MUBQ")
            if "U" not in labels:
                assert labels <= frozenset("ABPQ")
            if "M" not in labels:
                assert labels <= frozenset("OUABPQ")
            if labels <= frozenset("OUABPQ") and "B" not in labels:
                assert labels <= frozenset("PQ")
            if labels <= frozenset("OUABPQ") and "A" not in labels:
                assert labels <= frozenset("UBPQ")
