"""Tests for the numeric bound expressions and table rendering."""

import math

import pytest

from repro.analysis.bounds import (
    balliu2019_lower_bound,
    bbo2020_deterministic_lower_bound,
    bbo2020_randomized_lower_bound,
    brandt_olivetti_b_matching_bound,
    crossover_delta,
    kmw_lower_bound,
    log_star,
    this_paper_deterministic_shape,
    this_paper_randomized_shape,
    upper_bound_k_degree_ds,
    upper_bound_k_outdegree_ds,
    upper_bound_mis_bek,
    upper_bound_mis_trees_deterministic,
    upper_bound_mis_trees_randomized,
)
from repro.analysis.tables import Table, series


class TestLogStar:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 1), (4, 2), (16, 3), (65536, 4)],
    )
    def test_tower_values(self, n, expected):
        assert log_star(n) == expected

    def test_tower_of_five(self):
        assert log_star(2**65536) == 5

    def test_zero_and_negative(self):
        assert log_star(0) == 0
        assert log_star(-5) == 0


class TestShapes:
    def test_paper_beats_focs20_in_delta(self):
        """The improvement over [5]: log Delta vs log Delta / loglog Delta.
        For huge n (so the n-branch is inactive) and growing Delta the
        ratio diverges."""
        n = 10**3000
        ratios = []
        for exponent in (8, 16, 32, 64):
            delta = 2.0**exponent
            ours = this_paper_deterministic_shape(n, delta)
            theirs = bbo2020_deterministic_lower_bound(n, delta)
            ratios.append(ours / theirs)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 1.5

    def test_randomized_shape_below_deterministic(self):
        for n in (2**20, 2**50):
            for delta in (8.0, 64.0, 1024.0):
                assert this_paper_randomized_shape(n, delta) <= (
                    this_paper_deterministic_shape(n, delta) + 1e-9
                )

    def test_kmw_matches_bbo_shape(self):
        # [31] and [5] have the same expression shape in this regime.
        assert kmw_lower_bound(2**40, 2**10) == pytest.approx(
            bbo2020_deterministic_lower_bound(2**40, 2**10)
        )

    def test_balliu2019_linear_in_delta(self):
        n = 10**300
        assert balliu2019_lower_bound(n, 16) == 16
        assert balliu2019_lower_bound(n, 64) == 64

    def test_b_matching_bound_decreases_in_b(self):
        n = 10**300
        values = [
            brandt_olivetti_b_matching_bound(n, 256, b) for b in (8, 32, 128)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_bbo_randomized_below_deterministic(self):
        n = 2**64
        delta = 2**8
        assert bbo2020_randomized_lower_bound(n, delta) <= (
            bbo2020_deterministic_lower_bound(n, delta)
        )


class TestUpperBounds:
    def test_mis_bek_linear_in_delta(self):
        assert upper_bound_mis_bek(2**16, 100) == 100 + log_star(2**16)

    def test_kods_upper_bound_decreases_in_k(self):
        n = 2**20
        values = [upper_bound_k_outdegree_ds(n, 256, k) for k in (1, 4, 16, 64)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_kdegree_upper_bound_min_structure(self):
        n = 2**20
        # Small k: the Delta branch wins; large k: the (Delta/k)^2 branch.
        assert upper_bound_k_degree_ds(n, 256, 1) == 256 + log_star(n)
        assert upper_bound_k_degree_ds(n, 256, 64) == 16 + log_star(n)

    def test_crossover_between_upper_and_lower(self):
        """Shape check of Theorem 1's tightness discussion: the lower
        bound log Delta stays below the upper bound Delta/k + log* n
        for k = 1 (no contradiction), and both grow with Delta."""
        n = 2**30
        for delta in (8.0, 64.0, 512.0):
            lower = this_paper_deterministic_shape(10**300, delta)
            upper = upper_bound_k_outdegree_ds(n, delta, 1)
            assert lower <= upper

    def test_tree_mis_upper_bounds(self):
        n = 2**36
        assert upper_bound_mis_trees_randomized(n) == pytest.approx(6.0)
        assert upper_bound_mis_trees_deterministic(n) == pytest.approx(
            36 / math.log2(36)
        )


class TestCrossover:
    def test_crossover_delta_deterministic(self):
        assert crossover_delta(2**36) == pytest.approx(2**6)

    def test_crossover_delta_randomized_smaller(self):
        n = 2**(2**12)
        assert crossover_delta(n, randomized=True) < crossover_delta(n)


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "1.50" in text and "20" in text

    def test_row_width_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bool_formatting(self):
        table = Table("demo", ["flag"])
        table.add_row(True)
        assert "yes" in table.render()

    def test_series_sparkline(self):
        line = series([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_series_empty(self):
        assert series([]) == ""

    def test_series_constant(self):
        assert len(series([5, 5, 5])) == 3
