"""Tests for Theorem 14 premises and the Theorem 1 / Corollary 2 bounds."""

import pytest

from repro.lowerbound.lift import (
    corollary2_delta_choice,
    corollary2_deterministic_bound,
    corollary2_randomized_bound,
    lower_bound_summary,
    theorem1_deterministic_bound,
    theorem1_randomized_bound,
    verify_theorem14_premises,
)
from repro.lowerbound.sequence import lemma13_chain, sequence_length


class TestTheorem14Premises:
    @pytest.mark.parametrize("delta", [2**6, 2**9, 2**12])
    def test_premises_hold_for_the_chain(self, delta):
        premises = verify_theorem14_premises(lemma13_chain(delta, 0))
        assert premises.ok
        assert premises.chain_length == sequence_length(delta, 0)

    def test_labels_always_five(self):
        chain = lemma13_chain(2**9, 2)
        for step in chain:
            assert len(step.problem.alphabet) == 5


class TestTheorem1:
    def test_large_n_gives_chain_length(self):
        """When n is huge the min is the log Delta branch."""
        delta = 2**12
        bound = theorem1_deterministic_bound(10**100, delta, 0)
        assert bound == sequence_length(delta, 0)

    def test_small_n_caps_the_bound(self):
        delta = 2**12
        bound = theorem1_deterministic_bound(2**24, delta, 0)
        assert bound == pytest.approx(24 / 12)

    def test_randomized_weaker_than_deterministic(self):
        for n in (2**20, 2**40):
            for delta in (2**6, 2**10):
                assert theorem1_randomized_bound(n, delta) <= (
                    theorem1_deterministic_bound(n, delta)
                )

    def test_k_weakens_the_bound(self):
        delta = 2**12
        n = 10**30
        assert theorem1_deterministic_bound(n, delta, 256) <= (
            theorem1_deterministic_bound(n, delta, 0)
        )

    def test_summary_fields(self):
        summary = lower_bound_summary(2**30, 2**9, 1)
        assert summary["premises_ok"]
        assert summary["chain_length"] >= 1
        assert summary["deterministic_rounds"] >= summary["randomized_rounds"]


class TestCorollary2:
    def test_delta_choice_balances(self):
        n = 2**36
        delta = corollary2_delta_choice(n)
        assert delta == 2**6

    def test_deterministic_bound_grows_with_n(self):
        values = [corollary2_deterministic_bound(2**e) for e in (16, 36, 64, 100)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bound_tracks_sqrt_log_n(self):
        """Within constant factors of sqrt(log n) for large n."""
        import math

        for exponent in (36, 64, 100, 144, 400):
            n = 2**exponent
            bound = corollary2_deterministic_bound(n)
            # The constructive chain pays a factor ~3 (a drops by 2^3
            # per step) plus an additive constant over the ideal
            # sqrt(log n) — still Theta(sqrt(log n)).
            assert bound >= math.sqrt(exponent) / 6 - 1
            assert bound <= 2 * math.sqrt(exponent)

    def test_randomized_uses_loglog(self):
        n = 2**(2**10)
        assert corollary2_delta_choice(n, randomized=True) < (
            corollary2_delta_choice(n, randomized=False)
        )

    def test_randomized_bound_positive_for_huge_n(self):
        assert corollary2_randomized_bound(2**(2**16)) >= 1
