"""Tests for the problem family Pi_Delta(a, x) and Pi+_Delta(a, x)."""

import pytest

from repro.core.configurations import Configuration
from repro.problems.family import (
    FAMILY_LABELS,
    PI_REL_RENAMING,
    family_plus_problem,
    family_problem,
    pi_rel_problem,
)
from repro.problems.mis import mis_problem


class TestFamilyProblem:
    def test_alphabet(self):
        problem = family_problem(4, 2, 1)
        assert tuple(problem.alphabet) == FAMILY_LABELS

    def test_node_constraint_three_families(self):
        problem = family_problem(5, 3, 2)
        assert Configuration("MMMXX") in problem.node_constraint
        assert Configuration("AAAXX") in problem.node_constraint
        assert Configuration("POOOO") in problem.node_constraint
        assert len(problem.node_constraint) == 3

    def test_edge_constraint_forbidden_pairs(self):
        problem = family_problem(4, 2, 1)
        for pair in ("MM", "AA", "PP", "PA", "PO"):
            assert not problem.edge_allows(pair[0], pair[1])

    def test_edge_constraint_allowed_pairs(self):
        problem = family_problem(4, 2, 1)
        allowed = [
            "MP", "MA", "MO", "MX",
            "OA", "OO", "OX", "OM",
            "PM", "PX",
            "AM", "AO", "AX",
            "XM", "XP", "XA", "XO", "XX",
        ]
        for pair in allowed:
            assert problem.edge_allows(pair[0], pair[1]), pair

    def test_x_equals_zero_gives_pure_independence(self):
        problem = family_problem(4, 2, 0)
        assert Configuration("MMMM") in problem.node_constraint

    def test_boundary_x_equals_delta(self):
        problem = family_problem(3, 2, 3)
        assert Configuration("XXX") in problem.node_constraint

    def test_boundary_a_equals_zero_merges_with_all_x(self):
        # a = 0: the type-3 configuration becomes X^Delta.
        problem = family_problem(3, 0, 3)
        # Both the M-config (x = delta) and the A-config (a = 0) are X^3.
        assert len(problem.node_constraint) == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            family_problem(3, 4, 0)
        with pytest.raises(ValueError):
            family_problem(3, 0, 4)
        with pytest.raises(ValueError):
            family_problem(0, 0, 0)
        with pytest.raises(ValueError):
            family_problem(3, -1, 0)

    def test_mis_relationship(self):
        """Pi_Delta with x = 0 restricted to {M, P, O} is exactly MIS:
        the family generalizes the Section 2.2 encoding."""
        problem = family_problem(4, 2, 0)
        mis = mis_problem(4)
        restricted_nodes = problem.node_constraint.restrict_to({"M", "P", "O"})
        restricted_edges = problem.edge_constraint.restrict_to({"M", "P", "O"})
        assert restricted_nodes == mis.node_constraint
        assert restricted_edges == mis.edge_constraint


class TestFamilyPlusProblem:
    def test_node_constraint_four_families(self):
        problem = family_plus_problem(5, 4, 1)
        assert Configuration("MMMXX") in problem.node_constraint  # M^(d-x-1) X^(x+1)
        assert Configuration("CCCCX") in problem.node_constraint  # C^(d-x) X^x
        assert Configuration("AAXXX") in problem.node_constraint  # A^(a-x-1) X^(d-a+x+1)
        assert Configuration("POOOO") in problem.node_constraint
        assert len(problem.node_constraint) == 4

    def test_c_compatibility_matches_lemma9(self):
        """Lemma 9: 'C is edge-compatible with [MAOX]' — and nothing else."""
        problem = family_plus_problem(5, 4, 1)
        assert problem.compatible_labels("C") == {"M", "A", "O", "X"}

    def test_cc_forbidden(self):
        problem = family_plus_problem(5, 4, 1)
        assert not problem.edge_allows("C", "C")

    def test_requires_lemma8_hypothesis(self):
        with pytest.raises(ValueError):
            family_plus_problem(5, 2, 1)  # a < x + 2

    def test_shares_family_edge_constraint_on_old_labels(self):
        plus = family_plus_problem(5, 4, 1)
        plain = family_problem(5, 4, 1)
        assert (
            plus.edge_constraint.restrict_to(FAMILY_LABELS)
            == plain.edge_constraint
        )


class TestPiRel:
    def test_renaming_recovers_plus(self):
        rel = pi_rel_problem(5, 4, 1)
        plus = family_plus_problem(5, 4, 1)
        assert rel.rename(PI_REL_RENAMING) == plus

    def test_labels_are_the_six_right_closed_sets(self):
        rel = pi_rel_problem(4, 3, 1)
        assert set(rel.alphabet) == set(PI_REL_RENAMING)
