"""RL006 fixture: provenance appended before the final persist."""


def persist_chain(store: object, payload: dict, cache_notes: list) -> None:
    notes: list = []
    notes.append(cache_notes)
    store.save("chain", payload)
