"""RL006 fixture: early provenance write, explicitly suppressed."""


def persist_chain(store: object, payload: dict, cache_notes: list) -> None:
    notes: list = []
    notes.append(cache_notes)  # reprolint: disable=RL006 -- fixture exercising suppression
    store.save("chain", payload)
