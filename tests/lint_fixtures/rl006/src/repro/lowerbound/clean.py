"""RL006 fixture: provenance appended only after the final persist."""


def persist_chain(store: object, payload: dict, cache_notes: list) -> None:
    store.save("chain", payload)
    notes: list = []
    notes.append(cache_notes)
