"""RL007 fixture: a stray print in library code."""


def report(value: int) -> None:
    print(f"value is {value}")
