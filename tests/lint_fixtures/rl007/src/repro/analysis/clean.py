"""RL007 fixture: return the rendering instead of printing it."""


def report(value: int) -> str:
    return f"value is {value}"
