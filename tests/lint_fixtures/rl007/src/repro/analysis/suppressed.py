"""RL007 fixture: a print justified and suppressed."""


def report(value: int) -> None:
    print(f"value is {value}")  # reprolint: disable=RL007 -- fixture exercising suppression
