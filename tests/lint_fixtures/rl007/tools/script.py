"""RL007 scope fixture: print is the product under tools/."""


def main() -> None:
    print("tools scripts may print")
