"""RL010 fixture: set allocation inside a ``# hotpath`` function."""

from __future__ import annotations


# hotpath
def _grow(frontier: int, masks: tuple[int, ...]) -> int:
    survivors = set()
    for mask in masks:
        if frontier & mask:
            survivors.add(mask)
    grown = 0
    for mask in sorted(survivors):
        grown |= mask
    return grown
