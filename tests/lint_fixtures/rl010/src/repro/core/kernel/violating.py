"""RL010 fixture: set allocation inside a ``# hotpath`` function."""

from __future__ import annotations

import functools


# hotpath
def _grow(frontier: int, masks: tuple[int, ...]) -> int:
    survivors = set()
    for mask in masks:
        if frontier & mask:
            survivors.add(mask)
    grown = 0
    for mask in sorted(survivors):
        grown |= mask
    return grown


# The marker must also reach through decorators: the line above the
# first decorator marks the function, even though ``def`` sits lower.
# hotpath
@functools.lru_cache(maxsize=None)
def _grow_cached(frontier: int) -> frozenset[int]:
    return frozenset((frontier,))
