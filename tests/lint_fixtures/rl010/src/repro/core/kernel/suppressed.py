"""RL010 fixture: hot-path set allocation, explicitly suppressed."""

from __future__ import annotations


# hotpath
def _grow(frontier: int, masks: tuple[int, ...]) -> int:
    survivors = {mask for mask in masks if frontier & mask}  # reprolint: disable=RL010 -- fixture exercising suppression
    grown = 0
    for mask in sorted(survivors):
        grown |= mask
    return grown
