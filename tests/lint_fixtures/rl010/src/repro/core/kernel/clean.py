"""RL010 fixture: the idiomatic fix — int bitmasks in the hot loop.

The cold helper below shows the rule's scope: an *unmarked* function
in the same kernel module may build sets freely.
"""

from __future__ import annotations

import functools


# hotpath
def _grow(frontier: int, rows: tuple[int, ...]) -> int:
    grown = 0
    cursor = frontier
    while cursor:
        low = cursor & -cursor
        grown |= rows[low.bit_length() - 1]
        cursor ^= low
    return grown


def _materialize(masks: tuple[int, ...]) -> frozenset[int]:
    return frozenset(masks)


# hotpath
@functools.lru_cache(maxsize=None)
def _popcount(mask: int) -> int:
    return mask.bit_count()
