"""RL001 fixture: bare builtin raise in engine code."""


def reject(count: int) -> None:
    if count < 0:
        raise ValueError(f"negative count {count}")
