"""RL001 fixture: the violating raise, explicitly suppressed."""


def reject(count: int) -> None:
    if count < 0:
        raise ValueError(f"negative count {count}")  # reprolint: disable=RL001 -- fixture exercising suppression
