"""RL001 fixture: typed error from the robustness hierarchy."""

from repro.robustness.errors import InvalidProblem


def reject(count: int) -> None:
    if count < 0:
        raise InvalidProblem("negative count", count=count)
