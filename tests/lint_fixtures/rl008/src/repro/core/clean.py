"""RL008 fixture: fully annotated public API (privates exempt)."""


def combine(left: int, right: int) -> int:
    return _add(left, right)


def _add(left, right):
    return left + right


class Box:
    def __init__(self, value: int) -> None:
        self.value = value

    def get(self) -> int:
        return self.value
