"""RL008 fixture: unannotated function, explicitly suppressed."""


def combine(left, right):  # reprolint: disable=RL008 -- fixture exercising suppression
    return left + right
