"""RL008 fixture: public core API missing annotations."""


def combine(left, right):
    return left + right


class Box:
    def __init__(self, value):
        self.value = value

    def get(self):
        return self.value
