"""RL005 fixture: with-statement entry."""


def run(budget_cm: object) -> None:
    with budget_cm:
        pass
