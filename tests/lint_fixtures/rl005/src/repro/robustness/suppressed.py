"""RL005 fixture: manual entry, explicitly suppressed."""


def run(budget_cm: object) -> None:
    handle = budget_cm.__enter__()  # reprolint: disable=RL005 -- fixture exercising suppression
    budget_cm.__exit__(None, None, None)  # reprolint: disable=RL005 -- fixture exercising suppression
