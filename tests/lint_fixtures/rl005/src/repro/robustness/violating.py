"""RL005 fixture: a manually entered ambient context manager."""


def run(budget_cm: object) -> None:
    handle = budget_cm.__enter__()
    try:
        pass
    finally:
        budget_cm.__exit__(None, None, None)
