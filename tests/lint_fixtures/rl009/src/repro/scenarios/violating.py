"""RL009 fixture: scenario registrations missing their test wiring."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioDecl:
    spec: str
    oracle_corpus: str = ""
    golden: str = ""
    quick: bool = False


SCENARIOS = (
    # Missing golden and an empty oracle-corpus entry.
    ScenarioDecl(spec="orphan_family.scn", oracle_corpus=""),
    # Spec filename is not a .scn file.
    ScenarioDecl(
        spec="typo_family.yaml",
        oracle_corpus="typo_family",
        golden="typo_family_speedup",
    ),
)
