"""RL009 fixture: the violation under an explicit suppression."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioDecl:
    spec: str
    oracle_corpus: str = ""
    golden: str = ""
    quick: bool = False


SCENARIOS = (
    ScenarioDecl(spec="orphan_family.scn"),  # reprolint: disable=RL009 -- wiring lands in the next change
)
