"""RL009 fixture: fully wired scenario registrations."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioDecl:
    spec: str
    oracle_corpus: str = ""
    golden: str = ""
    quick: bool = False


SCENARIOS = (
    ScenarioDecl(
        spec="mis3_speedup.scn",
        oracle_corpus="mis3",
        golden="mis3_speedup",
    ),
    ScenarioDecl(
        spec="maximal_matching2_selfreduce.scn",
        oracle_corpus="maximal_matching2",
        golden="maximal_matching2_selfreduce",
        quick=True,
    ),
)
