"""RL004 fixture: undeclared counter, explicitly suppressed."""


def record(span: object) -> None:
    span.add("bogus.counter", 1)  # reprolint: disable=RL004 -- fixture exercising suppression
