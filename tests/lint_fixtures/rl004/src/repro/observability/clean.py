"""RL004 fixture: declared counters and non-counter adds."""


def record(span: object, seen: set) -> None:
    span.add("labels.in", 3)
    span.add("cache.hit")
    seen.add("plainstring")
