"""RL004 fixture: an undeclared counter emission."""


def record(span: object) -> None:
    span.add("bogus.counter", 1)
