"""RL003 fixture: unpicklable payloads handed to a pool."""


def _fan_out(pool: object, chunks: list) -> list:
    def _local(chunk: object) -> object:
        return chunk

    results = list(pool.imap(_local, chunks))
    results += pool.map(lambda chunk: chunk, chunks)
    return results
