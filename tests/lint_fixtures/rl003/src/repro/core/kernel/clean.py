"""RL003 fixture: module-level dispatch function."""


def _run_chunk(chunk: object) -> object:
    return chunk


def _fan_out(pool: object, chunks: list) -> list:
    return list(pool.imap(_run_chunk, chunks))
