"""RL003 fixture: lambda dispatch, explicitly suppressed."""


def _fan_out(pool: object, chunks: list) -> list:
    return pool.map(lambda chunk: chunk, chunks)  # reprolint: disable=RL003 -- fixture exercising suppression
