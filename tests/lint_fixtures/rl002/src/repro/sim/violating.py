"""RL002 fixture: nondeterminism in engine code."""

import random
import time


def stamp() -> float:
    return time.time()


def pick(items: list) -> object:
    return random.choice(items)


def render(labels: set) -> list:
    return [label for label in set(labels)]
