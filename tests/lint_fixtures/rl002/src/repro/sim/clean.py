"""RL002 fixture: deterministic equivalents."""

import random


def pick(items: list, rng: random.Random) -> object:
    return items[rng.randrange(len(items))]


def render(labels: set) -> list:
    return [label for label in sorted(labels, key=str)]
