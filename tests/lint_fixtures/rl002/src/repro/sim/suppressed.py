"""RL002 fixture: a set iteration justified and suppressed."""


def dedup(items: list) -> int:
    total = 0
    for item in set(items):  # reprolint: disable=RL002 -- order-independent sum
        total += 1
    return total
