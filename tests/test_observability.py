"""Trace-invariant property tests for the observability layer.

Seeded-random span trees (stdlib ``random`` only) drive the structural
invariants: spans nest correctly, counters are non-negative and
monotone within a span, every operator span carries problem-size
attributes, and — the zero-overhead contract — disabled tracing emits
nothing and hands out a shared null span.
"""

import random

import pytest

from repro.core.round_elimination import speedup
from repro.core.solvability import zero_round_solvable_symmetric
from repro.observability import trace as trace_module
from repro.observability.cli import cli_tracing
from repro.observability.metrics import (
    diff_semantic_profiles,
    render_phase_table,
    semantic_profile,
    summarize_phases,
    total_counters,
    trace_summary_line,
)
from repro.observability.schema import (
    SCHEMA_VERSION,
    SEMANTIC_COUNTERS,
    TIMING_COUNTERS,
    parse_trace_lines,
    validate_record,
    validate_trace,
)
from repro.observability.trace import (
    Tracer,
    active_tracer,
    tracing,
    tracing_enabled,
)
from repro.problems.mis import mis_problem


def build_random_tree(tracer: Tracer, rng: random.Random, depth: int) -> int:
    """Open random nested spans with random counters; returns span count."""
    opened = 0
    for _ in range(rng.randint(1, 3)):
        with tracer.span(f"phase.{rng.randint(0, 4)}", depth=depth) as span:
            opened += 1
            for _ in range(rng.randint(0, 3)):
                span.add(rng.choice(["work.items", "work.bytes"]), rng.randint(0, 9))
            if rng.random() < 0.4:
                tracer.event("tick", depth=depth)
            if depth > 0 and rng.random() < 0.7:
                opened += build_random_tree(tracer, rng, depth - 1)
    return opened


class TestSpanTreeInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 7, 20210726])
    def test_random_trees_validate_and_nest(self, seed):
        rng = random.Random(seed)
        tracer = Tracer()
        opened = build_random_tree(tracer, rng, depth=3)
        records = tracer.finish()
        validate_trace(records)
        spans = {r["id"]: r for r in records if r["type"] == "span"}
        assert len(spans) == opened + 1  # + the implicit root
        # Exactly one root (the implicit "trace" span), all others
        # parented, and children close before their parents.
        closing_order = [r["id"] for r in records if r["type"] == "span"]
        position = {span_id: idx for idx, span_id in enumerate(closing_order)}
        roots = [r for r in spans.values() if r["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "trace"
        for record in spans.values():
            if record["parent"] is not None:
                parent = spans[record["parent"]]
                assert position[parent["id"]] > position[record["id"]]
                # A child starts no earlier than its parent.
                assert record["start_s"] >= parent["start_s"]

    @pytest.mark.parametrize("seed", [3, 11])
    def test_roundtrips_through_jsonl(self, seed):
        tracer = Tracer()
        build_random_tree(tracer, random.Random(seed), depth=2)
        reparsed = parse_trace_lines(tracer.to_jsonl())
        validate_trace(reparsed)
        assert reparsed == tracer.finish()

    def test_exception_marks_span_error_and_closes_orphans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("orphan")  # never explicitly closed
                raise RuntimeError("boom")
        records = tracer.finish()
        validate_trace(records)
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["outer"]["status"] == "error"
        assert by_name["outer"]["error"] == "boom"
        assert by_name["orphan"]["status"] == "error"

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        first = tracer.finish()
        assert tracer.finish() is first
        assert first[-1]["type"] == "meta"
        assert first[-1]["schema"] == SCHEMA_VERSION


class TestCounters:
    def test_counters_accumulate_monotonically(self):
        rng = random.Random(99)
        tracer = Tracer()
        increments = [rng.randint(0, 100) for _ in range(50)]
        with tracer.span("count") as span:
            running = 0
            for amount in increments:
                span.add("work.items", amount)
                running += amount
                assert span.counters["work.items"] == running
        record = next(r for r in tracer.finish() if r.get("name") == "count")
        assert record["counters"]["work.items"] == sum(increments)

    def test_negative_increment_is_rejected(self):
        tracer = Tracer()
        with tracer.span("count") as span:
            with pytest.raises(ValueError):
                span.add("work.items", -1)

    def test_counter_taxonomy_is_disjoint(self):
        assert not set(SEMANTIC_COUNTERS) & set(TIMING_COUNTERS)


class TestOperatorSpans:
    def test_operator_spans_carry_problem_size(self):
        tracer = Tracer()
        with tracing(tracer):
            speedup(mis_problem(3))
            zero_round_solvable_symmetric(mis_problem(3))
        records = tracer.finish()
        validate_trace(records)
        operator_spans = [
            r for r in records
            if r["type"] == "span" and r["name"].startswith("op.")
        ]
        names = {r["name"] for r in operator_spans}
        assert {"op.speedup", "op.R", "op.Rbar", "op.zero_round_symmetric"} <= names
        for record in operator_spans:
            assert record["attrs"]["engine"] in ("reference", "kernel")
            assert isinstance(record["attrs"]["delta"], int)
            assert record["counters"]["labels.in"] > 0

    def test_operator_counters_are_semantic(self):
        tracer = Tracer()
        with tracing(tracer):
            speedup(mis_problem(3))
        r_span = next(
            r for r in tracer.finish()
            if r["type"] == "span" and r["name"] == "op.R"
        )
        for counter in ("labels.in", "labels.out", "node.configs.out",
                        "edge.configs.out"):
            assert counter in SEMANTIC_COUNTERS
            assert r_span["counters"][counter] >= 0


class TestDisabledTracing:
    def test_no_ambient_tracer_by_default(self):
        assert active_tracer() is None
        assert not tracing_enabled()

    def test_module_helpers_are_noops(self):
        # A singleton null span, and no exception from any helper.
        first = trace_module.span("anything", big_attr="x" * 100)
        second = trace_module.span("else")
        assert first is second
        with first as handle:
            handle.add("work.items", 5)
            handle.set_attr("key", "value")
        trace_module.add("work.items", 3)
        trace_module.event("tick", detail="ignored")
        trace_module.set_attr("key", "value")

    def test_untraced_run_emits_nothing(self):
        # The engine runs identically and no tracer ever materializes.
        result = speedup(mis_problem(3))
        assert active_tracer() is None
        assert result.final.alphabet

    def test_tracing_none_is_passthrough(self):
        with tracing(None) as handle:
            assert handle is None
            assert not tracing_enabled()


class TestGrafting:
    def test_graft_remaps_ids_and_reparents(self):
        worker = Tracer()
        with worker.span("kernel.chunk", first_index=0) as span:
            span.add("mp.chunk_results", 4)
            worker.event("chunk.note")
        shipped = worker.finish()

        parent = Tracer()
        with parent.span("op.Rbar", engine="kernel", delta=3):
            parent.graft(shipped)
        records = parent.finish()
        validate_trace(records)
        chunk = next(r for r in records if r.get("name") == "kernel.chunk")
        rbar = next(r for r in records if r.get("name") == "op.Rbar")
        worker_root = next(
            r for r in records
            if r.get("name") == "trace" and r["id"] == chunk["parent"]
        )
        # The worker's root now hangs under the parent's open span.
        assert worker_root["parent"] == rbar["id"]
        event = next(r for r in records if r["type"] == "event")
        assert event["span"] == chunk["id"]

    def test_parallel_rbar_grafts_chunk_spans(self):
        from repro.core.round_elimination import R, Rbar, rename_to_strings

        intermediate = rename_to_strings(R(mis_problem(4))).problem
        tracer = Tracer()
        with tracing(tracer):
            parallel = Rbar(intermediate, use_kernel=True, workers=2)
        records = tracer.finish()
        validate_trace(records)
        assert parallel == Rbar(intermediate, use_kernel=True)
        totals = total_counters(records)
        assert totals.get("mp.chunks", 0) > 0
        # With a real pool the workers' chunk spans are grafted in; in
        # pool-less environments the serial fallback still counts chunks.
        chunk_spans = [r for r in records if r.get("name") == "kernel.chunk"]
        if chunk_spans:
            rbar_span = next(
                r for r in records
                if r["type"] == "span" and r["name"] == "op.Rbar"
            )
            spans_by_id = {
                r["id"]: r for r in records if r["type"] == "span"
            }
            for chunk in chunk_spans:
                # Walk up: every chunk span must live under op.Rbar.
                current = chunk
                seen = {chunk["id"]}
                while current["parent"] is not None:
                    current = spans_by_id[current["parent"]]
                    assert current["id"] not in seen  # no cycles
                    seen.add(current["id"])
                    if current["id"] == rbar_span["id"]:
                        break
                assert current["id"] == rbar_span["id"]
                assert chunk["counters"]["mp.chunk_results"] >= 0

    def test_graft_skips_meta_and_empty(self):
        parent = Tracer()
        parent.graft([])
        parent.graft([{"type": "meta", "schema": SCHEMA_VERSION,
                       "spans": 0, "events": 0, "wall_clock_s": 0.0,
                       "peak_rss_kb": None}])
        records = parent.finish()
        validate_trace(records)
        assert sum(1 for r in records if r["type"] == "meta") == 1


class TestSchemaValidation:
    def _valid_trace(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        return tracer.finish()

    def test_rejects_unknown_record_type(self):
        with pytest.raises(ValueError):
            validate_record({"type": "mystery"})

    def test_rejects_negative_counters(self):
        records = self._valid_trace()
        doctored = [dict(r) for r in records]
        doctored[0] = dict(doctored[0], counters={"work.items": -1})
        with pytest.raises(ValueError):
            validate_trace(doctored)

    def test_rejects_duplicate_span_ids(self):
        records = self._valid_trace()
        spans = [r for r in records if r["type"] == "span"]
        doctored = spans + [dict(spans[0])] + [records[-1]]
        with pytest.raises(ValueError):
            validate_trace(doctored)

    def test_rejects_missing_or_misplaced_meta(self):
        records = self._valid_trace()
        with pytest.raises(ValueError):
            validate_trace([r for r in records if r["type"] != "meta"])
        with pytest.raises(ValueError):
            validate_trace(records[::-1])

    def test_rejects_unknown_schema_version(self):
        records = self._valid_trace()
        doctored = records[:-1] + [dict(records[-1], schema=SCHEMA_VERSION + 1)]
        with pytest.raises(ValueError):
            validate_trace(doctored)


class TestMetricsAggregation:
    def test_phase_summary_sums_counters(self):
        tracer = Tracer()
        for amount in (2, 3):
            with tracer.span("phase.a") as span:
                span.add("work.items", amount)
        records = tracer.finish()
        phases = summarize_phases(records)
        assert phases["phase.a"]["count"] == 2
        assert phases["phase.a"]["counters"]["work.items"] == 5
        assert total_counters(records)["work.items"] == 5
        table = render_phase_table(records)
        assert "phase.a" in table and "work.items=5" in table

    def test_semantic_profile_ignores_timing_counters(self):
        tracer = Tracer()
        with tracer.span("op.R") as span:
            span.add("labels.in", 3)
            span.add("kernel.cache.hit", 17)
        profile = semantic_profile(tracer.finish())
        assert profile == {"op.R": {"labels.in": 3}}

    def test_diff_reports_and_clears_drift(self):
        left = {"op.R": {"labels.in": 3}}
        right = {"op.R": {"labels.in": 4}}
        assert diff_semantic_profiles(left, left) == []
        drift = diff_semantic_profiles(left, right)
        assert drift == ["op.R / labels.in: 3 != 4"]

    def test_summary_line_names_semantic_totals(self):
        tracer = Tracer()
        with tracer.span("op.R") as span:
            span.add("labels.in", 3)
        line = trace_summary_line(tracer.finish())
        assert line.startswith("trace: ")
        assert "labels.in=3" in line and "wall_clock_s=" in line


class TestCliTracing:
    def test_writes_schema_valid_trace(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        with cli_tracing(str(path), metrics=True):
            speedup(mis_problem(3))
        records = parse_trace_lines(path.read_text())
        validate_trace(records)
        captured = capsys.readouterr()
        assert "op.R" in captured.out  # the metrics table
        assert "trace written to" in captured.err

    def test_writes_trace_even_when_the_run_fails(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with pytest.raises(RuntimeError):
            with cli_tracing(str(path)):
                with trace_module.span("doomed"):
                    raise RuntimeError("boom")
        records = parse_trace_lines(path.read_text())
        validate_trace(records)
        doomed = next(r for r in records if r.get("name") == "doomed")
        assert doomed["status"] == "error"

    def test_no_flags_no_tracer(self):
        with cli_tracing(None, metrics=False) as tracer:
            assert tracer is None
            assert not tracing_enabled()
