"""Property tests of the service wire formats and the sealed job store.

Mirrors the ``.scn`` spec-format tests one layer up: the request
parse/render pair is an identity on valid requests, the job-record
encode/decode pair survives a full trip through the sealed
:class:`~repro.robustness.checkpointing.CheckpointStore`, and the
resulting documents are byte-stable under
:func:`repro.core.io.canonical_json` — the exact property the
restart-and-re-serve guarantee of the HTTP API rests on.  Corruption
is tested the way the store promises to handle it: a damaged job file
costs that job (evicted, counted), never the server.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.io import canonical_json
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import InvalidJobRequest
from repro.service import (
    BUDGET_FIELDS,
    ENGINES,
    INLINE_OPERATORS,
    JOB_STATES,
    POLICIES,
    JobRecord,
    JobRequest,
    JobStore,
    parse_job_request,
    render_job_request,
)
from repro.service.jobs import JOB_STAGE_PREFIX
from repro.service.wire import decode_job, encode_job

import pytest


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def budgets() -> st.SearchStrategy:
    """Valid budget dicts: positive ints, float wall-clock seconds."""
    field_values = {
        field: st.integers(min_value=1, max_value=10**6)
        for field in BUDGET_FIELDS
        if field != "wall_clock_seconds"
    }
    field_values["wall_clock_seconds"] = st.floats(
        min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    return st.fixed_dictionaries(
        {}, optional=field_values
    )


@st.composite
def job_requests(draw) -> JobRequest:
    """Every shape :func:`parse_job_request` accepts."""
    engine = draw(st.sampled_from(ENGINES))
    workers = (
        draw(st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
        if engine == "kernel"
        else None
    )
    budget = draw(budgets())
    if draw(st.booleans()):
        return JobRequest(
            scenario=draw(st.from_regex(r"[a-z][a-z0-9-]{0,30}", fullmatch=True)),
            engine=engine,
            workers=workers,
            budget=budget,
        )
    return JobRequest(
        problem=draw(st.text(min_size=1, max_size=200)),
        operator=draw(st.sampled_from(INLINE_OPERATORS)),
        steps=draw(st.integers(min_value=0, max_value=50)),
        policy=draw(st.sampled_from(POLICIES)),
        engine=engine,
        workers=workers,
        budget=budget,
    )


@st.composite
def job_records(draw) -> JobRecord:
    """Job records in every lifecycle state, with optional payloads."""
    state = draw(st.sampled_from(JOB_STATES))
    json_scalars = st.one_of(
        st.none(), st.booleans(), st.integers(), st.text(max_size=20)
    )
    return JobRecord(
        job_id=draw(st.from_regex(r"[0-9a-f]{16}", fullmatch=True)),
        request=draw(job_requests()),
        key=draw(st.from_regex(r"[a-z0-9-]{8,40}", fullmatch=True)),
        state=state,
        deduped=draw(st.booleans()),
        deduped_from=draw(
            st.one_of(st.none(), st.from_regex(r"[0-9a-f]{16}", fullmatch=True))
        ),
        result=draw(
            st.one_of(
                st.none(),
                st.dictionaries(st.text(max_size=10), json_scalars, max_size=4),
            )
        ),
        error=draw(
            st.one_of(
                st.none(),
                st.fixed_dictionaries(
                    {
                        "type": st.text(min_size=1, max_size=20),
                        "message": st.text(max_size=40),
                        "context": st.dictionaries(
                            st.text(max_size=10), json_scalars, max_size=3
                        ),
                    }
                ),
            )
        ),
        counters=draw(
            st.dictionaries(
                st.from_regex(r"[a-z.]{1,20}", fullmatch=True),
                st.integers(min_value=0, max_value=10**9),
                max_size=6,
            )
        ),
        events=draw(
            st.lists(
                st.dictionaries(st.text(max_size=10), json_scalars, max_size=4),
                max_size=4,
            )
        ),
    )


# ---------------------------------------------------------------------------
# Wire-format round trips
# ---------------------------------------------------------------------------

class TestRequestRoundTrip:
    @given(request=job_requests())
    @settings(max_examples=150, deadline=None)
    def test_parse_render_is_identity(self, request):
        assert parse_job_request(render_job_request(request)) == request

    @given(request=job_requests())
    @settings(max_examples=150, deadline=None)
    def test_rendered_document_is_canonical(self, request):
        """Render is a fixed point: parse -> render -> parse -> render
        is byte-identical, and survives a JSON trip."""
        document = render_job_request(request)
        once = canonical_json(document)
        again = canonical_json(
            render_job_request(parse_job_request(json.loads(once)))
        )
        assert once == again

    def test_rendered_document_omits_defaults(self):
        document = render_job_request(JobRequest(scenario="x"))
        assert document == {"scenario": "x"}


class TestRecordRoundTrip:
    @given(record=job_records())
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_is_identity(self, record):
        assert decode_job(encode_job(record)) == record

    @given(record=job_records())
    @settings(max_examples=60, deadline=None)
    def test_checkpoint_store_round_trip_is_byte_identical(
        self, record, tmp_path_factory
    ):
        """Through the sealed store and back: the re-encoded document
        (exactly what ``GET /v1/jobs/<id>`` serves) is byte-identical."""
        store = JobStore(tmp_path_factory.mktemp("jobs"))
        store.save(record)
        loaded = store.load(record.job_id)
        assert loaded == record
        assert canonical_json(encode_job(loaded)) == canonical_json(
            encode_job(record)
        )

    def test_decode_rejects_garbage(self):
        for garbage in (
            None,
            [],
            "x",
            {},
            {"job_id": "a", "request": {"scenario": "s"}, "key": "k"},
            {
                "job_id": "a",
                "request": {"scenario": "s"},
                "key": "k",
                "state": "exploded",
            },
            {
                "job_id": "a",
                "request": {"bogus": True},
                "key": "k",
                "state": "queued",
            },
        ):
            with pytest.raises(InvalidJobRequest):
                decode_job(garbage)


# ---------------------------------------------------------------------------
# Corruption handling
# ---------------------------------------------------------------------------

def make_record(job_id: str = "a" * 16) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        request=JobRequest(scenario="maximal-matching2-selfreduce"),
        key="self-reduce-2-pn-deadbeef",
        state="done",
        result={"ok": True},
    )


class TestCorruption:
    def test_torn_seal_is_evicted_not_raised(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        path = store.checkpoints.path_for(f"{JOB_STAGE_PREFIX}{record.job_id}")
        path.write_text('{"torn": ')
        assert store.load(record.job_id) is None
        assert store.corrupt_evictions == 1
        assert not path.exists()

    def test_sealed_but_undecodable_payload_is_evicted(self, tmp_path):
        """A well-sealed checkpoint that is not a job record costs the
        job, not the server."""
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        # Overwrite with a *valid* checkpoint holding a non-record.
        store.checkpoints.save(
            f"{JOB_STAGE_PREFIX}{record.job_id}", {"not": "a job"}
        )
        assert store.load(record.job_id) is None
        assert store.corrupt_evictions == 1

    def test_load_all_skips_corrupt_and_keeps_the_rest(self, tmp_path):
        store = JobStore(tmp_path)
        good = make_record("b" * 16)
        bad = make_record("c" * 16)
        store.save(good)
        store.save(bad)
        store.checkpoints.path_for(
            f"{JOB_STAGE_PREFIX}{bad.job_id}"
        ).write_text("garbage")
        records = store.load_all()
        assert [r.job_id for r in records] == [good.job_id]
        assert store.corrupt_evictions == 1

    def test_load_all_ignores_foreign_stages(self, tmp_path):
        """Only ``job-`` stages are job records; chain checkpoints
        sharing the directory are left alone."""
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        CheckpointStore(tmp_path).save("chain-step-3", {"unrelated": True})
        assert [r.job_id for r in store.load_all()] == [record.job_id]

    def test_delete_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        store.delete(record.job_id)
        store.delete(record.job_id)
        assert store.load(record.job_id) is None
        assert store.corrupt_evictions == 0
