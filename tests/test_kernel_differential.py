"""Differential tests: the kernel fast path against the reference engine.

Every operator the kernel reimplements is run side by side with the
object-based reference over the oracle corpus (classics, small
Pi_Delta(a, x) instances, seeded random constraint systems) and must
produce *equal* results — same frozenset labels, same constraints —
or fail identically.  See ``tests/oracle.py`` for the contract.
"""

import pytest

from repro.core.relaxation import all_relax_into, compare_problems
from repro.core.round_elimination import R, rename_to_strings

from tests.oracle import (
    classic_corpus,
    differential_R,
    differential_Rbar,
    differential_relabeling,
    differential_self_reduction,
    differential_speedup,
    differential_zero_round,
    full_corpus,
    random_corpus,
    scenario_corpus,
)

CORPUS = full_corpus()
CORPUS_IDS = [name for name, _ in CORPUS]
CLASSICS = classic_corpus()
CLASSIC_IDS = [name for name, _ in CLASSICS]

# Self-reduction corpus: scenario base problems plus cheap classics and
# a few random systems (one full speedup per problem rides inside).
SELF_REDUCTION_CORPUS = (
    scenario_corpus()
    + [CLASSICS[0], CLASSICS[2], CLASSICS[5]]
    + random_corpus(seed=555, count=4)
)
SELF_REDUCTION_IDS = [name for name, _ in SELF_REDUCTION_CORPUS]


@pytest.mark.parametrize("name, problem", CORPUS, ids=CORPUS_IDS)
def test_speedup_differential(name, problem):
    differential_speedup(name, problem)


@pytest.mark.parametrize("name, problem", CORPUS, ids=CORPUS_IDS)
def test_zero_round_differential(name, problem):
    differential_zero_round(name, problem)


@pytest.mark.parametrize(
    "name, problem", SELF_REDUCTION_CORPUS, ids=SELF_REDUCTION_IDS
)
def test_self_reduction_differential(name, problem):
    """condense/speedup/condense agrees between engines, end to end."""
    differential_self_reduction(name, problem)


@pytest.mark.parametrize("name, problem", CLASSICS, ids=CLASSIC_IDS)
def test_rbar_parallel_differential(name, problem):
    """The chunked multiprocessing fan-out returns the serial result."""
    intermediate = differential_R(name, problem)
    if intermediate is None:
        pytest.skip("R failed identically on both engines")
    renamed = rename_to_strings(intermediate).problem
    differential_Rbar(f"{name} renamed", renamed, workers=2)


@pytest.mark.parametrize(
    "source_index, target_index",
    [(0, 1), (0, 2), (2, 0), (3, 3), (5, 6), (1, 1)],
)
def test_relabeling_differential(source_index, target_index):
    source_name, source = CLASSICS[source_index]
    target_name, target = CLASSICS[target_index]
    differential_relabeling(f"{source_name}->{target_name}", source, target)


@pytest.mark.parametrize(
    "source_name, source", random_corpus(seed=987, count=6),
    ids=[f"random{i}" for i in range(6)],
)
def test_relabeling_differential_random(source_name, source):
    for target_name, target in random_corpus(seed=988, count=3):
        if source.delta == target.delta:
            differential_relabeling(
                f"{source_name}->{target_name}", source, target
            )


@pytest.mark.parametrize("name, problem", CLASSICS, ids=CLASSIC_IDS)
def test_compare_problems_differential(name, problem):
    """compare_problems forwards the flag into both directed searches."""
    other = CLASSICS[0][1]
    assert compare_problems(problem, other) == compare_problems(
        problem, other, use_kernel=True
    )


def test_all_relax_into_differential():
    """Definition 7 matchings over bitmasks agree with the reference."""
    for name, problem in CLASSICS[:4]:
        step = R(problem)
        configurations = list(step.node_constraint.configurations)
        targets = list(step.node_constraint.configurations)
        assert all_relax_into(configurations, targets) == all_relax_into(
            configurations, targets, use_kernel=True
        ), f"all_relax_into disagrees on {name}"
        # A strict subset of targets exercises the False branch too.
        fewer = targets[: max(1, len(targets) // 2)]
        assert all_relax_into(configurations, fewer) == all_relax_into(
            configurations, fewer, use_kernel=True
        ), f"all_relax_into (restricted) disagrees on {name}"
