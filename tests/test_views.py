"""Tests for PN views and indistinguishability."""

import random

import pytest

from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
    random_tree,
    truncated_regular_tree,
)
from repro.sim.views import (
    indistinguishable,
    is_vertex_transitive_up_to,
    view_classes,
    view_signature,
)


class TestSignatures:
    def test_radius_zero_is_degree_only(self):
        graph = path_graph(4)
        assert view_signature(graph, 0, 0) == view_signature(graph, 3, 0)
        assert view_signature(graph, 0, 0) != view_signature(graph, 1, 0)

    def test_path_middle_vs_near_end(self):
        graph = path_graph(6)
        # Nodes 2 and 3 both see degree-2 chains for radius 1.
        assert indistinguishable(graph, 2, 3, 1)
        # At radius 2, node 1 sees an endpoint; node 3 does not.
        assert not indistinguishable(graph, 1, 3, 2)

    def test_signature_deterministic(self):
        graph = truncated_regular_tree(3, 3)
        assert view_signature(graph, 0, 2) == view_signature(graph, 0, 2)


class TestCayleySymmetry:
    """The Lemma 12/15 instances are blind at every radius."""

    @pytest.mark.parametrize("radius", [0, 1, 2])
    def test_one_view_class(self, radius):
        graph = colored_port_cayley_graph(3)
        assert is_vertex_transitive_up_to(graph, radius)

    def test_all_pairs_indistinguishable(self):
        graph = colored_port_cayley_graph(2)
        for first in range(graph.n):
            for second in range(graph.n):
                assert indistinguishable(graph, first, second, 2)


class TestViewClasses:
    def test_cycle_uniform_ports_single_class(self):
        # A cycle built by our generator has alternating port patterns;
        # classes still collapse to few at radius 0 (all degree 2).
        graph = cycle_graph(6)
        assert len(view_classes(graph, 0)) == 1

    def test_tree_leaves_vs_internal(self):
        graph = truncated_regular_tree(3, 2)
        classes = view_classes(graph, 0)
        sizes = sorted(len(group) for group in classes)
        # Leaves (degree 1) and internal nodes (degree 3) split.
        assert len(classes) == 2
        assert sizes == [4, 6]

    def test_random_tree_classes_refine_with_radius(self):
        graph = random_tree(30, random.Random(5))
        coarse = len(view_classes(graph, 0))
        fine = len(view_classes(graph, 2))
        assert fine >= coarse

    def test_classes_partition_nodes(self):
        graph = truncated_regular_tree(3, 3)
        classes = view_classes(graph, 1)
        all_nodes = sorted(node for group in classes for node in group)
        assert all_nodes == list(range(graph.n))
