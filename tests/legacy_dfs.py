"""Frozen pre-optimization DFS reference (recursive, frozenset frontiers).

This module preserves, verbatim in shape, the recursive closure-based
search the kernel shipped before the iterative machine rewrite: packed
frontiers live in ``frozenset[int]``, growth re-tests every extension
against the closure set, and recursion depth equals configuration
arity.  It exists only so the parity tests can pin the optimized
iterative drivers to the old semantics — identical outputs in
identical order, and identical candidate-level grow counts (every
``grow_frontier`` / ``grow_frontier_exists`` invocation here must
correspond 1:1 to a ``grow_calls`` tick in the machine drivers' stats).

Do not "improve" this code; its value is that it does not change.
"""

from __future__ import annotations


def grow_frontier(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
    counter: list[int],
) -> frozenset[int] | None:
    """All-or-nothing growth; ``None`` on the first invalid extension."""
    counter[0] += 1
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended not in closure:
                return None
            add(extended)
    return frozenset(grown)


def grow_frontier_exists(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
    counter: list[int],
) -> frozenset[int]:
    """Keep-survivors growth; an empty result prunes the branch."""
    counter[0] += 1
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended in closure:
                add(extended)
    return frozenset(grown)


def legacy_maximization_chunk(
    candidates: tuple[int, ...],
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    first_index: int,
    counter: list[int],
) -> list[tuple[int, ...]]:
    """The pre-rewrite ``search_maximization_chunk``, with grow counting."""
    results: list[tuple[int, ...]] = []
    initial = grow_frontier(
        frozenset([0]), member_steps[first_index], closure, counter
    )
    if initial is None:
        return results

    def extend(
        start: int, chosen: list[int], frontier: frozenset[int]
    ) -> None:
        if len(chosen) == arity:
            results.append(tuple(chosen))
            return
        for index in range(start, len(candidates)):
            grown = grow_frontier(
                frontier, member_steps[index], closure, counter
            )
            if grown is None:
                continue
            chosen.append(candidates[index])
            extend(index, chosen, grown)
            chosen.pop()

    if arity == 1:
        results.append((candidates[first_index],))
    else:
        extend(first_index, [candidates[first_index]], initial)
    return results


def legacy_existential_chunk(
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    first_index: int,
    counter: list[int],
) -> list[tuple[int, ...]]:
    """The pre-rewrite ``search_existential_chunk``, with grow counting."""
    results: list[tuple[int, ...]] = []
    initial = grow_frontier_exists(
        frozenset([0]), member_steps[first_index], closure, counter
    )
    if not initial:
        return results
    if arity == 1:
        return [(first_index,)]

    def extend(
        start: int, chosen: list[int], frontier: frozenset[int]
    ) -> None:
        if len(chosen) == arity:
            results.append(tuple(chosen))
            return
        for index in range(start, len(member_steps)):
            grown = grow_frontier_exists(
                frontier, member_steps[index], closure, counter
            )
            if not grown:
                continue
            chosen.append(index)
            extend(index, chosen, grown)
            chosen.pop()

    extend(first_index, [first_index], initial)
    return results
