"""Tests for edge colorings and the coloring-aligned port numbering."""

import random

import pytest

from repro.sim.edge_coloring import (
    greedy_edge_coloring,
    is_proper_edge_coloring,
    ports_from_edge_coloring,
    tree_edge_coloring,
)
from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
    random_tree,
    truncated_regular_tree,
)


class TestTreeEdgeColoring:
    @pytest.mark.parametrize("delta,radius", [(3, 2), (4, 2), (3, 4)])
    def test_regular_tree_uses_delta_colors(self, delta, radius):
        graph = tree_edge_coloring(truncated_regular_tree(delta, radius))
        assert is_proper_edge_coloring(graph)
        used = {graph.edge_color(e) for e, _, _ in graph.edges()}
        assert used <= set(range(delta))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees(self, seed):
        graph = random_tree(40, random.Random(seed))
        tree_edge_coloring(graph)
        assert is_proper_edge_coloring(graph)

    def test_path(self):
        graph = tree_edge_coloring(path_graph(6))
        assert is_proper_edge_coloring(graph)
        assert {graph.edge_color(e) for e, _, _ in graph.edges()} <= {0, 1}

    def test_too_few_colors_rejected(self):
        with pytest.raises(ValueError):
            tree_edge_coloring(truncated_regular_tree(3, 1), colors=2)

    def test_non_tree_rejected(self):
        with pytest.raises(ValueError):
            tree_edge_coloring(cycle_graph(4))


class TestGreedyEdgeColoring:
    def test_cycle(self):
        graph = greedy_edge_coloring(cycle_graph(6))
        assert is_proper_edge_coloring(graph)

    def test_color_bound(self):
        graph = greedy_edge_coloring(truncated_regular_tree(4, 2))
        colors = {graph.edge_color(e) for e, _, _ in graph.edges()}
        assert max(colors) <= 2 * 4 - 2  # at most 2*Delta - 1 colors


class TestIsProper:
    def test_detects_conflict(self):
        graph = path_graph(3)
        graph.set_edge_color(0, 1)
        graph.set_edge_color(1, 1)  # node 1 sees color 1 twice
        assert not is_proper_edge_coloring(graph)

    def test_uncolored_not_proper(self):
        assert not is_proper_edge_coloring(path_graph(3))


class TestPortsFromColoring:
    def test_cayley_is_fixed_point(self):
        graph = colored_port_cayley_graph(3)
        aligned = ports_from_edge_coloring(graph)
        for edge_id, _, _ in aligned.edges():
            _, pu, _, pv = aligned.endpoints(edge_id)
            assert pu == pv == aligned.edge_color(edge_id)

    def test_requires_prefix_colors(self):
        # A path colored 0,1 has a middle node with colors {0,1} but the
        # endpoints have degree 1 and see color 1 -> not a 0-prefix.
        graph = path_graph(3)
        graph.set_edge_color(0, 0)
        graph.set_edge_color(1, 1)
        with pytest.raises(ValueError):
            ports_from_edge_coloring(graph)

    def test_requires_proper(self):
        with pytest.raises(ValueError):
            ports_from_edge_coloring(path_graph(3))
