"""Zero-round solvability tests (Lemmas 12 and 15)."""

from fractions import Fraction

import pytest

from repro.core.problem import Problem
from repro.core.solvability import (
    lemma15_condition_holds,
    randomized_zero_round_failure_bound,
    zero_round_solvable_pn,
    zero_round_solvable_symmetric,
    zero_round_witness_pn,
    zero_round_witness_symmetric,
)
from repro.problems.classic import (
    coloring_problem,
    perfect_matching_problem,
    sinkless_orientation_problem,
)
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


class TestLemma12:
    """Pi_Delta(a, x) is not 0-round solvable for x <= Delta-1, a >= 1."""

    @pytest.mark.parametrize(
        "delta,a,x",
        [(3, 1, 0), (4, 2, 1), (5, 5, 4), (6, 1, 5), (4, 4, 3)],
    )
    def test_family_not_zero_round_solvable(self, delta, a, x):
        problem = family_problem(delta, a, x)
        assert not zero_round_solvable_symmetric(problem)
        assert not zero_round_solvable_pn(problem)

    def test_family_becomes_solvable_at_boundary(self):
        """With x = Delta the configuration X^Delta is self-compatible:
        the problem degenerates, matching Lemma 12's x <= Delta - 1."""
        problem = family_problem(4, 1, 4)
        assert zero_round_solvable_symmetric(problem)

    def test_family_becomes_solvable_with_a_zero(self):
        """With a = 0 the type-3 configuration is X^Delta, again
        matching Lemma 12's requirement a >= 1."""
        problem = family_problem(4, 0, 1)
        assert zero_round_solvable_symmetric(problem)

    def test_witness_configuration_reported(self):
        problem = family_problem(4, 1, 4)
        witness = zero_round_witness_symmetric(problem)
        assert witness is not None
        assert witness.support() <= problem.self_compatible_labels()

    def test_mis_not_zero_round_solvable(self):
        assert not zero_round_solvable_symmetric(mis_problem(3))
        assert zero_round_witness_pn(mis_problem(3)) is None


class TestGeneralPN:
    def test_symmetric_weaker_than_general(self):
        """A PN-solvable problem is symmetric-solvable (the instance
        family is smaller), never conversely."""
        for problem in [
            mis_problem(3),
            sinkless_orientation_problem(3),
            perfect_matching_problem(3),
            family_problem(4, 2, 1),
        ]:
            if zero_round_solvable_pn(problem):
                assert zero_round_solvable_symmetric(problem)

    def test_free_problem_solvable(self):
        problem = Problem.from_text(["A^3"], ["A A"])
        assert zero_round_solvable_pn(problem)
        assert zero_round_solvable_symmetric(problem)

    def test_sinkless_orientation_not_zero_round(self):
        assert not zero_round_solvable_pn(sinkless_orientation_problem(3))

    def test_coloring_not_zero_round(self):
        assert not zero_round_solvable_pn(coloring_problem(3, 4))


class TestLemma15:
    def test_failure_bound_for_family(self):
        """|N| = 3 configurations: failure probability >= 1/(3 Delta)^2."""
        problem = family_problem(5, 3, 1)
        bound = randomized_zero_round_failure_bound(problem)
        assert bound == Fraction(1, (3 * 5) ** 2)

    @pytest.mark.parametrize("delta", [3, 4, 5, 8, 16])
    def test_bound_exceeds_one_over_delta8(self, delta):
        problem = family_problem(delta, max(1, delta // 2), 1)
        assert lemma15_condition_holds(problem)

    def test_bound_zero_when_solvable(self):
        problem = family_problem(4, 1, 4)
        assert randomized_zero_round_failure_bound(problem) == 0
        assert not lemma15_condition_holds(problem)

    def test_bound_counts_configurations(self):
        problem = mis_problem(4)  # 2 node configurations
        assert randomized_zero_round_failure_bound(problem) == Fraction(1, (2 * 4) ** 2)
