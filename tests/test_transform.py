"""Tests for line graphs, induced subgraphs, and the Sec. 1.1 claims."""

import random

import pytest

from repro.algorithms.greedy import greedy_coloring, greedy_mis
from repro.algorithms.sweep import run_kods_sweep
from repro.sim.generators import (
    cycle_graph,
    path_graph,
    random_tree_bounded_degree,
    star_graph,
    truncated_regular_tree,
)
from repro.sim.transform import (
    degeneracy_orientation,
    induced_subgraph,
    is_maximal_matching,
    line_graph,
    matching_from_line_graph_mis,
)
from repro.sim.verifiers import verify_k_degree_dominating_set, verify_mis


class TestLineGraph:
    def test_path_line_graph_is_shorter_path(self):
        result = line_graph(path_graph(5))
        assert result.graph.n == 4
        assert result.graph.m == 3
        assert result.graph.is_tree()

    def test_cycle_line_graph_is_cycle(self):
        result = line_graph(cycle_graph(6))
        assert result.graph.n == 6
        assert result.graph.is_regular(2)
        assert result.graph.girth() == 6

    def test_star_line_graph_is_complete(self):
        result = line_graph(star_graph(4))
        assert result.graph.n == 4
        assert result.graph.m == 6  # K_4

    def test_degree_bound(self):
        base = truncated_regular_tree(4, 3)
        result = line_graph(base)
        assert result.graph.max_degree() <= 2 * (base.max_degree() - 1)

    def test_mapping_roundtrip(self):
        base = truncated_regular_tree(3, 2)
        result = line_graph(base)
        for node, edge_id in enumerate(result.node_to_edge):
            assert result.edge_to_node[edge_id] == node

    def test_empty_base_rejected(self):
        from repro.sim.graph import Graph

        with pytest.raises(ValueError):
            line_graph(Graph(3))


class TestMisToMatching:
    """MIS of L(G) = maximal matching of G (Sec. 1, Sec. 1.1)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_on_random_trees(self, seed):
        base = random_tree_bounded_degree(40, 4, random.Random(seed))
        result = line_graph(base)
        mis = greedy_mis(result.graph)
        assert verify_mis(result.graph, mis).ok
        matching = matching_from_line_graph_mis(base, result, mis)
        assert is_maximal_matching(base, matching)

    def test_non_matching_detected(self):
        base = path_graph(4)
        assert not is_maximal_matching(base, {0, 1})  # share node 1

    def test_non_maximal_detected(self):
        base = path_graph(5)
        assert not is_maximal_matching(base, {0})  # edge (2,3)/(3,4) addable


class TestKodsOnLineGraphs:
    """Sec. 1.1: in a line graph, outdegree <= k implies degree O(k).

    The paper's argument: among the d S-neighbors of an edge {u, v},
    at least d/2 share one endpoint and hence form a clique with it; a
    clique of size m forces some outdegree >= (m - 1) / 2.  So
    max degree <= 4k + something small.  We check it empirically on
    random subsets of line-graph nodes, using the degeneracy
    orientation (which achieves the minimum possible max outdegree).
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_outdegree_k_implies_degree_4k(self, seed):
        rng = random.Random(seed)
        base = random_tree_bounded_degree(60, 5, rng)
        result = line_graph(base)
        selected = {
            node for node in range(result.graph.n) if rng.random() < 0.6
        }
        if not selected:
            pytest.skip("empty sample")
        subgraph, _ = induced_subgraph(result.graph, selected)
        _, k = degeneracy_orientation(subgraph)
        max_degree = (
            max(subgraph.degree(node) for node in range(subgraph.n))
            if subgraph.n
            else 0
        )
        assert max_degree <= 4 * k + 2

    def test_mis_sweep_k0_on_line_graph(self):
        base = random_tree_bounded_degree(50, 4, random.Random(3))
        result = line_graph(base)
        colors = greedy_coloring(result.graph)
        palette = max(colors) + 1
        sweep = run_kods_sweep(result.graph, colors, palette, 0)
        check = verify_k_degree_dominating_set(result.graph, sweep.selected, k=0)
        assert check.ok, check.violations


class TestDegeneracyOrientation:
    def test_tree_degeneracy_one(self):
        graph = random_tree_bounded_degree(40, 4, random.Random(1))
        orientation, degeneracy = degeneracy_orientation(graph)
        assert degeneracy == 1
        assert len(orientation) == graph.m

    def test_cycle_degeneracy_two(self):
        _, degeneracy = degeneracy_orientation(cycle_graph(7))
        assert degeneracy == 2

    def test_orientation_outdegree_bounded_by_degeneracy(self):
        base = random_tree_bounded_degree(40, 5, random.Random(2))
        graph = line_graph(base).graph
        orientation, degeneracy = degeneracy_orientation(graph)
        outdegree = [0] * graph.n
        for edge_id, u, v in graph.edges():
            head = orientation[edge_id]
            tail = u if head == v else v
            outdegree[tail] += 1
        assert max(outdegree) <= degeneracy


class TestInducedSubgraph:
    def test_induced_path(self):
        graph, mapping = induced_subgraph(path_graph(5), {1, 2, 3})
        assert graph.n == 3
        assert graph.m == 2
        assert mapping == [1, 2, 3]

    def test_isolated_nodes_kept(self):
        graph, mapping = induced_subgraph(path_graph(5), {0, 2, 4})
        assert graph.n == 3
        assert graph.m == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            induced_subgraph(path_graph(3), set())
