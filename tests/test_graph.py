"""Unit tests for the port-numbered graph substrate."""

import pytest

from repro.sim.graph import Graph


def triangle():
    return Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_ports_assigned_first_free(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.neighbor(0, 0) == 1
        assert graph.neighbor(0, 1) == 2
        assert graph.neighbor(1, 0) == 0

    def test_half_edges_know_remote_port(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        half = graph.half_edges(0)[0]
        assert half.neighbor == 1
        assert half.neighbor_port == 0
        half = graph.half_edges(2)[0]
        assert half.neighbor_port == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2).add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            graph.add_edge(1, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2).add_edge(0, 2)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Graph(0)


class TestQueries:
    def test_degree_and_max_degree(self):
        graph = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.max_degree() == 3

    def test_port_to(self):
        graph = triangle()
        for node in range(3):
            for neighbor in graph.neighbors(node):
                port = graph.port_to(node, neighbor)
                assert graph.neighbor(node, port) == neighbor

    def test_port_to_missing(self):
        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            graph.port_to(0, 2)

    def test_has_edge(self):
        graph = triangle()
        assert graph.has_edge(0, 2)
        assert not Graph.from_edges(3, [(0, 1)]).has_edge(0, 2)

    def test_edges_and_endpoints_consistent(self):
        graph = triangle()
        for edge_id, u, v in graph.edges():
            eu, pu, ev, pv = graph.endpoints(edge_id)
            assert (eu, ev) == (u, v)
            assert graph.neighbor(u, pu) == v
            assert graph.neighbor(v, pv) == u

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            triangle().neighbor(0, 5)


class TestColors:
    def test_color_roundtrip(self):
        graph = Graph(2)
        edge = graph.add_edge(0, 1, color=7)
        assert graph.edge_color(edge) == 7
        assert graph.color_at(0, 0) == 7
        assert graph.color_at(1, 0) == 7

    def test_uncolored_is_none(self):
        graph = Graph.from_edges(2, [(0, 1)])
        assert graph.edge_color(0) is None
        assert not graph.is_fully_colored()

    def test_set_edge_color(self):
        graph = Graph.from_edges(2, [(0, 1)])
        graph.set_edge_color(0, 3)
        assert graph.is_fully_colored()


class TestPortPermutation:
    def test_with_ports_swaps(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        swapped = graph.with_ports([{0: 1, 1: 0}, {0: 0}, {0: 0}])
        assert swapped.neighbor(0, 0) == 2
        assert swapped.neighbor(0, 1) == 1
        # remote ports stay consistent
        assert swapped.half_edges(1)[0].neighbor_port == 1

    def test_with_ports_preserves_colors(self):
        graph = Graph(2)
        graph.add_edge(0, 1, color=4)
        permuted = graph.with_ports([{0: 0}, {0: 0}])
        assert permuted.color_at(0, 0) == 4

    def test_non_permutation_rejected(self):
        graph = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            graph.with_ports([{0: 1}, {0: 0}])


class TestStructure:
    def test_is_tree(self):
        assert Graph.from_edges(4, [(0, 1), (1, 2), (1, 3)]).is_tree()
        assert not triangle().is_tree()
        assert not Graph.from_edges(4, [(0, 1), (2, 3)]).is_tree()

    def test_is_connected(self):
        assert triangle().is_connected()
        assert not Graph.from_edges(3, [(0, 1)]).is_connected()

    def test_is_regular(self):
        assert triangle().is_regular()
        assert triangle().is_regular(2)
        assert not triangle().is_regular(3)
        assert not Graph.from_edges(3, [(0, 1), (1, 2)]).is_regular()

    def test_girth_triangle(self):
        assert triangle().girth() == 3

    def test_girth_tree_is_infinite(self):
        assert Graph.from_edges(3, [(0, 1), (1, 2)]).girth() == float("inf")

    def test_girth_four_cycle(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert graph.girth() == 4
