"""AN003 fixture: a lock-order cycle and an unguarded cross-thread write.

``poll`` acquires ``_lock`` then ``_aux``; ``drain`` acquires them in
the opposite order — the classic AB/BA deadlock.  Both threads also
bump ``_pulse`` outside any lock, while ``_jobs`` (always guarded) and
``_beacon`` (waived) show the clean and the waived shapes.
"""

from __future__ import annotations

import threading


class Coordinator:
    """Two worker threads sharing a pair of locks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self._jobs = 0
        self._pulse = 0
        self._beacon = 0
        threading.Thread(target=self.poll, daemon=True).start()
        threading.Thread(target=self.drain, daemon=True).start()

    def poll(self) -> None:
        with self._lock:
            with self._aux:
                self._jobs += 1
        self._pulse += 1
        self._beacon = 1  # analysis: disable=AN003 -- advisory heartbeat, monotonic flag

    def drain(self) -> None:
        with self._aux:
            with self._lock:
                self._jobs -= 1
        self._pulse -= 1
        self._beacon = 0  # analysis: disable=AN003 -- advisory heartbeat, monotonic flag
