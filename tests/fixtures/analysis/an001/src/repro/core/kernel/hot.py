"""AN001 fixture: a hot-path closure reaching a set-allocating helper.

``dfs`` itself is allocation-free (RL010-clean); the violation only
exists *across* the call edge into ``_expand``, which is exactly what
AN001 adds over the per-file rule.
"""

from __future__ import annotations


# hotpath
def dfs(frontier: int, rows: tuple[int, ...]) -> int:
    total = 0
    while frontier:
        low = frontier & -frontier
        total |= _expand(low, rows)
        total ^= _boot_table(low)
        frontier ^= low
    return total


def _expand(mask: int, rows: tuple[int, ...]) -> int:
    grown = set()
    for row in rows:
        if row & mask:
            grown.add(row)
    result = 0
    for row in sorted(grown):
        result |= row
    return result


def _boot_table(mask: int) -> int:
    table = {mask}  # analysis: disable=AN001 -- one-off table build, amortized across the run
    return len(table)
