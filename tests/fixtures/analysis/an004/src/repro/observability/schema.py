"""AN004 fixture: one dead counter, one single-engine semantic counter."""

from __future__ import annotations

SEMANTIC_COUNTERS = (
    "labels.in",
    "node.configs.out",
)

TIMING_COUNTERS = (
    "cache.hit",
    "cache.ghost",
    "cache.legacy",  # analysis: disable=AN004 -- retired in schema v2, kept for replay decoding
)
