"""AN004 fixture: the kernel engine's emission sites.

``node.configs.out`` is the seeded violation — a *semantic* counter the
reference engine never emits, so the drift gate can't compare engines.
"""

from __future__ import annotations


def kernel_pass(span, configs: int) -> int:
    span.add("labels.in")
    span.add("node.configs.out")
    span.add("cache.hit")
    return configs
