"""AN004 fixture: the reference engine's emission sites."""

from __future__ import annotations


def eliminate(span, labels: int) -> int:
    span.add("labels.in")
    return labels
