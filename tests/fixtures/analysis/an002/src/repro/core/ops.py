"""AN002 fixture: one unchecked growth loop, one waived, one checked."""

from __future__ import annotations

from repro.robustness.budget import check_configurations


def explode(problem: object) -> list:
    results: list = []
    while problem:
        results.append(mutate(problem))
        problem = results[-1]
    return results


def condense(problem: object) -> list:
    merged: list = []
    # analysis: unbounded-ok(one pass over an already-checked alphabet)
    while problem:
        merged.append(mutate(problem))
        problem = None
    return merged


def rebuild(problem: object) -> list:
    rebuilt: list = []
    while problem:
        check_configurations(len(rebuilt), phase="rebuild")
        rebuilt.append(mutate(problem))
        problem = None
    return rebuilt


def mutate(problem: object) -> object:
    return problem
