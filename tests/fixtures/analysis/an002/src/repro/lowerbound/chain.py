"""AN002 fixture: the governed entry point threading a budget."""

from __future__ import annotations

from repro.core.ops import condense, explode, rebuild
from repro.robustness.budget import governed


def run(problem: object, budget: object) -> list:
    with governed(budget):
        return drive(problem)


def drive(problem: object) -> list:
    return explode(problem) + condense(problem) + rebuild(problem)
