"""Tests for relaxations (Definition 7) and 0-round reduction witnesses."""

from hypothesis import given, strategies as st

from repro.core.configurations import Configuration
from repro.core.relaxation import (
    all_relax_into,
    can_relax,
    find_label_relabeling,
    find_upgrade_reduction,
    relaxation_witness,
)
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem


def sets(*parts):
    return Configuration([frozenset(part) for part in parts])


class TestCanRelax:
    def test_reflexive(self):
        config = sets("M", "OX", "OX")
        assert can_relax(config, config)

    def test_pointwise_superset(self):
        assert can_relax(sets("M", "O"), sets("MX", "OX"))

    def test_needs_permutation(self):
        # M fits only into the second slot, O only into the first.
        assert can_relax(sets("M", "O"), sets("OX", "MX"))

    def test_fails_when_no_matching(self):
        assert not can_relax(sets("M", "M"), sets("MX", "O"))

    def test_arity_mismatch(self):
        assert not can_relax(sets("M"), sets("M", "M"))

    def test_antisymmetric_on_distinct(self):
        big = sets("MOX", "MOX")
        small = sets("M", "O")
        assert can_relax(small, big)
        assert not can_relax(big, small)

    def test_witness_permutation_valid(self):
        source = sets("M", "O", "P")
        target = sets("PX", "MX", "OX")
        rho = relaxation_witness(source, target)
        assert rho is not None
        for i, label_set in enumerate(source.items):
            assert label_set <= target.items[rho[i]]

    def test_witness_none_when_impossible(self):
        assert relaxation_witness(sets("M", "M"), sets("M", "O")) is None

    @given(st.lists(st.sampled_from(["M", "O", "X", "MO", "OX", "MOX"]),
                    min_size=1, max_size=4))
    def test_relaxing_to_full_sets_always_works(self, parts):
        source = Configuration([frozenset(part) for part in parts])
        target = Configuration([frozenset("MOX")] * len(parts))
        assert can_relax(source, target)

    def test_all_relax_into(self):
        sources = [sets("M", "O"), sets("O", "O")]
        targets = [sets("MX", "OX"), sets("OX", "OX")]
        assert all_relax_into(sources, targets)
        assert not all_relax_into([sets("P", "P")], targets)


class TestLabelRelabeling:
    def test_identity_on_same_problem(self):
        problem = mis_problem(3)
        mapping = find_label_relabeling(problem, problem)
        assert mapping is not None

    def test_into_renamed_problem(self):
        problem = mis_problem(3)
        renamed = problem.rename({"M": "a", "P": "b", "O": "c"})
        mapping = find_label_relabeling(problem, renamed)
        assert mapping == {"M": "a", "P": "b", "O": "c"}

    def test_no_map_into_harder_problem(self):
        # MIS with Delta=3 cannot be relabeled into perfect matching:
        # M^3 has no image (matching nodes need exactly one M).
        from repro.problems.classic import perfect_matching_problem

        assert find_label_relabeling(mis_problem(3), perfect_matching_problem(3)) is None

    def test_delta_mismatch(self):
        assert find_label_relabeling(mis_problem(3), mis_problem(4)) is None


class TestCompareProblems:
    def test_equivalent_after_renaming(self):
        from repro.core.relaxation import compare_problems

        problem = mis_problem(3)
        renamed = problem.rename({"M": "a", "P": "b", "O": "c"})
        assert compare_problems(problem, renamed) == "equivalent"

    def test_restriction_is_easier(self):
        """Pi with an extra always-allowed label is easier than without:
        solutions of the smaller problem are solutions of the larger."""
        from repro.core.problem import Problem
        from repro.core.relaxation import compare_problems

        strict = mis_problem(3)
        relaxed = Problem.from_text(
            ["M^3", "P O^2", "W^3"],
            ["M [PO]", "O O", "W [MPOW]"],
        )
        assert compare_problems(strict, relaxed) == "first_easier"

    def test_incomparable(self):
        from repro.core.relaxation import compare_problems
        from repro.problems.classic import (
            perfect_matching_problem,
            sinkless_orientation_problem,
        )

        outcome = compare_problems(
            perfect_matching_problem(3), sinkless_orientation_problem(3)
        )
        assert outcome == "incomparable"


class TestUpgradeReduction:
    def test_lemma11_instance(self):
        """Pi(5, 4, 1) upgrades into Pi(5, 2, 2): decrease a, increase x
        (Lemma 11) — relabel surplus M and A edges to X."""
        source = family_problem(5, 4, 1)
        target = family_problem(5, 2, 2)
        witnesses = find_upgrade_reduction(source, target)
        assert witnesses is not None
        assert set(witnesses) == set(source.node_constraint.configurations)

    def test_wrong_direction_fails(self):
        """Increasing a (or decreasing x) is not a 0-round upgrade."""
        source = family_problem(5, 2, 2)
        target = family_problem(5, 4, 1)
        assert find_upgrade_reduction(source, target) is None

    def test_same_problem_is_upgradable(self):
        problem = family_problem(4, 2, 1)
        assert find_upgrade_reduction(problem, problem) is not None
