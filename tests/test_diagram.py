"""Diagram tests: Figures 1 and 4 of the paper, plus right-closed sets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.diagram import Diagram, edge_diagram, node_diagram, right_closed_sets
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem
from repro.robustness.errors import InvalidProblem


class TestFigure1MIS:
    """Figure 1: in MIS, O is stronger than P; M is unrelated to both."""

    @pytest.fixture
    def diagram(self):
        return edge_diagram(mis_problem(3))

    def test_o_stronger_than_p(self, diagram):
        assert diagram.stronger("O", "P")
        assert not diagram.stronger("P", "O")

    def test_m_unrelated(self, diagram):
        for other in ("P", "O"):
            assert not diagram.at_least_as_strong("M", other)
            assert not diagram.at_least_as_strong(other, "M")

    def test_hasse_edges_exactly_p_to_o(self, diagram):
        assert diagram.hasse_edges() == {("P", "O")}

    def test_right_closed_sets(self, diagram):
        expected = {
            frozenset("M"),
            frozenset("O"),
            frozenset("MO"),
            frozenset("PO"),
            frozenset("MPO"),
        }
        assert set(diagram.right_closed_sets()) == expected


class TestFigure4Family:
    """Figure 4: the edge diagram of Pi_Delta(a, x) is P -> A -> O -> X
    with M -> X on the side."""

    @pytest.fixture
    def diagram(self):
        return edge_diagram(family_problem(5, 3, 1))

    def test_chain(self, diagram):
        assert diagram.stronger("A", "P")
        assert diagram.stronger("O", "A")
        assert diagram.stronger("X", "O")
        assert diagram.stronger("X", "M")

    def test_hasse_edges(self, diagram):
        assert diagram.hasse_edges() == {
            ("P", "A"),
            ("A", "O"),
            ("O", "X"),
            ("M", "X"),
        }

    def test_m_not_comparable_to_chain_interior(self, diagram):
        for label in ("P", "A", "O"):
            assert not diagram.at_least_as_strong("M", label)
            assert not diagram.at_least_as_strong(label, "M")

    def test_right_closed_sets_match_lemma6(self, diagram):
        """All possible right-closed sets listed in the proof of Lemma 6."""
        expected = {
            frozenset("X"),
            frozenset("MX"),
            frozenset("OX"),
            frozenset("MOX"),
            frozenset("AOX"),
            frozenset("MAOX"),
            frozenset("PAOX"),
            frozenset("MPAOX"),
        }
        assert set(diagram.right_closed_sets()) == expected

    def test_diagram_stable_across_parameters(self):
        """The edge constraint does not depend on a, x — nor does Fig. 4."""
        reference = edge_diagram(family_problem(4, 2, 1)).hasse_edges()
        for a, x in [(3, 0), (4, 2), (2, 2)]:
            assert edge_diagram(family_problem(4, a, x)).hasse_edges() == reference


class TestDiagramProperties:
    def test_strength_is_reflexive(self):
        diagram = edge_diagram(mis_problem(3))
        for label in "MPO":
            assert diagram.at_least_as_strong(label, label)

    def test_strength_is_transitive(self):
        diagram = edge_diagram(family_problem(4, 2, 1))
        labels = diagram.labels
        for a in labels:
            for b in labels:
                for c in labels:
                    if diagram.at_least_as_strong(a, b) and diagram.at_least_as_strong(
                        b, c
                    ):
                        assert diagram.at_least_as_strong(a, c)

    def test_successors_of_strongest_label_empty(self):
        diagram = edge_diagram(family_problem(4, 2, 1))
        assert diagram.successors("X") == frozenset()

    def test_is_right_closed(self):
        diagram = edge_diagram(family_problem(4, 2, 1))
        assert diagram.is_right_closed({"X"})
        assert diagram.is_right_closed({"A", "O", "X"})
        assert not diagram.is_right_closed({"A"})
        assert not diagram.is_right_closed({"P", "O", "X"})  # misses A

    def test_right_closed_sets_helper(self):
        problem = mis_problem(3)
        sets = right_closed_sets(problem.edge_constraint, problem.alphabet)
        assert frozenset("O") in sets

    def test_node_diagram_mis(self):
        # In the MIS node constraint M appears only in M^Delta, and P/O
        # only in P O^(Delta-1): no label can replace another.
        diagram = node_diagram(mis_problem(3))
        assert diagram.hasse_edges() == frozenset()

    @given(st.integers(min_value=2, max_value=5))
    def test_full_alphabet_always_right_closed(self, delta):
        problem = mis_problem(delta)
        diagram = edge_diagram(problem)
        assert diagram.is_right_closed(set(problem.alphabet))

    def test_missing_label_is_named_in_error(self):
        # A query about a label the diagram was never built over must
        # name the offender, not die with a bare KeyError.
        problem = mis_problem(3)
        diagram = edge_diagram(problem)
        with pytest.raises(InvalidProblem, match="label Z is missing"):
            diagram.at_least_as_strong("Z", "M")
        with pytest.raises(InvalidProblem, match="label Q is missing"):
            diagram.stronger("M", "Q")
        try:
            diagram.equivalent("W", "M")
        except InvalidProblem as error:
            assert error.context["label"] == "W"
        else:
            raise AssertionError("expected InvalidProblem")
