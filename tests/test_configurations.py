"""Unit tests for configurations, disjunctions, and the condensed parser."""

import pytest
from hypothesis import given, strategies as st

from repro.core.configurations import (
    CondensedConfiguration,
    Configuration,
    Disjunction,
    parse_condensed,
)

LABELS = st.sampled_from(["M", "P", "O", "A", "X"])


class TestConfiguration:
    def test_order_does_not_matter(self):
        assert Configuration("MPO") == Configuration("OPM")

    def test_hash_consistent_with_equality(self):
        assert hash(Configuration("MPO")) == hash(Configuration("POM"))

    def test_multiplicity_matters(self):
        assert Configuration("MMO") != Configuration("MOO")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Configuration([])

    def test_arity(self):
        assert Configuration("MMXX").arity == 4

    def test_counts(self):
        assert Configuration("MMX").counts() == {"M": 2, "X": 1}

    def test_support(self):
        assert Configuration("MMX").support() == {"M", "X"}

    def test_replace_one(self):
        assert Configuration("MMX").replace_one("M", "X") == Configuration("MXX")

    def test_replace_one_missing_label_raises(self):
        with pytest.raises(ValueError):
            Configuration("MX").replace_one("P", "X")

    def test_replace_all(self):
        renamed = Configuration("MPX").replace_all({"M": "A", "P": "B"})
        assert renamed == Configuration("ABX")

    def test_with_counts(self):
        adjusted = Configuration("AAXX").with_counts({"A": -1, "X": 1})
        assert adjusted == Configuration("AXXX")

    def test_with_counts_negative_raises(self):
        with pytest.raises(ValueError):
            Configuration("AX").with_counts({"A": -2})

    def test_render_uses_exponents(self):
        assert Configuration("MMMX").render() == "M^3 X"

    def test_frozenset_labels_supported(self):
        config = Configuration([frozenset("MX"), frozenset("O")])
        assert frozenset("MX") in config

    @given(st.lists(LABELS, min_size=1, max_size=6))
    def test_canonical_under_permutation(self, labels):
        assert Configuration(labels) == Configuration(list(reversed(labels)))

    @given(st.lists(LABELS, min_size=1, max_size=6))
    def test_roundtrip_via_counts(self, labels):
        config = Configuration(labels)
        assert Configuration(config.counts().elements()) == config


class TestDisjunction:
    def test_membership(self):
        assert "P" in Disjunction("PO")
        assert "M" not in Disjunction("PO")

    def test_render_single(self):
        assert Disjunction("M").render() == "M"

    def test_render_multi_sorted(self):
        assert Disjunction("OP").render() == "[OP]"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Disjunction([])


class TestCondensedConfiguration:
    def test_expand_mis_edge(self):
        condensed = CondensedConfiguration.from_groups((("M",), 1), (("P", "O"), 1))
        assert condensed.expand() == {Configuration("MP"), Configuration("MO")}

    def test_expand_deduplicates(self):
        condensed = CondensedConfiguration.from_groups((("P", "O"), 2))
        assert condensed.expand() == {
            Configuration("PP"),
            Configuration("PO"),
            Configuration("OO"),
        }

    def test_arity(self):
        condensed = CondensedConfiguration.from_groups((("M",), 3), (("P", "O"), 2))
        assert condensed.arity == 5

    def test_contains_matches_expand(self):
        condensed = CondensedConfiguration.from_groups((("M", "X"), 2), (("P", "O"), 1))
        expanded = condensed.expand()
        for config in expanded:
            assert condensed.contains(config)
        assert not condensed.contains(Configuration("PPP"))
        assert not condensed.contains(Configuration("MX"))

    def test_contains_needs_matching_not_greedy(self):
        # Slots [MP] and [M]: the configuration "M P" fits only if M
        # takes the [M] slot; a greedy left-to-right assignment fails.
        condensed = CondensedConfiguration.from_groups((("M", "P"), 1), (("M",), 1))
        assert condensed.contains(Configuration("MP"))

    def test_zero_exponent_dropped(self):
        condensed = CondensedConfiguration.from_groups((("M",), 2), (("X",), 0))
        assert condensed.arity == 2

    def test_render(self):
        condensed = CondensedConfiguration.from_groups((("M",), 2), (("P", "O"), 1))
        assert condensed.render() == "M^2 [OP]"


class TestParser:
    def test_simple(self):
        assert parse_condensed("M^3").expand() == {Configuration("MMM")}

    def test_disjunction(self):
        assert parse_condensed("M [PO]").expand() == {
            Configuration("MP"),
            Configuration("MO"),
        }

    def test_whitespace_optional(self):
        assert parse_condensed("M[PO]") == parse_condensed("M [PO]")

    def test_exponent_on_disjunction(self):
        parsed = parse_condensed("[PO]^2")
        assert parsed == CondensedConfiguration.from_groups((("P", "O"), 2))

    def test_multichar_labels(self):
        parsed = parse_condensed("(MX)^2 (AOX)")
        assert parsed.expand() == {Configuration(["MX", "MX", "AOX"])}

    def test_multichar_in_disjunction(self):
        parsed = parse_condensed("[(MX)O]")
        assert parsed.expand() == {Configuration(["MX"]), Configuration(["O"])}

    def test_paper_lemma6_style(self):
        parsed = parse_condensed("[PQ] [OUABPQ]^3")
        assert parsed.arity == 4
        assert Configuration("QOOO") in parsed.expand()

    @pytest.mark.parametrize(
        "bad",
        ["", "  ", "M^", "[", "[]", "(", "()", "M]", "^2", "[PO", "(AB"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_condensed(bad)

    def test_roundtrip_render_parse(self):
        original = parse_condensed("M^2 [OP] X")
        assert parse_condensed(original.render()) == original
