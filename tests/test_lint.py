"""Tests for reprolint: fixtures, suppression, discovery, and self-check.

Each rule has a fixture triple under ``tests/lint_fixtures/<rule>/``
mirroring the real tree's layout (``src/repro/<package>/...``), so the
path-scoping logic runs identically over fixtures and product code:

* ``violating.py`` — must yield that rule's code (and only it),
* ``clean.py`` — the idiomatic fix, no violations,
* ``suppressed.py`` — the violation under ``# reprolint: disable=...``.

The self-check test then pins the shipped tree itself at zero
violations — the same gate CI runs via ``python -m repro.lint``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    discover,
    is_suppressed,
    lint_file,
    lint_paths,
    parse_suppressions,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

RULE_CODES = [rule.code for rule in RULES]

#: rule code -> directory of its fixture triple (mirrors real scoping).
FIXTURE_DIRS = {
    "RL001": FIXTURES / "rl001" / "src" / "repro" / "analysis",
    "RL002": FIXTURES / "rl002" / "src" / "repro" / "sim",
    "RL003": FIXTURES / "rl003" / "src" / "repro" / "core" / "kernel",
    "RL004": FIXTURES / "rl004" / "src" / "repro" / "observability",
    "RL005": FIXTURES / "rl005" / "src" / "repro" / "robustness",
    "RL006": FIXTURES / "rl006" / "src" / "repro" / "lowerbound",
    "RL007": FIXTURES / "rl007" / "src" / "repro" / "analysis",
    "RL008": FIXTURES / "rl008" / "src" / "repro" / "core",
    "RL009": FIXTURES / "rl009" / "src" / "repro" / "scenarios",
    "RL010": FIXTURES / "rl010" / "src" / "repro" / "core" / "kernel",
}


# ---------------------------------------------------------------------------
# The catalogue itself
# ---------------------------------------------------------------------------

def test_catalogue_is_complete_and_ordered():
    assert RULE_CODES == [f"RL{i:03d}" for i in range(1, 11)]
    assert len({rule.name for rule in RULES}) == len(RULES)
    for rule in RULES:
        assert rule.summary


def test_every_rule_has_a_fixture_triple():
    for code in RULE_CODES:
        directory = FIXTURE_DIRS[code]
        for kind in ("violating", "clean", "suppressed"):
            assert (directory / f"{kind}.py").is_file(), (code, kind)


# ---------------------------------------------------------------------------
# Per-rule fixtures
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("code", RULE_CODES)
def test_violating_fixture_trips_exactly_its_rule(code):
    report = lint_file(str(FIXTURE_DIRS[code] / "violating.py"))
    assert report.error is None
    assert report.violations, f"{code} fixture yielded nothing"
    assert {violation.code for violation in report.violations} == {code}


@pytest.mark.parametrize("code", RULE_CODES)
def test_clean_fixture_is_clean(code):
    report = lint_file(str(FIXTURE_DIRS[code] / "clean.py"))
    assert report.error is None
    assert report.violations == ()


@pytest.mark.parametrize("code", RULE_CODES)
def test_suppression_silences_the_rule(code):
    report = lint_file(str(FIXTURE_DIRS[code] / "suppressed.py"))
    assert report.error is None
    assert report.violations == ()


def test_rl007_scope_allows_print_under_tools():
    report = lint_file(str(FIXTURES / "rl007" / "tools" / "script.py"))
    assert report.error is None
    assert report.violations == ()


def test_violations_render_path_line_code():
    report = lint_file(str(FIXTURE_DIRS["RL001"] / "violating.py"))
    rendered = report.violations[0].render()
    assert "violating.py:6: RL001 " in rendered


# ---------------------------------------------------------------------------
# Suppression comment parsing
# ---------------------------------------------------------------------------

def test_parse_suppressions_single_and_list():
    source = (
        "x = 1  # reprolint: disable=RL001\n"
        "y = 2  # reprolint: disable=RL002, RL007 -- justified\n"
        "z = 3  # reprolint: disable=all\n"
        "w = 4  # an ordinary comment\n"
    )
    suppressions = parse_suppressions(source)
    assert is_suppressed(suppressions, 1, "RL001")
    assert not is_suppressed(suppressions, 1, "RL002")
    assert is_suppressed(suppressions, 2, "RL002")
    assert is_suppressed(suppressions, 2, "RL007")
    assert is_suppressed(suppressions, 3, "RL008")
    assert not is_suppressed(suppressions, 4, "RL001")


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def test_discover_skips_fixture_and_golden_dirs():
    files, missing = discover([str(REPO_ROOT / "tests")])
    assert not missing
    assert all("lint_fixtures" not in name for name in files)
    assert any(name.endswith("test_lint.py") for name in files)


def test_discover_reports_missing_paths():
    files, missing = discover([str(REPO_ROOT / "no-such-dir")])
    assert files == []
    assert missing == [str(REPO_ROOT / "no-such-dir")]


def test_explicitly_named_fixture_is_still_lintable():
    # Directory walks skip lint_fixtures, but naming a file directly works
    # (that is how this test module drives the fixtures).
    path = str(FIXTURE_DIRS["RL001"] / "violating.py")
    reports, missing = lint_paths([path])
    assert not missing
    assert len(reports) == 1
    assert reports[0].violations


# ---------------------------------------------------------------------------
# Self-check: the shipped tree is lint-clean
# ---------------------------------------------------------------------------

def test_shipped_tree_is_lint_clean():
    targets = [
        str(REPO_ROOT / name)
        for name in ("src", "tests", "tools", "benchmarks")
    ]
    reports, missing = lint_paths(targets)
    assert not missing
    problems = [
        violation.render()
        for report in reports
        for violation in report.violations
    ]
    errors = [report.error for report in reports if report.error]
    assert not errors, errors
    assert not problems, "\n".join(problems)


# ---------------------------------------------------------------------------
# CLI exit-code convention: 0 clean / 1 violations / 2 usage
# ---------------------------------------------------------------------------

def _run_lint(*arguments: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *arguments],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )


def test_cli_exit_0_on_clean_input():
    result = _run_lint(str(FIXTURE_DIRS["RL001"] / "clean.py"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_exit_1_on_violations():
    result = _run_lint(str(FIXTURE_DIRS["RL001"] / "violating.py"))
    assert result.returncode == 1
    assert "RL001" in result.stdout
    assert "violation" in result.stderr


@pytest.mark.parametrize("code", RULE_CODES)
def test_cli_exit_1_on_each_rules_violating_fixture(code):
    result = _run_lint(str(FIXTURE_DIRS[code] / "violating.py"))
    assert result.returncode == 1
    assert code in result.stdout


def test_cli_exit_2_on_usage_errors():
    assert _run_lint().returncode == 2
    assert _run_lint("--no-such-flag").returncode == 2
    assert _run_lint("no/such/path").returncode == 2


def test_cli_help_and_list_rules_exit_0():
    result = _run_lint("--help")
    assert result.returncode == 0
    assert "exit" in result.stdout.lower()
    listing = _run_lint("--list-rules")
    assert listing.returncode == 0
    for code in RULE_CODES:
        assert code in listing.stdout
