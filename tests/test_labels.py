"""Unit tests for labels, alphabets, and name generation."""

import pytest

from repro.core.labels import (
    Alphabet,
    fresh_names,
    render_label,
    render_label_set,
)


class TestRendering:
    def test_single_char(self):
        assert render_label("M") == "M"

    def test_multi_char_parenthesized(self):
        assert render_label("MX") == "(MX)"

    def test_frozenset_sorted(self):
        assert render_label(frozenset("XM")) == "<MX>"

    def test_nested_frozenset(self):
        label = frozenset([frozenset("MX"), frozenset("O")])
        rendered = render_label(label)
        assert rendered.startswith("<") and rendered.endswith(">")

    def test_label_set(self):
        assert render_label_set(["P", "O"]) == "[OP]"

    def test_label_set_multichar(self):
        assert render_label_set(["MX", "O"]) == "[(MX)O]"


class TestAlphabet:
    def test_order_preserved(self):
        alphabet = Alphabet("MPX")
        assert alphabet.labels == ("M", "P", "X")
        assert alphabet.index("P") == 1

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Alphabet("MM")

    def test_membership_and_length(self):
        alphabet = Alphabet("MPO")
        assert "M" in alphabet and "Z" not in alphabet
        assert len(alphabet) == 3

    def test_equality_ignores_order(self):
        assert Alphabet("MPO") == Alphabet("OPM")
        assert hash(Alphabet("MPO")) == hash(Alphabet("OPM"))

    def test_sort_key_unknown_labels_last(self):
        alphabet = Alphabet("MP")
        ordered = sorted(["Z", "P", "M"], key=alphabet.sort_key)
        assert ordered == ["M", "P", "Z"]

    def test_union(self):
        merged = Alphabet("MP").union(Alphabet("PO"))
        assert set(merged) == {"M", "P", "O"}
        assert len(merged) == 3

    def test_repr_contains_labels(self):
        assert "M" in repr(Alphabet("M"))


class TestFreshNames:
    def test_avoids_taken(self):
        names = fresh_names(3, taken={"A", "B"})
        assert names == ["C", "D", "E"]

    def test_no_duplicates(self):
        names = fresh_names(60)
        assert len(set(names)) == 60

    def test_falls_back_to_numbered(self):
        import string

        taken = set(string.ascii_uppercase + string.ascii_lowercase)
        names = fresh_names(3, taken=taken)
        assert names == ["L0", "L1", "L2"]

    def test_zero(self):
        assert fresh_names(0) == []
