"""Machine-checks of Lemma 8: Pi+ is one round easier than Pi."""

import pytest

from repro.core.configurations import parse_condensed
from repro.lowerbound.lemma8 import (
    condensed_admits_counts,
    verify_lemma8_argument,
    verify_lemma8_direct,
)


class TestDirectVerification:
    """Full Rbar(R(Pi)) computation for small Delta."""

    @pytest.mark.parametrize(
        "delta,a,x",
        [(3, 2, 0), (4, 3, 1), (4, 4, 2), (4, 2, 0)],
    )
    def test_all_configurations_relax_into_pi_rel(self, delta, a, x):
        assert verify_lemma8_direct(delta, a, x)

    @pytest.mark.slow
    def test_delta_five(self):
        assert verify_lemma8_direct(5, 3, 1)


class TestPaperArgument:
    """The paper's case analysis, executed as a checker."""

    @pytest.mark.parametrize(
        "delta,a,x",
        [
            (4, 3, 1),
            (5, 3, 1),
            (6, 4, 1),
            (8, 6, 2),
            (10, 7, 2),
            (12, 9, 3),
        ],
    )
    def test_all_facts_hold(self, delta, a, x):
        report = verify_lemma8_argument(delta, a, x)
        assert report.ok, report

    def test_report_fields(self):
        report = verify_lemma8_argument(5, 3, 1)
        assert report.no_p_implies_mubq
        assert report.no_u_implies_abpq
        assert report.no_m_implies_ouabpq
        assert report.no_b_implies_pq
        assert report.no_a_implies_ubpq
        assert report.no_m_p_u_configuration
        assert report.no_a_u_b_configuration
        assert report.pi_rel_sets_right_closed


class TestCountingHelper:
    def test_admits_simple(self):
        condensed = parse_condensed("[AB]^3 [C]^2")
        assert condensed_admits_counts(condensed, {"A": 3})
        assert condensed_admits_counts(condensed, {"A": 2, "B": 1, "C": 2})
        assert not condensed_admits_counts(condensed, {"A": 4})
        assert not condensed_admits_counts(condensed, {"C": 3})

    def test_admits_shared_groups(self):
        # A and B compete for the same 2 slots.
        condensed = parse_condensed("[AB]^2 [C]^2")
        assert not condensed_admits_counts(condensed, {"A": 2, "B": 1})
        assert condensed_admits_counts(condensed, {"A": 1, "B": 1})

    def test_admits_overflow_arity(self):
        condensed = parse_condensed("[AB]^2")
        assert not condensed_admits_counts(condensed, {"A": 2, "B": 1})

    def test_empty_requirements(self):
        condensed = parse_condensed("[AB]^2")
        assert condensed_admits_counts(condensed, {})

    def test_zero_counts_ignored(self):
        condensed = parse_condensed("[AB]^2")
        assert condensed_admits_counts(condensed, {"A": 0, "C": 0})

    def test_matching_requires_flow_not_greedy(self):
        # C fits only the second group; a greedy fill of group 2 by B fails.
        condensed = parse_condensed("[AB] [BC]")
        assert condensed_admits_counts(condensed, {"B": 1, "C": 1})
        assert not condensed_admits_counts(condensed, {"C": 2})
