"""The content-addressed operator cache (repro.core.cache).

Four contracts, each tested here:

* **Canonical form** — :func:`fingerprint` is invariant under label
  renaming and *complete*: two corpus problems share a fingerprint
  exactly when :meth:`Problem.find_isomorphism` finds a witness.
* **Transparency** — cached, uncached-kernel, and reference engines
  produce identical problems (or identical ``InvalidProblem``
  verdicts) over the full differential corpus, and warm reruns of
  ``run_chain`` / ``build_certificate`` persist byte-identical
  checkpoints and render identically (modulo the observational
  ``cache:`` / ``trace:`` provenance lines).
* **Robustness** — a torn or tampered on-disk entry is detected by its
  seal, evicted, and recomputed, never trusted; a budget trip in the
  middle of a disk write leaves no partial entry behind.
* **Typed misuse** — requesting ``workers`` without ``use_kernel``
  raises :class:`EngineMisuse` (still a ``ValueError``) from R, Rbar,
  and speedup.
"""

import random

import pytest

from repro.core import io as core_io
from repro.core.cache import (
    ENGINE_VERSION,
    OperatorCache,
    cache_key,
    cached_problem_operator,
    caching,
    canonical_form,
    fingerprint,
)
from repro.core.relaxation import find_label_relabeling
from repro.core.round_elimination import R, Rbar, rename_to_strings, speedup
from repro.core.solvability import zero_round_solvable_pn
from repro.lowerbound.certificate import build_certificate
from repro.lowerbound.sequence import run_chain
from repro.observability.metrics import total_counters
from repro.observability.schema import TIMING_COUNTERS
from repro.observability.trace import Tracer, tracing
from repro.problems.mis import mis_problem
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import (
    BudgetExceeded,
    EngineMisuse,
    InvalidProblem,
)

from tests.faults import corrupt_checkpoint
from tests.oracle import (
    assert_same_outcome,
    full_corpus,
    relabeling_is_valid,
)


def _random_renaming(problem, rng):
    """A bijection of the alphabet onto shuffled fresh string labels."""
    labels = list(problem.alphabet)
    fresh = [f"ren{index}" for index in range(len(labels))]
    rng.shuffle(fresh)
    return dict(zip(labels, fresh))


# ---------------------------------------------------------------------------
# Canonical form and fingerprint
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_invariant_under_renaming(self):
        """fingerprint(p) == fingerprint(p.rename(m)) for random m."""
        rng = random.Random(20210726)
        for name, problem in full_corpus():
            expected = fingerprint(problem)
            for _ in range(3):
                renamed = problem.rename(
                    _random_renaming(problem, rng), name=f"{name} renamed"
                )
                assert fingerprint(renamed) == expected, name

    def test_complete_for_isomorphism(self):
        """Fingerprints collide exactly on isomorphic corpus pairs."""
        corpus = full_corpus()
        prints = [(name, p, fingerprint(p)) for name, p in corpus]
        for i, (name_a, a, print_a) in enumerate(prints):
            for name_b, b, print_b in prints[i + 1:]:
                isomorphic = a.find_isomorphism(b) is not None
                assert (print_a == print_b) == isomorphic, (
                    f"{name_a} vs {name_b}: fingerprint equality "
                    f"{print_a == print_b} but isomorphic={isomorphic}"
                )

    def test_canonical_form_is_memoized(self):
        problem = mis_problem(3)
        assert canonical_form(problem) is canonical_form(problem)

    def test_key_schema_includes_engine_version(self):
        digest = fingerprint(mis_problem(3))
        assert cache_key("R", digest) == f"R-v{ENGINE_VERSION}-{digest}"


# ---------------------------------------------------------------------------
# Typed misuse (workers without the kernel engine)
# ---------------------------------------------------------------------------

class TestEngineMisuse:
    @pytest.mark.parametrize("operator", [R, Rbar, speedup])
    def test_workers_without_kernel_is_typed(self, operator):
        problem = mis_problem(3)
        with pytest.raises(EngineMisuse) as caught:
            operator(problem, workers=2)
        assert isinstance(caught.value, ValueError)  # back-compat


# ---------------------------------------------------------------------------
# The two-tier store
# ---------------------------------------------------------------------------

class TestOperatorCacheStore:
    def test_memory_lru_evicts_oldest(self):
        store = OperatorCache(max_entries=2)
        store.store("a", {"value": 1})
        store.store("b", {"value": 2})
        assert store.lookup("a") == {"value": 1}  # refreshes "a"
        store.store("c", {"value": 3})
        assert store.lookup("b") is None  # evicted, not "a"
        assert store.lookup("a") == {"value": 1}

    def test_disk_tier_round_trips(self, tmp_path):
        OperatorCache(tmp_path).store("key", {"value": 41})
        fresh = OperatorCache(tmp_path)
        assert fresh.lookup("key") == {"value": 41}
        assert fresh.hits == 1

    def test_corrupt_disk_entry_evicted_and_recomputed(self, tmp_path):
        first = OperatorCache(tmp_path)
        first.store("key", {"value": 41})
        corrupt_checkpoint(first.path_for("key"))
        fresh = OperatorCache(tmp_path)
        assert fresh.lookup("key") is None  # never trusted
        assert fresh.corrupt_evictions == 1
        assert not fresh.path_for("key").exists()  # evicted
        fresh.store("key", {"value": 41})  # recompute path works
        assert OperatorCache(tmp_path).lookup("key") == {"value": 41}

    def test_budget_trip_mid_write_leaves_no_partial_entry(
        self, tmp_path, monkeypatch
    ):
        def tripping_replace(source, destination):
            raise BudgetExceeded("out of fuel", phase="cache-write")

        monkeypatch.setattr(core_io.os, "replace", tripping_replace)
        store = OperatorCache(tmp_path)
        with pytest.raises(BudgetExceeded):
            store.store("key", {"value": 41})
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []  # no entry, no temp file
        assert OperatorCache(tmp_path).lookup("key") is None


# ---------------------------------------------------------------------------
# Memoized operators: transparency and transport
# ---------------------------------------------------------------------------

class TestCachedOperators:
    def test_warm_r_identical_to_cold_and_uncached(self):
        problem = mis_problem(4)
        plain = R(problem)
        with caching(OperatorCache()) as store:
            cold = R(problem)
            warm = R(problem)
        assert store.hits == 1 and store.misses == 1
        for result in (cold, warm):
            assert result == plain
            assert result.name == plain.name
            # alphabet *order* drives downstream renaming
            assert list(result.alphabet) == list(plain.alphabet)
            assert (
                rename_to_strings(result).problem.render()
                == rename_to_strings(plain).problem.render()
            )

    def test_hit_transports_across_renaming(self):
        """A result cached for P serves every isomorphic copy of P."""
        rng = random.Random(7)
        problem = mis_problem(4)
        renamed = problem.rename(_random_renaming(problem, rng), name="iso")
        with caching(OperatorCache()) as store:
            R(problem)  # cold fill
            transported = R(renamed)  # hit, transported
        assert store.hits == 1
        assert transported == R(renamed)  # equals direct computation
        assert (
            rename_to_strings(transported).problem.render()
            == rename_to_strings(R(renamed)).problem.render()
        )

    def test_invalid_problem_verdict_is_cached_and_reraised(self):
        problem = mis_problem(3)
        calls = []

        def compute():
            calls.append(1)
            raise InvalidProblem("degenerate", closed_sets=0)

        with caching(OperatorCache()):
            with pytest.raises(InvalidProblem) as cold:
                cached_problem_operator("fail-op", problem, compute)
            with pytest.raises(InvalidProblem) as warm:
                cached_problem_operator("fail-op", problem, compute)
        assert len(calls) == 1  # the verdict was served from the cache
        assert str(warm.value) == str(cold.value)
        assert warm.value.context == cold.value.context

    def test_zero_round_verdicts_are_cached(self):
        problem = mis_problem(3)
        plain = zero_round_solvable_pn(problem)
        with caching(OperatorCache()) as store:
            assert zero_round_solvable_pn(problem) == plain
            assert zero_round_solvable_pn(problem) == plain
        assert store.hits == 1 and store.misses == 1

    def test_relabeling_witness_transported_and_valid(self):
        source, target = mis_problem(3), mis_problem(3)
        with caching(OperatorCache()) as store:
            cold = find_label_relabeling(source, target)
            warm = find_label_relabeling(source, target)
        assert store.hits == 1
        assert (cold is None) == (warm is None)
        if warm is not None:
            assert relabeling_is_valid(source, target, warm)

    def test_cache_counters_land_in_traces(self):
        problem = mis_problem(4)
        tracer = Tracer()
        with tracing(tracer), caching(OperatorCache()):
            R(problem)
            R(problem)
        totals = total_counters(tracer.finish())
        assert totals["cache.miss"] == 1
        assert totals["cache.hit"] == 1
        assert totals["cache.bytes"] > 0
        # cache behavior must never count as semantic drift
        for counter in ("cache.hit", "cache.miss", "cache.bytes",
                        "cache.corrupt"):
            assert counter in TIMING_COUNTERS


# ---------------------------------------------------------------------------
# Differential guarantee over the oracle corpus
# ---------------------------------------------------------------------------

class TestCachedDifferential:
    def test_cached_engines_agree_over_corpus(self):
        """Reference, cold-cached kernel, and warm-cached kernel agree
        on every corpus problem — on results and on failures."""
        store = OperatorCache()
        for name, problem in full_corpus():
            reference = _outcome(R, problem)
            with caching(store):
                cold = _outcome(R, problem, use_kernel=True)
                warm = _outcome(R, problem, use_kernel=True)
            assert_same_outcome(f"R({name}) cold", reference, cold)
            assert_same_outcome(f"R({name}) warm", reference, warm)
        assert store.hits > 0 and store.misses > 0

    def test_cached_speedup_matches_uncached_on_mis(self):
        for delta in (3, 4):
            problem = mis_problem(delta)
            plain = speedup(problem, use_kernel=True)
            with caching(OperatorCache()):
                cold = speedup(problem, use_kernel=True)
                warm = speedup(problem, use_kernel=True)
            assert cold.problem == plain.problem
            assert warm.problem == plain.problem
            assert cold.problem.render() == plain.problem.render()
            assert warm.problem.render() == plain.problem.render()


def _outcome(function, *args, **kwargs):
    try:
        return function(*args, **kwargs)
    except InvalidProblem as error:
        return ("InvalidProblem", str(error))


# ---------------------------------------------------------------------------
# Checkpoint interplay: warm and cold runs persist identical state
# ---------------------------------------------------------------------------

def _observational(line: str) -> bool:
    text = line.strip()
    if text.startswith("[provenance]"):
        text = text[len("[provenance]"):].strip()
    return text.startswith("cache:") or text.startswith("trace:")


class TestCheckpointInterplay:
    def test_run_chain_checkpoints_byte_identical_warm_vs_cold(
        self, tmp_path
    ):
        store = OperatorCache()
        with caching(store):
            cold = run_chain(
                16, 0,
                store=CheckpointStore(tmp_path / "cold"),
                verify_steps=True, use_kernel=True,
            )
            warm = run_chain(
                16, 0,
                store=CheckpointStore(tmp_path / "warm"),
                verify_steps=True, use_kernel=True,
            )
        plain = run_chain(
            16, 0,
            store=CheckpointStore(tmp_path / "plain"),
            verify_steps=True, use_kernel=True,
        )
        assert cold.chain == warm.chain == plain.chain
        cold_files = sorted(p.name for p in (tmp_path / "cold").iterdir())
        assert cold_files == sorted(
            p.name for p in (tmp_path / "warm").iterdir()
        )
        for name in cold_files:
            cold_bytes = (tmp_path / "cold" / name).read_bytes()
            assert cold_bytes == (tmp_path / "warm" / name).read_bytes()
            assert cold_bytes == (tmp_path / "plain" / name).read_bytes()
        # warm provenance records hits where the cold run recorded misses
        assert any(
            line.startswith("cache: step") and line.endswith("miss")
            for line in cold.provenance
        )
        assert any(
            line.startswith("cache: step") and line.endswith("hit")
            for line in warm.provenance
        )
        # ... and nothing else differs
        assert [
            line for line in cold.provenance if not _observational(line)
        ] == [line for line in warm.provenance if not _observational(line)]

    def test_certificate_byte_identical_warm_vs_cold(self, tmp_path):
        plain = build_certificate(4, 0)
        store = OperatorCache()
        with caching(store):
            cold = build_certificate(
                4, 0, store=CheckpointStore(tmp_path / "cold")
            )
            warm = build_certificate(
                4, 0, store=CheckpointStore(tmp_path / "warm")
            )
        assert store.hits > 0

        def filtered(certificate):
            return [
                line for line in certificate.render().splitlines()
                if not _observational(line.strip())
            ]

        assert filtered(cold) == filtered(plain)
        assert filtered(warm) == filtered(plain)
        cold_files = sorted(p.name for p in (tmp_path / "cold").iterdir())
        assert cold_files == sorted(
            p.name for p in (tmp_path / "warm").iterdir()
        )
        for name in cold_files:
            assert (tmp_path / "cold" / name).read_bytes() == (
                tmp_path / "warm" / name
            ).read_bytes()
