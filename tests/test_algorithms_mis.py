"""Tests for the randomized MIS algorithms (Luby, Ghaffari-style)."""

import random

import pytest

from repro.algorithms.ghaffari import run_ghaffari_mis
from repro.algorithms.greedy import greedy_coloring, greedy_dominating_set, greedy_mis
from repro.algorithms.luby import run_luby_mis
from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
    random_tree,
    random_tree_bounded_degree,
    truncated_regular_tree,
)
from repro.sim.verifiers import (
    verify_dominating_set,
    verify_mis,
    verify_proper_coloring,
)


class TestGreedyBaselines:
    def test_greedy_mis_valid(self):
        for graph in (path_graph(10), cycle_graph(9), truncated_regular_tree(3, 3)):
            assert verify_mis(graph, greedy_mis(graph)).ok

    def test_greedy_mis_respects_order(self):
        graph = path_graph(3)
        assert greedy_mis(graph, order=[1, 0, 2]) == {1}

    def test_greedy_coloring_valid_and_bounded(self):
        graph = truncated_regular_tree(4, 3)
        colors = greedy_coloring(graph)
        assert verify_proper_coloring(graph, colors).ok
        assert max(colors) <= graph.max_degree()

    def test_greedy_dominating_set(self):
        graph = random_tree(30, random.Random(1))
        selected = greedy_dominating_set(graph)
        assert verify_dominating_set(graph, selected).ok
        # Far smaller than everything:
        assert len(selected) < graph.n


class TestLuby:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_on_random_trees(self, seed):
        graph = random_tree(80, random.Random(seed))
        result = run_luby_mis(graph, seed=seed)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok

    def test_valid_on_cayley(self):
        graph = colored_port_cayley_graph(4)
        result = run_luby_mis(graph, seed=11)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok

    def test_round_count_logarithmic(self):
        """O(log n) w.h.p.: generous constant for the assertion."""
        graph = random_tree(200, random.Random(3))
        result = run_luby_mis(graph, seed=3)
        assert result.rounds <= 20 * 8  # 2 rounds per phase, <= 10 log2(200)

    def test_single_node(self):
        from repro.sim.graph import Graph

        result = run_luby_mis(Graph(1))
        assert result.outputs == [True]

    def test_deterministic_given_seed(self):
        graph = random_tree(50, random.Random(7))
        first = run_luby_mis(graph, seed=5).outputs
        second = run_luby_mis(graph, seed=5).outputs
        assert first == second


class TestGhaffari:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_on_random_trees(self, seed):
        graph = random_tree_bounded_degree(80, 5, random.Random(seed))
        result = run_ghaffari_mis(graph, seed=seed)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok

    def test_valid_on_cycle(self):
        graph = cycle_graph(30)
        result = run_ghaffari_mis(graph, seed=2)
        selected = {node for node in range(graph.n) if result.outputs[node]}
        assert verify_mis(graph, selected).ok

    def test_terminates_reasonably(self):
        graph = random_tree_bounded_degree(150, 4, random.Random(9))
        result = run_ghaffari_mis(graph, seed=9)
        assert result.rounds < 400
