"""Tests for the whole-program analyzer: fixtures, waivers, self-check.

Each detector has a fixture mini-tree under
``tests/fixtures/analysis/<anxxx>/`` mirroring the real layout
(``src/repro/<package>/...``), so module naming and path scoping run
identically over fixtures and product code.  Every tree seeds one true
positive *and* one waived case, proving both that the detector fires
and that its escape hatch works.

The self-check tests then pin the shipped tree itself at zero
findings — the same gate CI runs via ``python -m repro.analysis``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DETECTORS,
    build_call_graph,
    collect_facts,
    run_detectors,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import AnalysisError, module_name_of
from repro.analysis.facts import parse_waivers

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"
SRC_TREE = REPO_ROOT / "src" / "repro"

DETECTOR_CODES = [detector.code for detector in DETECTORS]


def analyze_fixture(name, codes=None):
    """Build graph + facts for one fixture tree and run the detectors."""
    graph = build_call_graph([str(FIXTURES / name / "src")])
    facts = collect_facts(graph)
    return graph, facts, run_detectors(graph, facts, codes)


def run_cli(*argv, cwd=None, timeout=300):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd or REPO_ROOT,
        env=environment,
        stdin=subprocess.DEVNULL,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def real_tree():
    """The shipped tree's graph and facts, built once per test module."""
    graph = build_call_graph([str(SRC_TREE)])
    return graph, collect_facts(graph)


# ---------------------------------------------------------------------------
# The catalogue itself
# ---------------------------------------------------------------------------

def test_catalogue_is_complete_and_ordered():
    assert DETECTOR_CODES == [f"AN{i:03d}" for i in range(1, 5)]
    assert len({detector.name for detector in DETECTORS}) == len(DETECTORS)
    for detector in DETECTORS:
        assert detector.summary


def test_every_detector_has_a_fixture_tree():
    for code in DETECTOR_CODES:
        assert (FIXTURES / code.lower() / "src" / "repro").is_dir(), code


# ---------------------------------------------------------------------------
# Module naming mirrors the real tree
# ---------------------------------------------------------------------------

def test_module_name_derives_from_last_repro_component():
    fixture = FIXTURES / "an001" / "src" / "repro" / "core" / "kernel" / "hot.py"
    assert module_name_of(str(fixture)) == "repro.core.kernel.hot"
    assert module_name_of("src/repro/core/__init__.py") == "repro.core"
    assert module_name_of("somewhere/else/thing.py") is None


def test_fixture_tree_links_cross_module_calls():
    graph, _, _ = analyze_fixture("an002")
    chain = graph.call_chain(
        "repro.lowerbound.chain.run", "repro.core.ops.mutate"
    )
    assert chain is not None
    assert chain[:2] == [
        "repro.lowerbound.chain.run",
        "repro.lowerbound.chain.drive",
    ]
    assert chain[2] in {
        "repro.core.ops.explode",
        "repro.core.ops.condense",
        "repro.core.ops.rebuild",
    }
    assert chain[3] == "repro.core.ops.mutate"


def test_thread_targets_become_roots():
    graph, _, _ = analyze_fixture("an003")
    assert "repro.service.worker.Coordinator.poll" in graph.thread_roots
    assert "repro.service.worker.Coordinator.drain" in graph.thread_roots


# ---------------------------------------------------------------------------
# Per-detector fixtures: one true positive, one waived case each
# ---------------------------------------------------------------------------

def test_an001_flags_allocation_in_hot_closure_with_chain():
    _, _, findings = analyze_fixture("an001")
    assert [finding.code for finding in findings] == ["AN001"]
    finding = findings[0]
    assert finding.line == 23  # grown = set() inside _expand
    assert finding.symbol == "repro.core.kernel.hot._expand"
    assert "core.kernel.hot.dfs" in finding.message
    assert "->" in finding.message  # the call chain is reported


def test_an001_disable_comment_waives_the_boot_table():
    _, _, findings = analyze_fixture("an001")
    assert all(finding.line != 34 for finding in findings)


def test_an002_flags_governed_loop_without_checkpoint():
    _, _, findings = analyze_fixture("an002")
    assert [finding.code for finding in findings] == ["AN002"]
    finding = findings[0]
    assert finding.line == 10  # the while loop in explode
    assert finding.symbol == "repro.core.ops.explode"
    assert "governed entry" in finding.message
    assert "lowerbound.chain.run" in finding.message


def test_an002_waiver_and_direct_checkpoint_both_pass():
    _, _, findings = analyze_fixture("an002")
    flagged = {finding.line for finding in findings}
    assert 19 not in flagged  # condense: unbounded-ok(reason)
    assert 27 not in flagged  # rebuild: checkpoint in the loop body


def test_an002_empty_waiver_reason_is_itself_a_finding(tmp_path):
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text(
        "from repro.robustness.budget import governed\n"
        "\n"
        "\n"
        "def run(items: object) -> int:\n"
        "    with governed(items):\n"
        "        return spin(items)\n"
        "\n"
        "\n"
        "def spin(items: object) -> int:\n"
        "    total = 0\n"
        "    # analysis: unbounded-ok()\n"
        "    while items:\n"
        "        total += probe(items)\n"
        "        items = None\n"
        "    return total\n"
        "\n"
        "\n"
        "def probe(items: object) -> int:\n"
        "    return 1\n"
    )
    graph = build_call_graph([str(tmp_path / "src")])
    facts = collect_facts(graph)
    findings = run_detectors(graph, facts)
    assert [finding.code for finding in findings] == ["AN002"]
    assert "non-empty reason" in findings[0].message


def test_an003_reports_cycle_and_unguarded_cross_thread_write():
    _, _, findings = analyze_fixture("an003")
    assert [finding.code for finding in findings] == ["AN003", "AN003"]
    cycle, write = findings
    assert cycle.line == 35  # with self._lock: inside drain
    assert "lock-order cycle" in cycle.message
    assert "Coordinator._aux" in cycle.message
    assert "Coordinator._lock" in cycle.message
    assert write.line == 37  # self._pulse -= 1 in drain
    assert write.symbol == "repro.service.worker.Coordinator._pulse"
    assert "no common lock held" in write.message


def test_an003_guarded_and_waived_writes_pass():
    _, _, findings = analyze_fixture("an003")
    symbols = {finding.symbol for finding in findings}
    assert "repro.service.worker.Coordinator._jobs" not in symbols
    assert "repro.service.worker.Coordinator._beacon" not in symbols


def test_an004_flags_dead_and_single_engine_counters():
    _, _, findings = analyze_fixture("an004")
    assert [finding.code for finding in findings] == ["AN004", "AN004"]
    single, dead = findings
    assert single.symbol == "node.configs.out"
    assert "only by the kernel engine" in single.message
    assert dead.symbol == "cache.ghost"
    assert "emitted nowhere" in dead.message


def test_an004_waived_and_healthy_counters_pass():
    _, _, findings = analyze_fixture("an004")
    symbols = {finding.symbol for finding in findings}
    assert "cache.legacy" not in symbols  # disable comment
    assert "labels.in" not in symbols  # both engines emit it
    assert "cache.hit" not in symbols  # timing counter, one engine is fine


# ---------------------------------------------------------------------------
# Waiver comment parsing
# ---------------------------------------------------------------------------

def test_parse_waivers_reads_both_comment_forms():
    disable, unbounded = parse_waivers(
        "x = 1  # analysis: disable=AN001, AN003 -- justified\n"
        "y = 2  # analysis: disable=all\n"
        "# analysis: unbounded-ok(scan is one pass)\n"
        "while y:\n"
        "    pass\n"
    )
    assert disable[1] == {"AN001", "AN003"}
    assert disable[2] == {"all"}
    assert unbounded[3] == "scan is one pass"


def test_parse_waivers_keeps_empty_reason_distinct():
    _, unbounded = parse_waivers("# analysis: unbounded-ok()\n")
    assert unbounded[1] == ""


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip_grandfathers_findings(tmp_path):
    _, _, findings = analyze_fixture("an001")
    baseline_file = tmp_path / "baseline.json"
    assert write_baseline(str(baseline_file), findings) == 1
    entries = load_baseline(str(baseline_file))
    fresh, stale = apply_baseline(findings, entries)
    assert fresh == []
    assert stale == []


def test_baseline_reports_stale_entries(tmp_path):
    _, _, findings = analyze_fixture("an001")
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "code": "AN001",
                        "path": "src/repro/core/kernel/hot.py",
                        "symbol": "repro.core.kernel.hot._expand",
                    },
                    {
                        "code": "AN003",
                        "path": "src/repro/service/gone.py",
                        "symbol": "repro.service.gone.Ghost._x",
                    },
                ],
            }
        )
    )
    fresh, stale = apply_baseline(findings, load_baseline(str(baseline_file)))
    assert fresh == []
    assert [entry.code for entry in stale] == ["AN003"]


def test_malformed_baseline_is_an_analysis_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "entries": []}')
    with pytest.raises(AnalysisError):
        load_baseline(str(bad))


# ---------------------------------------------------------------------------
# The shipped tree: self-check and schema closure
# ---------------------------------------------------------------------------

def test_shipped_tree_has_zero_findings(real_tree):
    graph, facts = real_tree
    findings = run_detectors(graph, facts)
    assert findings == [], [finding.render() for finding in findings]


def test_schema_emission_closure(real_tree):
    """Every declared counter is emitted somewhere — the list can't rot."""
    graph, facts = real_tree
    assert facts.schema, "schema tables not found in the scanned tree"
    emitted = {
        name
        for summary in facts.functions.values()
        for name, _ in summary.counter_adds
    }
    missing = sorted(set(facts.schema) - emitted)
    assert not missing, f"declared but never emitted: {missing}"


def test_semantic_counters_are_engine_symmetric(real_tree):
    """Semantic counters are emitted by both engines or by neither."""
    graph, facts = real_tree
    for name in sorted(facts.semantic_counters):
        sites = [
            qualname
            for qualname, summary in facts.functions.items()
            for counter, _ in summary.counter_adds
            if counter == name
        ]
        kernel = [
            site
            for site in sites
            if "kernel" in graph.functions[site].module.split(".")
        ]
        reference = [
            site
            for site in sites
            if "round_elimination" in graph.functions[site].module.split(".")
        ]
        assert bool(kernel) == bool(reference), (name, kernel, reference)


def test_committed_baseline_is_current():
    """The repo-root baseline parses and carries no stale entries."""
    entries = load_baseline(str(REPO_ROOT / "analysis_baseline.json"))
    graph = build_call_graph([str(SRC_TREE)])
    findings = run_detectors(graph, collect_facts(graph))
    _, stale = apply_baseline(findings, entries)
    assert stale == [], [entry.path for entry in stale]


# ---------------------------------------------------------------------------
# The command line, exactly as CI runs it
# ---------------------------------------------------------------------------

class TestAnalysisCli:
    def test_shipped_tree_is_clean(self):
        completed = run_cli()
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_fixture_tree_exits_1_with_findings(self):
        completed = run_cli("tests/fixtures/analysis/an001/src")
        assert completed.returncode == 1
        assert "AN001" in completed.stdout
        assert "finding" in completed.stderr

    def test_json_report_shape(self):
        completed = run_cli("--json", "tests/fixtures/analysis/an004/src")
        assert completed.returncode == 1
        report = json.loads(completed.stdout)
        assert report["schema"] == 1
        assert report["scanned_modules"] == 3
        assert [v["code"] for v in report["violations"]] == ["AN004", "AN004"]
        assert report["stale_baseline_entries"] == []

    def test_write_then_apply_baseline_grandfathers(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_cli(
            "--write-baseline", str(baseline),
            "tests/fixtures/analysis/an003/src",
        )
        assert wrote.returncode == 0, wrote.stderr
        assert baseline.is_file()
        applied = run_cli(
            "--baseline", str(baseline),
            "tests/fixtures/analysis/an003/src",
        )
        assert applied.returncode == 0, applied.stdout + applied.stderr

    def test_stale_baseline_entry_warns(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "code": "AN001",
                            "path": "src/repro/core/kernel/hot.py",
                            "symbol": "repro.core.kernel.hot._expand",
                        },
                        {
                            "code": "AN002",
                            "path": "src/repro/core/gone.py",
                            "symbol": "repro.core.gone.loop",
                        },
                    ],
                }
            )
        )
        completed = run_cli(
            "--baseline", str(baseline),
            "tests/fixtures/analysis/an001/src",
        )
        assert completed.returncode == 0
        assert "stale baseline entry" in completed.stderr

    def test_only_restricts_detectors(self):
        completed = run_cli(
            "--only", "AN001", "tests/fixtures/analysis/an004/src"
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_unknown_only_code_exits_2(self):
        completed = run_cli("--only", "AN999")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_missing_path_exits_2(self):
        completed = run_cli("no/such/tree")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_unparseable_input_exits_2(self, tmp_path):
        tree = tmp_path / "src" / "repro"
        tree.mkdir(parents=True)
        (tree / "broken.py").write_text("def oops(:\n")
        completed = run_cli(str(tree))
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_unknown_option_exits_2(self):
        completed = run_cli("--bogus")
        assert completed.returncode == 2
        assert completed.stderr.startswith("error:")

    def test_help_documents_exit_codes(self):
        completed = run_cli("--help")
        assert completed.returncode == 0
        assert "Exit status" in completed.stdout
        for fragment in ("0  clean", "1  findings", "2  usage"):
            assert fragment in completed.stdout

    def test_list_detectors_prints_the_catalogue(self):
        completed = run_cli("--list-detectors")
        assert completed.returncode == 0
        for code in DETECTOR_CODES:
            assert code in completed.stdout
