"""Property-based tests for the kernel layer (seeded stdlib random).

Three families of invariants, each checked over a deterministic stream
of random instances (``random.Random(seed)`` — no external property
framework, so failures are exactly reproducible by seed):

* **Observation 4** — every label produced by a maximization step is a
  right-closed set with respect to the diagram of the constraint that
  was maximized, and the kernel's right-closed-set enumeration (unions
  of upward closures) matches the reference powerset scan exactly.
* **Galois closure** — ``f(f(f(A))) == f(A)`` for arbitrary ``A``
  (closure idempotence) and ``f(f(A)) == A`` for every closed set in
  the memoized lattice, matching the pairs kept by the edge
  maximization.
* **Packing round-trips** — interned bitmasks reproduce frozensets
  exactly, and the packed count-vector multisets of the DFS hot loop
  are bijective below their per-field capacity.
"""

import random

import pytest

from repro.core.diagram import Diagram, edge_diagram, node_diagram
from repro.core.kernel.bitops import iter_bits, mask_from_ids, popcount
from repro.core.kernel.engine import (
    KernelProblem,
    pack_ids,
    search_maximization_chunk,
    unpack_ids,
)
from repro.core.kernel.interning import LabelInterner
from repro.core.round_elimination import R, Rbar, rename_to_strings

from tests.oracle import classic_corpus, random_problem

SEED = 52

CLASSICS = classic_corpus()
CLASSIC_IDS = [name for name, _ in CLASSICS]


# ---------------------------------------------------------------------------
# Observation 4: maximization labels are right-closed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name, problem", CLASSICS[:5], ids=CLASSIC_IDS[:5])
def test_observation4_edge_maximization(name, problem):
    """Labels of R(P) are right-closed w.r.t. the edge diagram of P."""
    diagram = edge_diagram(problem)
    for label in R(problem, use_kernel=True).alphabet:
        assert isinstance(label, frozenset)
        assert diagram.is_right_closed(label), (
            f"{name}: R label {sorted(map(str, label))} is not right-closed"
        )


@pytest.mark.parametrize("name, problem", CLASSICS[:5], ids=CLASSIC_IDS[:5])
def test_observation4_node_maximization(name, problem):
    """Labels of Rbar(R(P)) are right-closed w.r.t. the node diagram."""
    renamed = rename_to_strings(R(problem, use_kernel=True)).problem
    diagram = node_diagram(renamed)
    for label in Rbar(renamed, use_kernel=True).alphabet:
        assert diagram.is_right_closed(label), (
            f"{name}: Rbar label {sorted(map(str, label))} is not right-closed"
        )


def test_right_closed_enumeration_matches_reference():
    """Kernel union-of-up-closures == reference powerset scan, on random
    constraint systems as well as the classics."""
    rng = random.Random(SEED)
    problems = [problem for _, problem in CLASSICS]
    problems += [random_problem(rng) for _ in range(10)]
    for problem in problems:
        kernel = KernelProblem.of(problem)
        reference = Diagram(
            problem.node_constraint, problem.alphabet
        ).right_closed_sets()
        from_kernel = {
            kernel.interner.labels_of_mask(mask)
            for mask in kernel.node_right_closed_sets()
        }
        assert from_kernel == set(reference), (
            f"right-closed enumeration mismatch on {problem.name or problem!r}"
        )


# ---------------------------------------------------------------------------
# Galois closure idempotence
# ---------------------------------------------------------------------------

def test_galois_partner_triple_application():
    """f(f(f(A))) == f(A) for arbitrary A — the Galois closure identity."""
    rng = random.Random(SEED + 1)
    problems = [problem for _, problem in CLASSICS]
    problems += [random_problem(rng) for _ in range(10)]
    for problem in problems:
        kernel = KernelProblem.of(problem)
        universe_mask = (1 << kernel.n) - 1
        for _ in range(20):
            subset = rng.getrandbits(kernel.n) & universe_mask
            once = kernel.partner(subset)
            assert kernel.partner(kernel.partner(once)) == once, (
                f"f(f(f(A))) != f(A) on {problem.name or problem!r}"
            )


def test_galois_lattice_sets_are_closed():
    """Every memoized lattice member A satisfies f(f(A)) == A or is
    filtered out by the maximization's closedness check — and each kept
    edge configuration (A, f(A)) is a mutual-partner pair."""
    rng = random.Random(SEED + 2)
    problems = [problem for _, problem in CLASSICS]
    problems += [random_problem(rng) for _ in range(10)]
    for problem in problems:
        kernel = KernelProblem.of(problem)
        closed = [
            mask
            for mask in kernel.galois_closed_sets()
            if kernel.partner(kernel.partner(mask)) == mask
        ]
        assert closed, f"no closed pair at all on {problem.name or problem!r}"
        for mask in closed:
            partner = kernel.partner(mask)
            assert kernel.partner(partner) == mask


def test_partner_memoization_is_stable():
    """Memoized partner images equal a fresh recomputation (cache never
    goes stale because problems are immutable)."""
    _, problem = CLASSICS[0]
    kernel = KernelProblem.of(problem)
    first = {mask: kernel.partner(mask) for mask in kernel.galois_closed_sets()}
    again = {mask: kernel.partner(mask) for mask in kernel.galois_closed_sets()}
    assert first == again


# ---------------------------------------------------------------------------
# Bitmask and packed-multiset round-trips
# ---------------------------------------------------------------------------

def test_bitmask_frozenset_roundtrip():
    """interner.mask_of / labels_of_mask are mutually inverse."""
    rng = random.Random(SEED + 3)
    for _ in range(50):
        count = rng.randint(1, 12)
        labels = frozenset(f"L{index}" for index in range(count))
        interner = LabelInterner(labels)
        subset = frozenset(
            label for label in labels if rng.random() < 0.5
        )
        mask = interner.mask_of(subset)
        assert interner.labels_of_mask(mask) == subset
        assert popcount(mask) == len(subset)
        # id round-trip, and ids enumerate in ascending order
        ids = list(iter_bits(mask))
        assert ids == sorted(ids)
        assert mask_from_ids(ids) == mask


def test_packed_multiset_roundtrip():
    """pack_ids / unpack_ids are mutually inverse below field capacity.

    The DFS packs a multiset of label ids into one integer with
    ``shift`` bits per count field; the representation is bijective as
    long as every count stays below ``2**shift``.
    """
    rng = random.Random(SEED + 4)
    for _ in range(100):
        arity = rng.randint(1, 6)
        shift = arity.bit_length()
        label_count = rng.randint(1, 10)
        ids = sorted(rng.randrange(label_count) for _ in range(arity))
        packed = pack_ids(ids, shift)
        assert list(unpack_ids(packed, shift)) == ids
        # additivity: packing is a sum of single-id steps
        total = 0
        for label_id in ids:
            total += 1 << (shift * label_id)
        assert total == packed


def test_packed_multiset_is_injective():
    """Distinct multisets pack to distinct integers (below capacity)."""
    rng = random.Random(SEED + 5)
    arity = 4
    shift = arity.bit_length()
    seen: dict[int, tuple] = {}
    for _ in range(300):
        ids = tuple(sorted(rng.randrange(6) for _ in range(arity)))
        packed = pack_ids(ids, shift)
        assert seen.setdefault(packed, ids) == ids
    assert len(seen) > 1


# ---------------------------------------------------------------------------
# Chunk decomposition of the maximization DFS
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name, problem", CLASSICS[:4], ids=CLASSIC_IDS[:4])
def test_chunk_concatenation_equals_serial(name, problem):
    """The parallel chunking invariant: concatenating the per-prefix
    chunks in index order reproduces the serial DFS result exactly."""
    renamed = rename_to_strings(R(problem, use_kernel=True)).problem
    kernel = KernelProblem.of(renamed)
    candidates = kernel.node_right_closed_sets()
    _elements, trans = kernel.node_dfs_machine()
    member_labels = tuple(tuple(iter_bits(mask)) for mask in candidates)
    serial: list[tuple[int, ...]] = []
    for first_index in range(len(candidates)):
        serial.extend(
            search_maximization_chunk(
                candidates, member_labels, trans, kernel.delta, first_index
            )
        )
    # Chunks are disjoint and each result starts with its chunk's set.
    assert len(serial) == len(set(serial))
    for sets in serial:
        assert sets[0] in candidates
    # Pruning the concatenation reproduces the engine's serial answer.
    from repro.core.configurations import Configuration
    from repro.core.kernel.engine import (
        maximize_node_constraint_kernel,
        prune_non_maximal_masks,
    )

    maximal = prune_non_maximal_masks(serial, candidates)
    rebuilt = {
        Configuration(kernel.interner.labels_of_mask(mask) for mask in sets)
        for sets in maximal
    }
    assert rebuilt == set(
        maximize_node_constraint_kernel(renamed).configurations
    )
