"""Unit tests for the Problem triple (Sigma, N, E)."""

import pytest

from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.problems.mis import mis_problem


class TestConstruction:
    def test_from_text_infers_alphabet(self):
        problem = Problem.from_text(["M^3", "P O^2"], ["M [PO]", "O O"])
        assert set(problem.alphabet) == {"M", "P", "O"}
        assert problem.delta == 3

    def test_edge_constraint_must_have_arity_two(self):
        from repro.core.constraints import Constraint

        with pytest.raises(ValueError):
            Problem(
                ["M"],
                Constraint.from_condensed(["M^3"]),
                Constraint.from_condensed(["M^3"]),
            )

    def test_labels_outside_alphabet_rejected(self):
        from repro.core.constraints import Constraint

        with pytest.raises(ValueError):
            Problem(
                ["M"],
                Constraint.from_condensed(["M^2"]),
                Constraint.from_condensed(["M Z"]),
            )


class TestQueries:
    def test_edge_allows_is_symmetric(self):
        problem = mis_problem(3)
        assert problem.edge_allows("M", "P")
        assert problem.edge_allows("P", "M")
        assert not problem.edge_allows("M", "M")

    def test_compatible_labels(self):
        problem = mis_problem(3)
        assert problem.compatible_labels("M") == {"P", "O"}
        assert problem.compatible_labels("P") == {"M"}
        assert problem.compatible_labels("O") == {"M", "O"}

    def test_self_compatible_labels(self):
        assert mis_problem(3).self_compatible_labels() == {"O"}

    def test_used_labels(self):
        assert mis_problem(4).used_labels() == {"M", "P", "O"}


class TestNormalization:
    def test_drops_node_only_labels(self):
        # Z appears in the node constraint but on no edge: unusable.
        problem = Problem.from_text(["M^2", "Z^2"], ["M M"])
        normalized = problem.normalized()
        assert set(normalized.alphabet) == {"M"}
        assert len(normalized.node_constraint) == 1

    def test_drops_cascading(self):
        # Removing Z kills the only configuration using Y, removing Y too.
        problem = Problem.from_text(["M^2", "Y Z"], ["M M", "Y M"])
        normalized = problem.normalized()
        assert set(normalized.alphabet) == {"M"}

    def test_already_normalized_is_identity(self):
        problem = mis_problem(3)
        assert problem.normalized() == problem


class TestRenamingAndIsomorphism:
    def test_rename_roundtrip(self):
        problem = mis_problem(3)
        there = problem.rename({"M": "1", "P": "2", "O": "3"})
        back = there.rename({"1": "M", "2": "P", "3": "O"})
        assert back == problem

    def test_rename_must_be_injective(self):
        with pytest.raises(ValueError):
            mis_problem(3).rename({"M": "O"})

    def test_isomorphic_to_itself(self):
        assert mis_problem(3).is_isomorphic(mis_problem(3))

    def test_isomorphic_after_renaming(self):
        problem = mis_problem(4)
        renamed = problem.rename({"M": "a", "P": "b", "O": "c"})
        mapping = problem.find_isomorphism(renamed)
        assert mapping == {"M": "a", "P": "b", "O": "c"}

    def test_not_isomorphic_with_different_structure(self):
        mis = mis_problem(3)
        other = Problem.from_text(["M^3", "P O^2"], ["M [PO]", "O O", "P P"])
        assert not mis.is_isomorphic(other)

    def test_not_isomorphic_across_delta(self):
        assert not mis_problem(3).is_isomorphic(mis_problem(4))

    def test_equality_ignores_name(self):
        a = mis_problem(3)
        b = Problem(a.alphabet, a.node_constraint, a.edge_constraint, name="other")
        assert a == b


class TestRendering:
    def test_render_mentions_constraints(self):
        text = mis_problem(3).render()
        assert "node constraint" in text
        assert "edge constraint" in text
        assert "M^3" in text

    def test_configuration_membership(self):
        problem = mis_problem(3)
        assert Configuration("MMM") in problem.node_constraint
        assert Configuration("POO") in problem.node_constraint
        assert Configuration("PPO") not in problem.node_constraint
