"""The scenario library: spec format, registry, builders, operator laws.

Three layers of coverage:

* the spec format — canonical round-trip (``parse -> render`` is
  byte-identical for canonical files, identity for random specs via
  hypothesis) and every documented rejection;
* the registry and family builders — unique names, on-disk files in
  canonical form, label-set closure of built problems, the
  ruling-set/MIS coincidence at depth 1;
* the self-reduction operator laws — condensation idempotence and
  monotonicity, and Observation-4 right-closedness of the speedup
  stage inside :func:`repro.core.self_reduction.self_reduce`, on both
  scenario base problems and seeded random systems.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.diagram import edge_diagram, node_diagram
from repro.core.self_reduction import condense_problem, self_reduce
from repro.problems import mis_problem, ruling_set_problem
from repro.robustness.errors import InvalidScenario
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_problem,
    find_scenario,
    load_registry,
    load_spec,
    parse_spec,
    render_spec,
    spec_path,
)

from tests.oracle import random_corpus, scenario_corpus

REGISTRY = load_registry()
REGISTRY_IDS = [spec.name for _, spec in REGISTRY]

# Problems the operator-law tests run over: every scenario-corpus base
# problem plus seeded random constraint systems.
LAW_CORPUS = scenario_corpus() + random_corpus(seed=20260808, count=6)
LAW_IDS = [name for name, _ in LAW_CORPUS]


# ---------------------------------------------------------------------------
# Spec format
# ---------------------------------------------------------------------------

class TestSpecRoundTrip:
    @pytest.mark.parametrize("decl, spec", REGISTRY, ids=REGISTRY_IDS)
    def test_registry_files_are_canonical(self, decl, spec):
        """parse -> render reproduces every committed file byte for byte."""
        assert render_spec(spec) == spec_path(decl).read_text(encoding="utf-8")

    @given(
        name=st.from_regex(r"[a-z][a-z0-9-]{0,19}", fullmatch=True),
        family=st.sampled_from(["mis", "ruling_set", "maximal_matching", "family"]),
        params=st.dictionaries(
            st.sampled_from(["delta", "depth", "x", "a", "colors"]),
            st.integers(min_value=0, max_value=99),
            min_size=1,
            max_size=4,
        ),
        operator=st.sampled_from(["speedup", "self-reduce", "lemma13"]),
        steps=st.integers(min_value=0, max_value=9),
        expect=st.sampled_from(["bounded", "fixed-point"]),
        certified=st.integers(min_value=0, max_value=9),
        policy=st.sampled_from(["pn", "symmetric"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_spec_round_trips(
        self, name, family, params, operator, steps, expect, certified, policy
    ):
        if operator == "lemma13" and expect == "fixed-point":
            expect = "bounded"
        spec = ScenarioSpec(
            name=name,
            family=family,
            params=params,
            operator=operator,
            steps=steps,
            expect=expect,
            certified=certified,
            policy=policy,
        )
        rendered = render_spec(spec)
        assert parse_spec(rendered) == spec
        assert render_spec(parse_spec(rendered)) == rendered

    def test_comments_and_blank_lines_are_tolerated_not_emitted(self):
        decl, spec = REGISTRY[0]
        canonical = render_spec(spec)
        noisy = "# a comment\n\n" + canonical.replace(
            "params:\n", "params:\n# a nested comment\n\n"
        )
        assert parse_spec(noisy) == spec
        assert render_spec(parse_spec(noisy)) == canonical


INVALID_DOCS = [
    ("no_colon", "name mis\n"),
    ("duplicate_top", "name: a\nname: b\n"),
    ("duplicate_nested", "params:\n  delta: 3\n  delta: 4\n"),
    ("indent_outside_section", "  delta: 3\n"),
    ("missing_family", "name: a\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("unknown_top_key", "name: a\nfamily: mis\nextra: 1\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("unknown_chain_key", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\n  bogus: 1\npolicy: pn\n"),
    ("unknown_operator", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: warp\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("unknown_expect", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: 1\n  expect: spiral\n  certified: 0\npolicy: pn\n"),
    ("unknown_policy", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: loose\n"),
    ("bool_param", "name: a\nfamily: mis\nparams:\n  delta: true\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("string_steps", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: many\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("negative_steps", "name: a\nfamily: mis\nparams:\n  delta: 3\nchain:\n  operator: speedup\n  steps: -1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
    ("lemma13_fixed_point", "name: a\nfamily: family\nparams:\n  delta: 16\nchain:\n  operator: lemma13\n  steps: 1\n  expect: fixed-point\n  certified: 1\npolicy: symmetric\n"),
    ("empty_scalar", "name:  \nfamily: mis\nparams:\n  delta:\nchain:\n  operator: speedup\n  steps: 1\n  expect: bounded\n  certified: 0\npolicy: pn\n"),
]


class TestSpecRejections:
    @pytest.mark.parametrize(
        "label, text", INVALID_DOCS, ids=[label for label, _ in INVALID_DOCS]
    )
    def test_invalid_documents_raise(self, label, text):
        with pytest.raises(InvalidScenario):
            parse_spec(text, source=label)

    def test_error_carries_source_context(self):
        with pytest.raises(InvalidScenario) as caught:
            parse_spec("name mis\n", source="bad.scn")
        assert caught.value.context.get("source") == "bad.scn"


# ---------------------------------------------------------------------------
# Registry and builders
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_names_and_corpus_entries_are_unique(self):
        names = [spec.name for _, spec in REGISTRY]
        assert len(names) == len(set(names))
        goldens = [decl.golden for decl in SCENARIOS]
        assert len(goldens) == len(set(goldens))

    def test_find_scenario(self):
        decl, spec = find_scenario(REGISTRY_IDS[0])
        assert spec.name == REGISTRY_IDS[0]
        assert load_spec(decl) == spec
        with pytest.raises(InvalidScenario):
            find_scenario("not-a-scenario")


class TestBuilders:
    @pytest.mark.parametrize("decl, spec", REGISTRY, ids=REGISTRY_IDS)
    def test_label_set_closure_and_diagrams(self, decl, spec):
        """Constraints only mention alphabet labels; diagrams build."""
        problem = build_problem(spec)
        alphabet = set(problem.alphabet)
        assert problem.node_constraint.labels_used() <= alphabet
        assert problem.edge_constraint.labels_used() <= alphabet
        node_diagram(problem).render()
        edge_diagram(problem).render()

    def test_ruling_set_depth_one_is_mis(self):
        """Depth-1 ruling sets are exactly MIS (same constraints)."""
        ruling = ruling_set_problem(3, depth=1)
        mis = mis_problem(3)
        assert set(ruling.alphabet) == set(mis.alphabet)
        assert ruling.node_constraint == mis.node_constraint
        assert ruling.edge_constraint == mis.edge_constraint

    def test_unknown_family_rejected(self):
        spec = ScenarioSpec(
            name="x", family="nope", params={}, operator="speedup",
            steps=0, expect="bounded", certified=0, policy="pn",
        )
        with pytest.raises(InvalidScenario):
            build_problem(spec)

    def test_bad_params_rejected(self):
        for params in ({"delta": 1}, {"wheels": 4}):
            spec = ScenarioSpec(
                name="x", family="maximal_matching", params=params,
                operator="speedup", steps=0, expect="bounded",
                certified=0, policy="pn",
            )
            with pytest.raises(InvalidScenario):
                build_problem(spec)


# ---------------------------------------------------------------------------
# Self-reduction operator laws
# ---------------------------------------------------------------------------

class TestSelfReductionLaws:
    @pytest.mark.parametrize("name, problem", LAW_CORPUS, ids=LAW_IDS)
    def test_condensation_is_idempotent(self, name, problem):
        once = condense_problem(problem)
        twice = condense_problem(once)
        assert once == twice, f"{name}: condense is not idempotent"

    @pytest.mark.parametrize("name, problem", LAW_CORPUS, ids=LAW_IDS)
    def test_condensation_is_monotone(self, name, problem):
        """Condensing never grows the alphabet and never invents labels."""
        condensed = condense_problem(problem)
        assert len(condensed.alphabet) <= len(problem.alphabet)
        assert set(condensed.alphabet) <= set(problem.alphabet)

    @pytest.mark.parametrize("name, problem", LAW_CORPUS, ids=LAW_IDS)
    def test_speedup_stage_is_right_closed(self, name, problem):
        """Observation 4 on the Rbar stage inside a self-reduction step.

        Every label the node maximization produces is a right-closed
        set with respect to the diagram of the constraint that was
        maximized (the renamed intermediate's edge constraint).
        """
        sped = self_reduce(problem).speedup
        diagram = edge_diagram(sped.intermediate_renamed.problem)
        for label in sped.final.alphabet:
            assert isinstance(label, frozenset), (
                f"{name}: Rbar label {label!r} is not a set"
            )
            assert diagram.is_right_closed(label), (
                f"{name}: Rbar label {sorted(label)!r} is not right-closed"
            )
