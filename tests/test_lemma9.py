"""Tests for the Lemma 9 edge-coloring conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbound.lemma9 import (
    convert_plus_solution,
    lemma9_target_a,
    verify_lemma9,
)
from repro.problems.family import family_plus_problem
from repro.sim.edge_coloring import is_proper_edge_coloring
from repro.sim.generators import colored_port_cayley_graph, complete_bipartite_graph
from repro.sim.verifiers import verify_lcl


def bipartite_plus_labeling(delta, a, x):
    """A Pi+ solution on K_{delta,delta} exercising the C and A rules.

    Left nodes output the C configuration (C^(delta-x) X^x), right
    nodes the A configuration (A^(a-x-1) X^(delta-a+x+1)).  The
    bipartition rules out CC and AA edges; everything else is allowed.
    """
    graph = complete_bipartite_graph(delta)
    labeling = {}
    for node in range(delta):  # left: C configuration
        for port in range(delta):
            labeling[(node, port)] = "C" if port >= x else "X"
    for node in range(delta, 2 * delta):  # right: A configuration
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a - x - 1 else "X"
    return graph, labeling


def mis_style_plus_labeling(delta, x):
    """A Pi+ solution using only the M and P configurations.

    On the Cayley instance, take the greedy-by-id MIS; MIS nodes output
    M^(delta-x-1) X^(x+1), the rest point at an MIS neighbor.
    """
    graph = colored_port_cayley_graph(delta)
    selected = set()
    for node in range(graph.n):
        if all(neighbor not in selected for neighbor in graph.neighbors(node)):
            selected.add(node)
    labeling = {}
    for node in range(graph.n):
        if node in selected:
            for port in range(delta):
                labeling[(node, port)] = "M" if port < delta - x - 1 else "X"
        else:
            pointer = next(
                port
                for port in range(delta)
                if graph.neighbor(node, port) in selected
            )
            for port in range(delta):
                labeling[(node, port)] = "P" if port == pointer else "O"
    return graph, labeling


class TestTargetArithmetic:
    def test_target_a(self):
        assert lemma9_target_a(5, 1) == 1
        assert lemma9_target_a(9, 2) == 2
        assert lemma9_target_a(3, 1) == 0

    def test_range_enforced(self):
        graph, labeling = bipartite_plus_labeling(5, 4, 1)
        with pytest.raises(ValueError):
            convert_plus_solution(graph, labeling, 5, 2, 1)  # a < 2x+1


class TestConversionOnBipartite:
    @pytest.mark.parametrize(
        "delta,a,x",
        [(5, 4, 1), (5, 5, 1), (6, 5, 1), (7, 6, 2), (8, 7, 1), (9, 9, 2)],
    )
    def test_converted_solution_is_valid(self, delta, a, x):
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        result = verify_lemma9(graph, labeling, delta, a, x)
        assert result.ok, result.violations

    def test_no_aa_edges_after_conversion(self):
        delta, a, x = 6, 5, 1
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        converted = convert_plus_solution(graph, labeling, delta, a, x)
        for edge_id, u, v in graph.edges():
            pu = graph.endpoints(edge_id)[1]
            pv = graph.endpoints(edge_id)[3]
            assert (converted[(u, pu)], converted[(v, pv)]) != ("A", "A")

    def test_c_label_gone_after_conversion(self):
        delta, a, x = 6, 5, 1
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        converted = convert_plus_solution(graph, labeling, delta, a, x)
        assert "C" not in set(converted.values())

    def test_ownership_counts_exact(self):
        delta, a, x = 8, 7, 1
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        converted = convert_plus_solution(graph, labeling, delta, a, x)
        target = lemma9_target_a(a, x)
        for node in range(graph.n):
            count = sum(
                1 for port in range(delta) if converted[(node, port)] == "A"
            )
            assert count in (0, target)


class TestConversionOnMisStyle:
    @pytest.mark.parametrize("delta,x", [(3, 0), (4, 1), (5, 1)])
    def test_m_and_p_nodes_untouched(self, delta, x):
        a = 2 * x + 2  # any valid a; no A/C nodes exist in this labeling
        if a > delta:
            pytest.skip("parameter out of range")
        graph, labeling = mis_style_plus_labeling(delta, x)
        converted = convert_plus_solution(graph, labeling, delta, a, x)
        assert converted == labeling

    def test_full_verify(self):
        delta, x = 5, 1
        a = 4
        graph, labeling = mis_style_plus_labeling(delta, x)
        result = verify_lemma9(graph, labeling, delta, a, x)
        assert result.ok, result.violations


class TestParameterSpace:
    """Property-based sweep over the whole Lemma 9 parameter range."""

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=2),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_conversion_valid_across_range(self, delta, x, data):
        lower = max(2 * x + 1, x + 2)
        if lower > delta:
            return
        a = data.draw(st.integers(min_value=lower, max_value=delta))
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        result = verify_lemma9(graph, labeling, delta, a, x)
        assert result.ok, (delta, a, x, result.violations)


class TestInputValidation:
    def test_invalid_input_rejected(self):
        graph, labeling = bipartite_plus_labeling(5, 4, 1)
        labeling[(0, 0)] = "M"  # break the C configuration
        with pytest.raises(ValueError):
            verify_lemma9(graph, labeling, 5, 4, 1)

    def test_uncolored_graph_rejected(self):
        from repro.sim.generators import cycle_graph

        graph = cycle_graph(4)
        labeling = {(node, port): "X" for node in range(4) for port in range(2)}
        with pytest.raises(ValueError):
            convert_plus_solution(graph, labeling, 2, 2, 0)

    def test_bipartite_fixture_is_valid_plus_solution(self):
        delta, a, x = 6, 5, 1
        graph, labeling = bipartite_plus_labeling(delta, a, x)
        assert is_proper_edge_coloring(graph)
        problem = family_plus_problem(delta, a, x)
        assert verify_lcl(graph, problem, labeling).ok
