"""Differential *trace* tests: semantic counters across engines.

The kernel's object-level contract (equal outputs) is covered by
``test_kernel_differential.py``.  This file checks the observability
contract on top of it: for the same workload, the reference and kernel
engines must report equal *semantic* counters — labels in/out,
right-closed-set counts, configuration counts — even though their
timing/cache counters (``kernel.cache.*``, ``galois.cache.*``) differ
wildly.  This is the counter taxonomy of
:mod:`repro.observability.schema` enforced over the whole oracle
corpus.

Set ``REPRO_TRACE_ARTIFACT=/path/out.jsonl`` to also export the
kernel-side corpus trace (CI uploads it as a workflow artifact).
"""

import os

import pytest

from repro.core.round_elimination import speedup
from repro.core.self_reduction import self_reduce
from repro.observability.metrics import (
    diff_semantic_profiles,
    semantic_profile,
    total_counters,
)
from repro.observability.schema import SEMANTIC_COUNTERS, validate_trace
from repro.observability.trace import Tracer, tracing
from repro.robustness.errors import InvalidProblem

from tests.oracle import full_corpus, scenario_corpus

CORPUS = full_corpus()
CORPUS_IDS = [name for name, _ in CORPUS]
SCENARIOS = scenario_corpus()
SCENARIO_IDS = [name for name, _ in SCENARIOS]


def traced_speedup(problem, *, use_kernel: bool):
    """One speedup under a fresh tracer; (records, outcome_or_error)."""
    tracer = Tracer()
    error = None
    with tracing(tracer):
        try:
            speedup(problem, use_kernel=use_kernel)
        except InvalidProblem as raised:
            error = str(raised)
    return tracer.finish(), error


@pytest.mark.parametrize("name, problem", CORPUS, ids=CORPUS_IDS)
def test_semantic_counters_agree_per_problem(name, problem):
    reference_records, reference_error = traced_speedup(
        problem, use_kernel=False
    )
    kernel_records, kernel_error = traced_speedup(problem, use_kernel=True)
    assert (reference_error is None) == (kernel_error is None), (
        f"{name}: engines disagree on failure: "
        f"reference={reference_error!r} kernel={kernel_error!r}"
    )
    validate_trace(reference_records)
    validate_trace(kernel_records)
    drift = diff_semantic_profiles(
        semantic_profile(reference_records), semantic_profile(kernel_records)
    )
    assert not drift, f"{name}: semantic counter drift:\n" + "\n".join(drift)


@pytest.mark.parametrize("name, problem", SCENARIOS, ids=SCENARIO_IDS)
def test_self_reduction_semantic_counters_agree(name, problem):
    """The selfred.* counters are engine-equal on scenario base problems."""
    profiles = []
    for use_kernel in (False, True):
        tracer = Tracer()
        with tracing(tracer):
            self_reduce(problem, use_kernel=use_kernel)
        records = tracer.finish()
        validate_trace(records)
        profiles.append(semantic_profile(records))
    drift = diff_semantic_profiles(*profiles)
    assert not drift, f"{name}: semantic counter drift:\n" + "\n".join(drift)
    assert any(
        "selfred.merged_labels" in counters or "labels.in" in counters
        for span, counters in profiles[0].items()
        if span == "op.condense"
    ), f"{name}: no op.condense span in the reference trace"


def test_corpus_wide_profiles_agree_and_export():
    """One trace per engine over the whole corpus: zero semantic drift.

    Also the CI artifact hook: with ``REPRO_TRACE_ARTIFACT`` set, the
    kernel trace is written there for upload.
    """
    reference_tracer = Tracer()
    kernel_tracer = Tracer()
    outcomes = []
    for tracer, use_kernel in (
        (reference_tracer, False), (kernel_tracer, True),
    ):
        failed = []
        with tracing(tracer):
            for name, problem in CORPUS:
                try:
                    speedup(problem, use_kernel=use_kernel)
                except InvalidProblem:
                    failed.append(name)
        outcomes.append(failed)
    assert outcomes[0] == outcomes[1]

    reference_records = reference_tracer.finish()
    kernel_records = kernel_tracer.finish()
    validate_trace(reference_records)
    validate_trace(kernel_records)
    drift = diff_semantic_profiles(
        semantic_profile(reference_records), semantic_profile(kernel_records)
    )
    assert not drift, "corpus-wide semantic drift:\n" + "\n".join(drift)

    # The engines genuinely diverge on the timing side: the kernel
    # caches interned tables, the reference engine has no such counters.
    kernel_totals = total_counters(kernel_records)
    assert kernel_totals.get("kernel.cache.miss", 0) > 0
    assert "kernel.cache.miss" not in total_counters(reference_records)
    assert set(semantic_profile(kernel_records)) and all(
        counter in SEMANTIC_COUNTERS
        for counters in semantic_profile(kernel_records).values()
        for counter in counters
    )

    artifact = os.environ.get("REPRO_TRACE_ARTIFACT")
    if artifact:
        kernel_tracer.write(artifact)
