"""Tests for the resource-governance subsystem (budgets, typed errors,
degradation) and its integration into the engine's hot loops."""

import pytest

from repro.core.constraints import Constraint
from repro.core.problem import Problem
from repro.core.round_elimination import R, speedup
from repro.lowerbound.sequence import lemma13_chain, run_chain
from repro.problems.family import family_problem
from repro.robustness.budget import (
    Budget,
    checkpoint,
    current_budget,
    governed,
)
from repro.robustness.degradation import governed_speedup, shrink_once
from repro.robustness.errors import (
    AlphabetExplosion,
    BudgetExceeded,
    CheckpointCorrupt,
    InvalidProblem,
    ReproError,
    SimplificationFailed,
)
from repro.sim.brute_force import uniform_algorithm_exists
from repro.sim.generators import cycle_graph

from tests.faults import FaultInjector, InjectedFault, tripping_budget


class TestErrorHierarchy:
    """The dual-inheritance contract: typed, but backward compatible."""

    def test_invalid_problem_is_a_value_error(self):
        assert issubclass(InvalidProblem, ValueError)
        assert issubclass(InvalidProblem, ReproError)

    def test_simplification_failed_is_a_value_error(self):
        assert issubclass(SimplificationFailed, ValueError)

    def test_budget_exceeded_is_a_runtime_error(self):
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(BudgetExceeded, ReproError)

    def test_alphabet_explosion_is_a_budget_error(self):
        assert issubclass(AlphabetExplosion, BudgetExceeded)

    def test_checkpoint_corrupt_is_repro_only(self):
        assert issubclass(CheckpointCorrupt, ReproError)
        assert not issubclass(CheckpointCorrupt, ValueError)

    def test_context_is_recorded_and_rendered(self):
        error = ReproError("boom", size=9, operator="R")
        assert error.message == "boom"
        assert error.context == {"size": 9, "operator": "R"}
        assert "boom" in str(error)
        assert "size=9" in str(error)
        assert "operator=R" in str(error)

    def test_injected_fault_is_not_a_value_error(self):
        # The certificate builder swallows ValueError for proof checks;
        # injected faults must propagate instead.
        assert issubclass(InjectedFault, ReproError)
        assert not issubclass(InjectedFault, ValueError)


class TestBudget:
    def test_alphabet_cap_trips_with_context(self):
        budget = Budget(max_alphabet=4)
        budget.check_alphabet(4, operator="R")
        with pytest.raises(AlphabetExplosion) as excinfo:
            budget.check_alphabet(5, operator="R")
        assert excinfo.value.context["operator"] == "R"

    def test_configuration_cap_trips(self):
        budget = Budget(max_configurations=10)
        budget.check_configurations(10)
        with pytest.raises(BudgetExceeded):
            budget.check_configurations(11)

    def test_chain_step_cap_trips(self):
        budget = Budget(max_chain_steps=2)
        budget.check_chain_step(0)
        budget.check_chain_step(1)
        with pytest.raises(BudgetExceeded):
            budget.check_chain_step(2)

    def test_wall_clock_trips_once_elapsed(self):
        budget = Budget(wall_clock_seconds=0.0)
        budget.start()
        with pytest.raises(BudgetExceeded):
            budget.checkpoint()

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.start()
        budget.checkpoint()
        budget.check_alphabet(10**9)
        budget.check_configurations(10**9)
        budget.check_chain_step(10**9)

    def test_governed_installs_the_ambient_budget(self):
        budget = Budget(max_alphabet=100)
        assert current_budget() is None
        with governed(budget):
            assert current_budget() is budget
        assert current_budget() is None

    def test_module_level_checkpoint_is_a_noop_without_budget(self):
        checkpoint(phase="nowhere")

    def test_probe_fires_at_every_checkpoint(self):
        injector = FaultInjector()
        budget = Budget(probe=injector)
        budget.start()
        budget.checkpoint(phase="one")
        budget.checkpoint(phase="two")
        assert injector.calls == 2
        assert injector.contexts[0]["phase"] == "one"

    def test_probe_trips_at_the_configured_call(self):
        budget, injector = tripping_budget(trip_at=3)
        budget.start()
        budget.checkpoint()
        budget.checkpoint()
        with pytest.raises(InjectedFault) as excinfo:
            budget.checkpoint()
        assert injector.calls == 3
        assert excinfo.value.context["call"] == 3


class TestEngineIntegration:
    def test_speedup_trips_alphabet_budget(self):
        # speedup(Pi(4, 4, 0)) produces alphabets of sizes 8 and 13.
        problem = family_problem(4, 4, 0)
        with governed(Budget(max_alphabet=3)):
            with pytest.raises(AlphabetExplosion) as excinfo:
                speedup(problem)
        assert excinfo.value.context["operator"] in ("R", "Rbar")
        assert "alphabet_before" in excinfo.value.context

    def test_r_passes_under_a_loose_budget(self):
        problem = family_problem(4, 4, 0)
        with governed(Budget(max_alphabet=64)):
            assert len(R(problem).alphabet) == 8

    def test_brute_force_honors_ambient_configuration_cap(self):
        problem = family_problem(3, 2, 1)
        graph = cycle_graph(12)
        with governed(Budget(max_configurations=10)):
            with pytest.raises(BudgetExceeded) as excinfo:
                uniform_algorithm_exists(problem, graph, 2)
        assert excinfo.value.context["limit"] == 10

    def test_chain_step_budget_truncates_construction(self):
        with governed(Budget(max_chain_steps=2)):
            with pytest.raises(BudgetExceeded):
                lemma13_chain(2**9, 0)

    def test_fault_injection_reaches_the_brute_force_loop(self):
        budget, injector = tripping_budget(trip_at=5)
        problem = family_problem(2, 1, 1)
        graph = cycle_graph(4)
        with governed(budget):
            with pytest.raises(InjectedFault):
                uniform_algorithm_exists(problem, graph, 1)
        assert injector.contexts[-1]["phase"] == "brute-force"


class TestProblemValidation:
    def test_edge_arity_must_be_two(self):
        node = Constraint.from_condensed(["A A"])
        edge = Constraint.from_condensed(["A A A"])
        with pytest.raises(InvalidProblem) as excinfo:
            Problem(["A"], node, edge)
        assert excinfo.value.context["arity"] == 3

    def test_stray_labels_name_the_offending_configuration(self):
        node = Constraint.from_condensed(["A B"])
        edge = Constraint.from_condensed(["A A"])
        with pytest.raises(InvalidProblem) as excinfo:
            Problem(["A"], node, edge)
        assert "A B" in excinfo.value.context["configuration"]

    def test_duplicate_node_lines_rejected(self):
        with pytest.raises(InvalidProblem) as excinfo:
            Problem.from_text(["M X^2", "X^2 M"], ["M X", "X X"])
        assert "configuration" in excinfo.value.context

    def test_identical_repeated_line_tolerated(self):
        problem = Problem.from_text(["X^3", "X^3"], ["X X"])
        assert problem.delta == 3

    def test_malformed_lines_raise_invalid_problem(self):
        with pytest.raises(InvalidProblem):
            Problem.from_text(["M X^2", "P O"], ["M X"])

    def test_non_injective_rename_rejected(self):
        problem = family_problem(3, 2, 1)
        with pytest.raises(InvalidProblem):
            problem.rename({"M": "X"})

    def test_still_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            Problem.from_text(["M X^2", "P O"], ["M X"])


class TestDegradation:
    def test_shrink_once_reduces_the_alphabet(self):
        problem = family_problem(4, 4, 0)
        shrunk, event = shrink_once(problem, step=0)
        assert len(shrunk.alphabet) < len(problem.alphabet)
        assert event.alphabet_after == len(shrunk.alphabet)
        assert "degradation" in event.provenance()

    def test_governed_speedup_without_pressure_is_clean(self):
        problem = family_problem(4, 4, 0)
        stepped = governed_speedup(problem, Budget(max_alphabet=64))
        assert not stepped.degraded
        assert stepped.events == []
        assert stepped.problem == speedup(problem).problem

    def test_governed_speedup_degrades_under_pressure(self):
        problem = family_problem(4, 4, 0)
        stepped = governed_speedup(problem, Budget(max_alphabet=4))
        assert stepped.degraded
        assert stepped.events
        assert len(stepped.problem_used.alphabet) < len(problem.alphabet)
        for event in stepped.events:
            assert "degradation" in event.provenance()

    def test_degradation_events_roundtrip_through_dicts(self):
        problem = family_problem(4, 4, 0)
        stepped = governed_speedup(problem, Budget(max_alphabet=4))
        for event in stepped.events:
            clone = type(event).from_dict(event.to_dict())
            assert clone == event

    def test_exhausted_ladder_raises_simplification_failed(self):
        problem = family_problem(4, 4, 0)
        with pytest.raises(SimplificationFailed):
            governed_speedup(problem, Budget(max_alphabet=1))

    def test_degradation_can_be_disabled(self):
        problem = family_problem(4, 4, 0)
        with pytest.raises(AlphabetExplosion):
            governed_speedup(problem, Budget(max_alphabet=4), degrade=False)


class TestRunChainEquivalence:
    @pytest.mark.parametrize("delta,x", [(8, 0), (16, 1), (64, 0), (512, 0)])
    def test_run_chain_matches_lemma13_chain(self, delta, x):
        assert run_chain(delta, x).chain == lemma13_chain(delta, x)

    def test_run_chain_reports_completion(self):
        result = run_chain(64, 0)
        assert result.complete
        assert result.resumed_from_step is None
        assert result.certified_rounds == len(result.chain) - 1
