"""Violation records and ``# reprolint: disable=...`` suppressions.

A violation pins one rule code to one physical line of one file.  The
suppression syntax is a trailing comment on the flagged line::

    risky_call()  # reprolint: disable=RL002 -- seeded, ordering-free

Several codes may be disabled at once (``disable=RL001,RL007``) and
``disable=all`` silences every rule for that line.  Everything after a
``--`` separator is a free-form justification; the project convention
(enforced by review, not by the tool) is that real-tree suppressions
always carry one.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO

#: Matches one suppression comment anywhere in a physical line's comment.
_SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Za-z0-9, ]+?)(?:\s*--.*)?$"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding: where, which rule, and how to fix it."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line diagnostic: ``path:line: CODE message``."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule codes, from ``# reprolint:`` comments.

    Returns ``{line_number: {"RL001", ...}}``; the special entry
    ``"all"`` suppresses every rule on that line.  Tokenizes rather
    than regex-scanning raw lines so that ``#`` characters inside
    string literals never read as comments.
    """
    suppressed: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # unparseable tail
        comments = []
    for token in comments:
        match = _SUPPRESSION.search(token.string)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() if code.strip().lower() != "all" else "all"
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if codes:
            line = token.start[0]
            suppressed[line] = suppressed.get(line, frozenset()) | codes
    return suppressed


def is_suppressed(
    suppressions: dict[int, frozenset[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is disabled on physical line ``line``."""
    codes = suppressions.get(line)
    return codes is not None and (code in codes or "all" in codes)


__all__ = ["Violation", "parse_suppressions", "is_suppressed"]
