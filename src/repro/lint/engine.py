"""File discovery and the per-file lint pass.

The engine walks the requested paths, parses every ``*.py`` file once,
collects its ``# reprolint: disable=...`` comments, runs the in-scope
rules from :mod:`repro.lint.rules`, and filters out suppressed
findings.  Scope is derived from the file's path *parts*, so fixture
trees that mirror the repository layout (``.../src/repro/core/...``)
are linted exactly like the real one.

Two directories are skipped during discovery:

* ``lint_fixtures`` — the test corpus of deliberately violating files;
* ``golden`` — JSON data, plus anything hidden or ``__pycache__``.

Both can still be linted by naming a file inside them explicitly,
which is how the fixture tests drive the engine.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

from repro.lint.rules import FileContext, check_file
from repro.lint.violations import Violation, is_suppressed, parse_suppressions

#: Directory names never descended into: lint and analyzer fixture
#: trees carry deliberate violations, goldens are generated artifacts.
_SKIPPED_DIRS = ("lint_fixtures", "fixtures", "golden", "__pycache__")


@dataclass(frozen=True)
class FileReport:
    """The outcome of linting one file."""

    path: str
    violations: tuple[Violation, ...]
    error: str | None = None


def discover(paths: list[str]) -> tuple[list[str], list[str]]:
    """Expand files and directories into the python files to lint.

    Returns ``(files, missing)`` where ``missing`` lists requested
    paths that do not exist.  Directories are walked recursively in
    sorted order (deterministic output); skipped-directory names and
    hidden directories are pruned.
    """
    files: list[str] = []
    missing: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, directories, names in os.walk(path):
                directories[:] = sorted(
                    name
                    for name in directories
                    if name not in _SKIPPED_DIRS and not name.startswith(".")
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            missing.append(path)
    return files, missing


def lint_file(path: str) -> FileReport:
    """Lint one file: parse, run in-scope rules, drop suppressions."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        return FileReport(path=path, violations=(), error=str(error))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return FileReport(
            path=path, violations=(),
            error=f"syntax error: {error.msg} (line {error.lineno})",
        )
    parts = tuple(os.path.normpath(path).replace(os.sep, "/").split("/"))
    context = FileContext(path=path, parts=parts, tree=tree, source=source)
    suppressions = parse_suppressions(source)
    kept = tuple(
        violation
        for violation in sorted(
            check_file(context), key=lambda v: (v.line, v.code)
        )
        if not is_suppressed(suppressions, violation.line, violation.code)
    )
    return FileReport(path=path, violations=kept)


def lint_paths(paths: list[str]) -> tuple[list[FileReport], list[str]]:
    """Lint every python file under ``paths``.

    Returns ``(reports, missing_paths)``; reports come back in
    discovery order, violation-free files included (their report
    simply carries an empty tuple).
    """
    files, missing = discover(paths)
    return [lint_file(path) for path in files], missing


__all__ = ["FileReport", "discover", "lint_file", "lint_paths"]
