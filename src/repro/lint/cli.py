"""The ``python -m repro.lint`` command line.

Exit-code convention (shared with ``tools/regen_golden.py`` and
``tools/trace_report.py``):

* ``0`` — the scanned tree is clean;
* ``1`` — violations found (or, for the tools, drift detected);
* ``2`` — usage error, or input that could not be read or parsed.

This module deliberately prints: it *is* the script layer the RL007
rule routes user-facing output to — the same carve-out tools/,
examples/, and benchmarks/ get, stated here explicitly because the
file lives inside the package.
"""

from __future__ import annotations

import sys

from repro.lint.engine import lint_paths
from repro.lint.rules import RULES

USAGE = """\
usage: python -m repro.lint [--list-rules] PATH [PATH ...]

Project-invariant static analysis for the round-elimination engine.
Scans the given files and directories (the canonical invocation is
`python -m repro.lint src tests tools benchmarks`) and reports every
violation as `path:line: CODE message`.

Suppress a finding with a trailing comment on its line:
    # reprolint: disable=RL001 -- justification

Exit status (unified across repro tooling):
    0  clean
    1  violations found
    2  usage error or unreadable/unparseable input
"""


def list_rules() -> str:
    """The rule catalogue as aligned ``CODE name summary`` lines."""
    width = max(len(rule.name) for rule in RULES)
    return "\n".join(
        f"{rule.code}  {rule.name.ljust(width)}  {rule.summary}"
        for rule in RULES
    )


def main(argv: list[str]) -> int:
    paths: list[str] = []
    for argument in argv:
        if argument in ("-h", "--help"):
            print(USAGE)  # reprolint: disable=RL007 -- the lint CLI front-end
            return 0
        if argument == "--list-rules":
            print(list_rules())  # reprolint: disable=RL007 -- the lint CLI front-end
            return 0
        if argument.startswith("-"):
            print(  # reprolint: disable=RL007 -- the lint CLI front-end
                f"error: unknown option {argument}\n{USAGE}", file=sys.stderr
            )
            return 2
        paths.append(argument)
    if not paths:
        print(  # reprolint: disable=RL007 -- the lint CLI front-end
            f"error: no paths given\n{USAGE}", file=sys.stderr
        )
        return 2
    reports, missing = lint_paths(paths)
    for path in missing:
        print(  # reprolint: disable=RL007 -- the lint CLI front-end
            f"error: no such path: {path}", file=sys.stderr
        )
    if missing:
        return 2
    broken = [report for report in reports if report.error is not None]
    for report in broken:
        print(  # reprolint: disable=RL007 -- the lint CLI front-end
            f"error: cannot lint {report.path}: {report.error}",
            file=sys.stderr,
        )
    violations = [
        violation for report in reports for violation in report.violations
    ]
    for violation in violations:
        print(violation.render())  # reprolint: disable=RL007 -- the lint CLI front-end
    if broken:
        return 2
    if violations:
        print(  # reprolint: disable=RL007 -- the lint CLI front-end
            f"reprolint: {len(violations)} violation(s) in "
            f"{sum(1 for r in reports if r.violations)} file(s) "
            f"({len(reports)} scanned)",
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = ["main", "USAGE", "list_rules"]
