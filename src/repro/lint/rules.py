"""The project-invariant rule catalogue, RL001 through RL010.

Each rule guards one convention the engine's correctness story leans
on but that nothing else checks mechanically:

* RL001 — typed-error discipline (PR 1's :mod:`repro.robustness.errors`).
* RL002 — determinism in engine code: the operator cache and the
  checkpoint byte-identity contract both assume that equal inputs
  produce equal bytes, which wall clocks, ambient RNG, ``id()`` keys,
  and raw set iteration all silently break.
* RL003 — picklability across the :class:`KernelPool` process boundary.
* RL004 — every emitted trace counter is declared (and classified
  semantic vs timing) in :mod:`repro.observability.schema`.
* RL005 — ambient context managers (``governed()``/``tracing()``/
  ``caching()``) restore their ContextVar in ``__exit__``; entering
  them by hand skips the restore on error paths.
* RL006 — observational provenance (cache/trace summaries) lands only
  after the final checkpoint persist, so warm/cold and resumed runs
  stay byte-identical on disk.
* RL007 — no stray ``print`` outside the user-facing script dirs.
* RL008 — public ``core``/``lowerbound`` API is fully annotated (the
  contract ``mypy``'s strict tier then type-checks).
* RL009 — every registered scenario (:mod:`repro.scenarios`) declares
  its test-substrate wiring: a non-empty oracle-corpus entry, a
  non-empty golden trace case, and a ``.scn`` spec filename.  A
  scenario outside the differential and golden gates is an untested
  workload pretending otherwise.
* RL010 — kernel functions marked ``# hotpath`` stay allocation-free
  of ``set``/``frozenset``: the engine-v2 inner loops speak int
  bitmasks end to end, and a set sneaking back into a marked function
  is exactly the regression the Δ=5 bench gate would later catch the
  slow way.  Mark a function by placing ``# hotpath`` on its ``def``
  line or on the line directly above it.

Rules are pure AST passes over one file at a time; scope is decided
from the file's path parts so the same rule set runs identically over
the real tree and over the test fixtures that mirror its layout.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.lint.violations import Violation

#: Counters every ``.add("name")`` emission must be declared among.
from repro.observability.schema import SEMANTIC_COUNTERS, TIMING_COUNTERS

DECLARED_COUNTERS = frozenset(SEMANTIC_COUNTERS) | frozenset(TIMING_COUNTERS)

#: Directories whose files count as engine code for determinism rules.
_ENGINE_DIRS = ("core", "lowerbound", "sim")

#: Directories where ``print`` is the product, not a leftover.
_PRINT_DIRS = ("tools", "examples", "benchmarks")

_BARE_EXCEPTIONS = ("ValueError", "RuntimeError", "Exception")

_TIME_FUNCTIONS = (
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "thread_time",
)

_POOL_DISPATCH = (
    "map", "imap", "imap_unordered", "map_async",
    "apply_async", "starmap", "starmap_async", "submit",
)

_OBSERVATIONAL_APPENDERS = ("_append_cache_summary", "_append_trace_summary")
_OBSERVATIONAL_ARG_NAMES = ("cache_notes",)
_OBSERVATIONAL_ARG_CALLS = ("summary_line", "trace_summary_line")
_PERSIST_NAMES = ("persist",)
_PERSIST_ATTRS = ("save",)


@dataclass(frozen=True)
class FileContext:
    """One parsed file, ready for the rule passes."""

    path: str
    parts: tuple[str, ...]
    tree: ast.Module
    source: str


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: code, scope predicate, and the AST pass."""

    code: str
    name: str
    summary: str
    applies: Callable[[tuple[str, ...]], bool]
    check: Callable[[FileContext], Iterator[Violation]]


# ---------------------------------------------------------------------------
# Path-scope helpers
# ---------------------------------------------------------------------------

def _repro_parts(parts: tuple[str, ...]) -> tuple[str, ...]:
    """The path parts inside the ``repro`` package, or empty."""
    if "repro" not in parts:
        return ()
    return parts[parts.index("repro") + 1:]


def _in_repro(parts: tuple[str, ...]) -> bool:
    return bool(_repro_parts(parts))


def _in_engine_code(parts: tuple[str, ...]) -> bool:
    inner = _repro_parts(parts)
    return bool(inner) and inner[0] in _ENGINE_DIRS


def _in_kernel(parts: tuple[str, ...]) -> bool:
    inner = _repro_parts(parts)
    return len(inner) >= 2 and inner[0] == "core" and inner[1] == "kernel"


def _in_public_api_dirs(parts: tuple[str, ...]) -> bool:
    inner = _repro_parts(parts)
    return bool(inner) and inner[0] in ("core", "lowerbound")


def _is_errors_module(parts: tuple[str, ...]) -> bool:
    inner = _repro_parts(parts)
    return inner[-2:] == ("robustness", "errors.py")


def _in_scenarios(parts: tuple[str, ...]) -> bool:
    inner = _repro_parts(parts)
    return bool(inner) and inner[0] == "scenarios"


# ---------------------------------------------------------------------------
# Small AST helpers
# ---------------------------------------------------------------------------

def _attach_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._reprolint_parent = parent  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_reprolint_parent", None)


def _call_name(node: ast.Call) -> str | None:
    """The simple name of a called function, if it has one."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_setish(node: ast.expr) -> bool:
    """An expression that evaluates to a freshly built, unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _violation(
    context: FileContext, node: ast.AST, code: str, message: str
) -> Violation:
    return Violation(
        path=context.path,
        line=getattr(node, "lineno", 1),
        code=code,
        message=message,
    )


# ---------------------------------------------------------------------------
# RL001 — typed-error discipline
# ---------------------------------------------------------------------------

def _check_rl001(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BARE_EXCEPTIONS:
            yield _violation(
                context, node, "RL001",
                f"bare `raise {name}` in engine code; raise a typed "
                "error from repro.robustness.errors instead (they "
                "double-inherit the builtin, so callers keep working)",
            )


# ---------------------------------------------------------------------------
# RL002 — determinism in engine code
# ---------------------------------------------------------------------------

def _check_rl002(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            yield from _rl002_call(context, node)
        elif isinstance(node, ast.For) and _is_setish(node.iter):
            yield _violation(
                context, node, "RL002",
                "iterating a freshly built set: iteration order is "
                "hash-seed dependent; wrap in sorted(...) before it "
                "can feed output ordering",
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for generator in node.generators:
                if _is_setish(generator.iter):
                    yield _violation(
                        context, node, "RL002",
                        "building ordered output by iterating a set: "
                        "wrap the iterable in sorted(...)",
                    )
        elif isinstance(node, ast.Subscript):
            for inner in ast.walk(node.slice):
                if isinstance(inner, ast.Call) and _call_name(inner) == "id":
                    yield _violation(
                        context, node, "RL002",
                        "id()-keyed lookup: object addresses vary run to "
                        "run; key on stable identity instead",
                    )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    key is not None
                    and isinstance(key, ast.Call)
                    and _call_name(key) == "id"
                ):
                    yield _violation(
                        context, node, "RL002",
                        "id()-keyed dict: object addresses vary run to "
                        "run; key on stable identity instead",
                    )


def _rl002_call(context: FileContext, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base, attr = func.value.id, func.attr
        if base == "time" and attr in _TIME_FUNCTIONS:
            yield _violation(
                context, node, "RL002",
                f"wall-clock read time.{attr}() in engine code breaks "
                "reproducible outputs; thread timing through the "
                "robustness budget or the observability layer",
            )
        elif base == "random" and attr != "Random":
            yield _violation(
                context, node, "RL002",
                f"ambient random.{attr}() in engine code; accept an "
                "injected random.Random(seed) instead",
            )
        elif base == "datetime" and attr in ("now", "utcnow", "today"):
            yield _violation(
                context, node, "RL002",
                f"datetime.{attr}() in engine code breaks reproducible "
                "outputs; pass timestamps in explicitly",
            )
    # {list,tuple,enumerate}(set(...)) and "sep".join(set(...)):
    # unordered input materialized into ordered output.
    setish_arg = bool(node.args) and _is_setish(node.args[0])
    if setish_arg and isinstance(func, ast.Name) and func.id in (
        "list", "tuple", "enumerate"
    ):
        yield _violation(
            context, node, "RL002",
            f"{func.id}(set(...)) materializes hash-seed-dependent "
            "order; use sorted(...)",
        )
    elif (
        setish_arg
        and isinstance(func, ast.Attribute)
        and func.attr == "join"
    ):
        yield _violation(
            context, node, "RL002",
            "str.join over a set renders hash-seed-dependent order; "
            "use sorted(...)",
        )


# ---------------------------------------------------------------------------
# RL003 — picklable dispatch through kernel/parallel.py
# ---------------------------------------------------------------------------

def _check_rl003(context: FileContext) -> Iterator[Violation]:
    nested: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if (
                    inner is not node
                    and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nested.add(inner.name)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _POOL_DISPATCH):
            continue
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(argument, ast.Lambda):
                yield _violation(
                    context, node, "RL003",
                    f"lambda passed to pool.{func.attr}: lambdas do not "
                    "pickle across the KernelPool process boundary; "
                    "dispatch a module-level function",
                )
            elif isinstance(argument, ast.Name) and argument.id in nested:
                yield _violation(
                    context, node, "RL003",
                    f"locally defined function {argument.id!r} passed to "
                    f"pool.{func.attr}: nested functions do not pickle; "
                    "hoist it to module level",
                )


# ---------------------------------------------------------------------------
# RL004 — emitted counters must be declared in the schema
# ---------------------------------------------------------------------------

def _check_rl004(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_add = (
            isinstance(func, ast.Attribute) and func.attr == "add"
        ) or (isinstance(func, ast.Name) and func.id == "add")
        if not is_add:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(
            first.value, str
        ):
            continue
        counter = first.value
        # Counter names are dotted (``phase.metric``); dot-free string
        # adds are ordinary set.add calls, not metric emissions.
        if "." not in counter:
            continue
        if counter not in DECLARED_COUNTERS:
            yield _violation(
                context, node, "RL004",
                f"counter {counter!r} is not declared in "
                "repro.observability.schema; add it to "
                "SEMANTIC_COUNTERS (engine-equal) or TIMING_COUNTERS "
                "(engine-specific) first",
            )


# ---------------------------------------------------------------------------
# RL005 — ambient context managers enter via ``with``
# ---------------------------------------------------------------------------

def _check_rl005(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("__enter__", "__exit__")
        ):
            yield _violation(
                context, node, "RL005",
                f"manual {node.func.attr}() call: ambient context "
                "managers (governed/tracing/caching) must be entered "
                "via `with`, or their ContextVar reset is skipped on "
                "error paths",
            )


# ---------------------------------------------------------------------------
# RL006 — observational provenance only after the final persist
# ---------------------------------------------------------------------------

def _is_persist_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name) and node.func.id in _PERSIST_NAMES:
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _PERSIST_ATTRS
    )


def _is_observational_append(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if (
        isinstance(node.func, ast.Name)
        and node.func.id in _OBSERVATIONAL_APPENDERS
    ):
        return True
    if not (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in ("append", "extend")
    ):
        return False
    for argument in node.args:
        for inner in ast.walk(argument):
            if (
                isinstance(inner, ast.Name)
                and inner.id in _OBSERVATIONAL_ARG_NAMES
            ):
                return True
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in _OBSERVATIONAL_ARG_CALLS
            ):
                return True
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in _OBSERVATIONAL_ARG_CALLS
            ):
                return True
    return False


def _enclosing_statement(node: ast.AST) -> ast.stmt | None:
    current: ast.AST | None = node
    while current is not None:
        parent = _parent(current)
        if parent is not None and isinstance(current, ast.stmt):
            for field in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(parent, field, None)
                if isinstance(block, list) and current in block:
                    return current
        current = parent
    return None


def _block_of(statement: ast.stmt) -> list[ast.stmt] | None:
    parent = _parent(statement)
    if parent is None:
        return None
    for field in ("body", "orelse", "finalbody"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and statement in block:
            return block
    return None


def _check_rl006(context: FileContext) -> Iterator[Violation]:
    for function in ast.walk(context.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        persist_lines = [
            node.lineno
            for node in ast.walk(function)
            if _is_persist_call(node)
        ]
        if not persist_lines:
            continue
        last_persist = max(persist_lines)
        for node in ast.walk(function):
            if not _is_observational_append(node):
                continue
            # Do not re-flag from an enclosing nested function.
            owner = node
            while owner is not None and not isinstance(
                owner, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                owner = _parent(owner)  # type: ignore[assignment]
            if owner is not function:
                continue
            statement = _enclosing_statement(node)
            exempt = False
            decided = False
            if statement is not None:
                block = _block_of(statement)
                if block is not None:
                    index = block.index(statement)
                    for later in block[index + 1:]:
                        if any(
                            _is_persist_call(inner)
                            for inner in ast.walk(later)
                        ):
                            decided = True
                            break
                        if isinstance(later, (ast.Return, ast.Raise)):
                            exempt = True
                            break
            if exempt:
                continue
            if decided or node.lineno < last_persist:
                yield _violation(
                    context, node, "RL006",
                    "observational provenance (cache/trace summary) "
                    "written before a later checkpoint persist: move it "
                    "after the final persist so warm, cold, and resumed "
                    "checkpoints stay byte-identical",
                )


# ---------------------------------------------------------------------------
# RL007 — no print outside the script directories
# ---------------------------------------------------------------------------

def _check_rl007(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call) and _call_name(node) == "print":
            yield _violation(
                context, node, "RL007",
                "print() outside tools/, examples/, benchmarks/: return "
                "or log the value instead (rendered output belongs to "
                "the script layer)",
            )


# ---------------------------------------------------------------------------
# RL008 — complete annotations on the public core/lowerbound API
# ---------------------------------------------------------------------------

def _missing_annotations(
    function: ast.FunctionDef | ast.AsyncFunctionDef, *, method: bool
) -> list[str]:
    arguments = function.args
    ordered: list[ast.arg] = (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
    )
    if arguments.vararg is not None:
        ordered.append(arguments.vararg)
    if arguments.kwarg is not None:
        ordered.append(arguments.kwarg)
    missing = [
        f"parameter {argument.arg!r}"
        for position, argument in enumerate(ordered)
        if argument.annotation is None
        and not (method and position == 0 and argument.arg in ("self", "cls"))
    ]
    if function.returns is None:
        missing.append("return type")
    return missing


def _public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _check_rl008(context: FileContext) -> Iterator[Violation]:
    def flag(
        function: ast.FunctionDef | ast.AsyncFunctionDef, *, method: bool
    ) -> Iterator[Violation]:
        missing = _missing_annotations(function, method=method)
        if missing:
            yield _violation(
                context, function, "RL008",
                f"public function {function.name!r} is missing type "
                f"annotations ({', '.join(missing)}); the strict mypy "
                "tier requires the full signature",
            )

    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name):
                yield from flag(node, method=False)
        elif isinstance(node, ast.ClassDef) and _public(node.name):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _public(member.name):
                    yield from flag(member, method=True)


# ---------------------------------------------------------------------------
# RL009 — scenario registrations carry their test-substrate wiring
# ---------------------------------------------------------------------------

#: ScenarioDecl's positional field order (mirrors the dataclass).
_SCENARIO_DECL_FIELDS = ("spec", "oracle_corpus", "golden", "quick")


def _check_rl009(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "ScenarioDecl":
            continue
        fields: dict[str, ast.expr] = {}
        for position, argument in enumerate(node.args):
            if position < len(_SCENARIO_DECL_FIELDS):
                fields[_SCENARIO_DECL_FIELDS[position]] = argument
        for keyword in node.keywords:
            if keyword.arg is not None:
                fields[keyword.arg] = keyword.value
        spec = fields.get("spec")
        spec_name = (
            spec.value
            if isinstance(spec, ast.Constant) and isinstance(spec.value, str)
            else None
        )
        label = spec_name or "<unknown spec>"
        for field in ("oracle_corpus", "golden"):
            value = fields.get(field)
            if value is None:
                yield _violation(
                    context, node, "RL009",
                    f"scenario {label} does not declare {field!r}: every "
                    "registered scenario must name its oracle-corpus entry "
                    "and its golden trace case (the differential and "
                    "golden gates key on them)",
                )
            elif isinstance(value, ast.Constant) and (
                not isinstance(value.value, str) or not value.value
            ):
                yield _violation(
                    context, node, "RL009",
                    f"scenario {label} declares an empty {field!r}; name "
                    "a real oracle-corpus entry / golden case",
                )
        if spec_name is not None and not spec_name.endswith(".scn"):
            yield _violation(
                context, node, "RL009",
                f"scenario spec filename {spec_name!r} must end in '.scn' "
                "(the declarative spec format under scenarios/)",
            )


# ---------------------------------------------------------------------------
# RL010 — hotpath-marked kernel functions allocate no sets
# ---------------------------------------------------------------------------

#: The exact marker comment that opts a function into RL010.
_HOTPATH_MARKER = "# hotpath"


def _hotpath_functions(
    context: FileContext,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions marked ``# hotpath`` on the def line or the line above.

    For a decorated function ``node.lineno`` is the ``def`` line, below
    the decorators — so "the line above" is anchored at the function's
    first line of source (its first decorator, if any), where the
    marker naturally sits.
    """
    lines = context.source.splitlines()
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        def_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        anchor = min(
            [node.lineno]
            + [decorator.lineno for decorator in node.decorator_list]
        )
        above = lines[anchor - 2] if anchor >= 2 else ""
        if _HOTPATH_MARKER in def_line or above.strip() == _HOTPATH_MARKER:
            yield node


def _check_rl010(context: FileContext) -> Iterator[Violation]:
    for function in _hotpath_functions(context):
        for node in ast.walk(function):
            if isinstance(node, ast.expr) and _is_setish(node):
                yield _violation(
                    context, node, "RL010",
                    f"set/frozenset allocated inside `# hotpath` function "
                    f"{function.name!r}: the kernel hot path speaks int "
                    "bitmasks only — hoist the set build to a cold "
                    "(unmarked) helper or drop the marker",
                )


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

RULES: Sequence[Rule] = (
    Rule(
        code="RL001",
        name="typed-errors",
        summary=(
            "no bare raise ValueError/RuntimeError/Exception in engine "
            "code outside robustness/errors.py"
        ),
        applies=lambda parts: _in_repro(parts) and not _is_errors_module(parts),
        check=_check_rl001,
    ),
    Rule(
        code="RL002",
        name="determinism",
        summary=(
            "no wall clocks, ambient RNG, id() keys, or raw set "
            "iteration under core/, lowerbound/, sim/"
        ),
        applies=_in_engine_code,
        check=_check_rl002,
    ),
    Rule(
        code="RL003",
        name="picklable-dispatch",
        summary=(
            "functions dispatched through kernel/parallel.py must be "
            "module-level (picklable payloads only)"
        ),
        applies=_in_kernel,
        check=_check_rl003,
    ),
    Rule(
        code="RL004",
        name="declared-counters",
        summary=(
            "every counter emitted via observability must be declared "
            "in schema.py (semantic vs timing)"
        ),
        applies=_in_repro,
        check=_check_rl004,
    ),
    Rule(
        code="RL005",
        name="with-not-enter",
        summary=(
            "ambient context managers are entered via with, never "
            "manually __enter__-ed"
        ),
        applies=lambda parts: True,
        check=_check_rl005,
    ),
    Rule(
        code="RL006",
        name="provenance-after-persist",
        summary=(
            "checkpoint-affecting provenance writes occur only after "
            "the final persist call of the enclosing function"
        ),
        applies=_in_repro,
        check=_check_rl006,
    ),
    Rule(
        code="RL007",
        name="no-stray-print",
        summary="no print() outside tools/, examples/, benchmarks/",
        applies=lambda parts: not any(
            part in _PRINT_DIRS for part in parts
        ),
        check=_check_rl007,
    ),
    Rule(
        code="RL008",
        name="annotated-public-api",
        summary=(
            "public core/ and lowerbound/ functions carry complete "
            "type annotations"
        ),
        applies=_in_public_api_dirs,
        check=_check_rl008,
    ),
    Rule(
        code="RL009",
        name="scenario-substrate",
        summary=(
            "every registered scenario declares a non-empty "
            "oracle-corpus entry, golden trace case, and .scn spec"
        ),
        applies=_in_scenarios,
        check=_check_rl009,
    ),
    Rule(
        code="RL010",
        name="hotpath-no-set-alloc",
        summary=(
            "kernel functions marked `# hotpath` allocate no "
            "set/frozenset (int-bitmask loops only)"
        ),
        applies=_in_kernel,
        check=_check_rl010,
    ),
)


def check_file(context: FileContext) -> list[Violation]:
    """Every violation of every in-scope rule, unsorted and unfiltered."""
    _attach_parents(context.tree)
    findings: list[Violation] = []
    for rule in RULES:
        if rule.applies(context.parts):
            findings.extend(rule.check(context))
    return findings


__all__ = ["Rule", "RULES", "FileContext", "check_file", "DECLARED_COUNTERS"]
