"""``repro.lint`` — project-invariant static analysis (reprolint).

A zero-dependency AST linter enforcing the conventions the engine's
correctness story depends on: typed errors (RL001), determinism in
engine code (RL002), picklable parallel dispatch (RL003), declared
trace counters (RL004), ``with``-entered ambient contexts (RL005),
provenance-after-persist checkpoint discipline (RL006), no stray
prints (RL007), and a fully annotated public ``core``/``lowerbound``
API (RL008).

Run it as ``python -m repro.lint src tests tools benchmarks``; see
:mod:`repro.lint.cli` for the exit-code convention and
:mod:`repro.lint.rules` for the catalogue.
"""

from __future__ import annotations

from repro.lint.engine import FileReport, discover, lint_file, lint_paths
from repro.lint.rules import RULES, FileContext, Rule, check_file
from repro.lint.violations import Violation, is_suppressed, parse_suppressions

__all__ = [
    "FileContext",
    "FileReport",
    "Rule",
    "RULES",
    "Violation",
    "check_file",
    "discover",
    "is_suppressed",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
]
