"""Entry point: ``python -m repro.lint src tests tools benchmarks``."""

from __future__ import annotations

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
