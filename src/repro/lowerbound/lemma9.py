"""Lemma 9: the Delta-edge-coloring trick.

Given a solution of Pi+_Delta(a, x) on a Delta-regular, properly
Delta-edge-colored graph, nodes can convert it — in zero rounds, no
communication — into a solution of
Pi_Delta(floor((a - 2x - 1)/2), x + 1), for all ``2x + 1 <= a <= Delta``.

This is the novelty of the paper (Sec. 1.2): the conversion removes the
troublesome ``C`` configuration by letting C-nodes claim ownership
(label ``A``) only on the low colors, while A-nodes simultaneously
*give up* ownership on exactly those colors, so no ``AA`` edge can
appear.  :func:`convert_plus_solution` implements the two relabeling
rules verbatim; :func:`verify_lemma9` runs the conversion on a supplied
solution and re-checks the result with the generic LCL verifier.
"""

from __future__ import annotations

from collections import Counter

from repro.problems.family import family_plus_problem, family_problem
from repro.sim.graph import Graph
from repro.sim.verifiers import VerificationResult, verify_lcl
from repro.robustness.errors import InvalidProblem

Labeling = dict[tuple[int, int], str]


def lemma9_target_a(a: int, x: int) -> int:
    """The ownership requirement after the conversion."""
    return (a - 2 * x - 1) // 2


def _check_lemma9_range(delta: int, a: int, x: int) -> None:
    if not 2 * x + 1 <= a <= delta:
        raise InvalidProblem(
            f"Lemma 9 needs 2x + 1 <= a <= delta, got delta={delta}, a={a}, x={x}"
        )


def convert_plus_solution(
    graph: Graph, labeling: Labeling, delta: int, a: int, x: int
) -> Labeling:
    """Apply the Lemma 9 conversion, node by node, with no communication.

    ``labeling`` must be a valid Pi+_Delta(a, x) half-edge labeling on a
    properly Delta-edge-colored graph (colors ``0 .. delta-1``; the
    paper's colors ``1 .. floor((a-1)/2)`` become ``0 .. threshold-1``
    here).  Each node reads only its own labels and incident edge
    colors — exactly the 0-round locality the lemma claims.
    """
    _check_lemma9_range(delta, a, x)
    if not graph.is_fully_colored():
        raise InvalidProblem("Lemma 9 needs the Delta-edge coloring input")
    new_a = lemma9_target_a(a, x)
    threshold = (a - 1) // 2  # low colors are 0 .. threshold-1
    converted: Labeling = dict(labeling)
    for node in range(graph.n):
        degree = graph.degree(node)
        labels = [labeling[(node, port)] for port in range(degree)]
        counts = Counter(labels)
        if counts.get("A"):
            _convert_a_node(graph, converted, node, degree, threshold, new_a)
        elif counts.get("C"):
            _convert_c_node(graph, converted, node, degree, threshold, new_a)
        # M-configuration and P-configuration nodes keep their labels.
    return converted


def _convert_a_node(
    graph: Graph,
    labeling: Labeling,
    node: int,
    degree: int,
    threshold: int,
    new_a: int,
) -> None:
    """First bullet of the proof: drop ownership on low colors, then trim.

    The node replaces ``A`` by ``X`` on every incident edge of color
    ``< threshold`` and afterwards keeps exactly ``new_a`` labels ``A``.
    """
    for port in range(degree):
        if labeling[(node, port)] == "A" and graph.color_at(node, port) < threshold:
            labeling[(node, port)] = "X"
    surviving = [
        port for port in range(degree) if labeling[(node, port)] == "A"
    ]
    if len(surviving) < new_a:
        raise InvalidProblem(
            f"node {node} retains {len(surviving)} owned edges < target {new_a}; "
            "the input labeling was not a valid Pi+ solution"
        )
    for port in surviving[new_a:]:
        labeling[(node, port)] = "X"


def _convert_c_node(
    graph: Graph,
    labeling: Labeling,
    node: int,
    degree: int,
    threshold: int,
    new_a: int,
) -> None:
    """Second bullet: claim ownership on low-color C edges, X elsewhere."""
    claimed = []
    for port in range(degree):
        if labeling[(node, port)] != "C":
            continue
        if graph.color_at(node, port) < threshold:
            claimed.append(port)
        labeling[(node, port)] = "X"
    if len(claimed) < new_a:
        raise InvalidProblem(
            f"node {node} can claim only {len(claimed)} low-color edges "
            f"< target {new_a}; the input labeling was not a valid Pi+ solution"
        )
    for port in claimed[:new_a]:
        labeling[(node, port)] = "A"


def verify_lemma9(
    graph: Graph, labeling: Labeling, delta: int, a: int, x: int
) -> VerificationResult:
    """Check the input against Pi+, convert, check against the target.

    Returns the verification result of the *converted* labeling against
    Pi_Delta(floor((a-2x-1)/2), x+1); raises if the input labeling was
    not a valid Pi+_Delta(a, x) solution in the first place (garbage in
    would make the experiment meaningless).
    """
    plus = family_plus_problem(delta, a, x)
    before = verify_lcl(graph, plus, labeling)
    if not before.ok:
        raise InvalidProblem(
            "input is not a valid Pi+ solution: " + "; ".join(before.violations)
        )
    converted = convert_plus_solution(graph, labeling, delta, a, x)
    target = family_problem(delta, lemma9_target_a(a, x), x + 1)
    return verify_lcl(graph, target, converted)
