"""Lemma 11: Pi_Delta(a, x) is solvable in 0 rounds given Pi_Delta(a', x')
for all ``a <= a'`` and ``x >= x'``.

Nodes relabel surplus ``M`` and ``A`` edges with ``X``; since ``X`` is
at least as strong as both with respect to the (shared) edge
constraint, no edge configuration can break.  The generic machinery is
:func:`repro.core.relaxation.find_upgrade_reduction`; this module
specializes it to the family and also applies a witness to concrete
half-edge labelings.
"""

from __future__ import annotations

from repro.core.configurations import Configuration
from repro.core.diagram import Diagram
from repro.core.relaxation import _match_assignment, find_upgrade_reduction
from repro.problems.family import family_problem
from repro.sim.graph import Graph
from repro.sim.verifiers import VerificationResult, verify_lcl
from repro.robustness.errors import InvalidProblem

Labeling = dict[tuple[int, int], str]


def verify_lemma11(
    delta: int, a: int, x: int, a_target: int, x_target: int
) -> dict[Configuration, Configuration]:
    """A per-configuration upgrade witness for Lemma 11's reduction.

    Requires ``a_target <= a`` and ``x_target >= x`` (the lemma's
    hypothesis); raises ``ValueError`` otherwise.  Returns the witness
    mapping (source configuration -> target configuration); raises
    ``AssertionError`` if — against the lemma — none exists.
    """
    if a_target > a or x_target < x:
        raise InvalidProblem(
            "Lemma 11 needs a_target <= a and x_target >= x, got "
            f"a={a}->{a_target}, x={x}->{x_target}"
        )
    source = family_problem(delta, a, x)
    target = family_problem(delta, a_target, x_target)
    witnesses = find_upgrade_reduction(source, target)
    if witnesses is None:
        raise AssertionError(
            f"no upgrade reduction from Pi({delta},{a},{x}) "
            f"to Pi({delta},{a_target},{x_target})"
        )
    return witnesses


def convert_labeling_lemma11(
    graph: Graph,
    labeling: Labeling,
    delta: int,
    a: int,
    x: int,
    a_target: int,
    x_target: int,
) -> Labeling:
    """Apply the Lemma 11 relabeling to a concrete solution.

    Every full-degree node matches its current configuration into the
    witness target under the "at least as strong" relation and adopts
    the matched labels; this is a 0-round, communication-free step.
    Labels at non-full-degree nodes are upgraded with the same rule
    applied to their truncated configurations (surplus M / A -> X).
    """
    source = family_problem(delta, a, x)
    target = family_problem(delta, a_target, x_target)
    witnesses = verify_lemma11(delta, a, x, a_target, x_target)
    diagram = Diagram(source.edge_constraint, source.alphabet)
    converted: Labeling = dict(labeling)
    for node in range(graph.n):
        degree = graph.degree(node)
        labels = [labeling[(node, port)] for port in range(degree)]
        configuration = Configuration(labels)
        if configuration in witnesses:
            chosen = witnesses[configuration]
        else:
            # Truncated (leaf) configuration: keep it, upgrading surplus
            # M / A to X so the counts match the target problem.
            chosen = _truncate_upgrade(labels, a_target, x_target)
        assignment = _match_assignment(
            labels,
            list(chosen.items),
            lambda weak, strong: diagram.at_least_as_strong(strong, weak),
        )
        if assignment is None:
            raise AssertionError(
                f"node {node}: cannot match {configuration.render()} "
                f"into {chosen.render()}"
            )
        target_items = list(chosen.items)
        for target_index, port in assignment.items():
            converted[(node, port)] = target_items[target_index]
    return converted


def _truncate_upgrade(labels: list[str], a_target: int, x_target: int) -> Configuration:
    """Degree-truncated analogue of the witness configurations."""
    new_labels = list(labels)
    m_keep = max(len(labels) - x_target, 0)
    if "M" in new_labels:
        kept = 0
        for index, label in enumerate(new_labels):
            if label == "M":
                kept += 1
                if kept > m_keep:
                    new_labels[index] = "X"
    if "A" in new_labels:
        kept = 0
        for index, label in enumerate(new_labels):
            if label == "A":
                kept += 1
                if kept > a_target:
                    new_labels[index] = "X"
    return Configuration(new_labels)


def verify_lemma11_on_labeling(
    graph: Graph,
    labeling: Labeling,
    delta: int,
    a: int,
    x: int,
    a_target: int,
    x_target: int,
) -> VerificationResult:
    """Convert a concrete solution and re-verify against the target."""
    source = family_problem(delta, a, x)
    before = verify_lcl(
        graph, source, labeling, skip_non_full_degree_nodes=not graph.is_regular()
    )
    if not before.ok:
        raise InvalidProblem(
            "input is not a valid source solution: " + "; ".join(before.violations)
        )
    converted = convert_labeling_lemma11(
        graph, labeling, delta, a, x, a_target, x_target
    )
    target = family_problem(delta, a_target, x_target)
    return verify_lcl(
        graph, target, converted, skip_non_full_degree_nodes=not graph.is_regular()
    )
