"""Lemma 5: a k-outdegree dominating set yields Pi_Delta(a, k) in 1 round.

Dominating-set nodes label their (at most k) outgoing induced edges
``X``, the rest ``M``, then upgrade arbitrary further ``M`` to ``X``
until exactly k edges carry ``X``.  Every other node spends the one
communication round learning which neighbors are in the set, points
``P`` at one of them and labels the rest ``O``.  The result satisfies
Pi_Delta(a, k) for every ``a`` — the ``A`` configuration is simply
never used.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.problems.family import family_problem
from repro.sim.graph import Graph
from repro.sim.verifiers import (
    VerificationResult,
    verify_k_outdegree_dominating_set,
    verify_lcl,
)
from repro.robustness.errors import InvalidProblem

Labeling = dict[tuple[int, int], str]


def labeling_from_kods(
    graph: Graph,
    selected: Iterable[int],
    orientation: Mapping[int, int],
    k: int,
) -> Labeling:
    """The 1-round conversion of Lemma 5.

    ``selected`` is the dominating set S, ``orientation`` maps each
    induced edge id of G[S] to its head.  Produces a half-edge labeling
    for Pi_Delta(a, k); at nodes of degree d < Delta (leaves of a
    truncated tree) the same rules produce the degree-d analogue of the
    configurations, with min(k, d) labels X.
    """
    chosen = set(selected)
    labeling: Labeling = {}
    for node in range(graph.n):
        degree = graph.degree(node)
        if node in chosen:
            labels = []
            for port in range(degree):
                half = graph.half_edges(node)[port]
                outgoing = (
                    half.neighbor in chosen
                    and orientation.get(half.edge_id) == half.neighbor
                )
                labels.append("X" if outgoing else "M")
            budget = min(k, degree)
            for port in range(degree):
                if labels.count("X") >= budget:
                    break
                if labels[port] == "M":
                    labels[port] = "X"
            for port, label in enumerate(labels):
                labeling[(node, port)] = label
        else:
            pointer = None
            for port in range(degree):
                if graph.neighbor(node, port) in chosen:
                    pointer = port
                    break
            if pointer is None:
                raise InvalidProblem(
                    f"node {node} is not dominated; the input is not a "
                    "dominating set"
                )
            for port in range(degree):
                labeling[(node, port)] = "P" if port == pointer else "O"
    return labeling


def verify_lemma5(
    graph: Graph,
    selected: Iterable[int],
    orientation: Mapping[int, int],
    k: int,
    a: int,
) -> VerificationResult:
    """Check the input k-ODS, convert, check against Pi_Delta(a, k).

    On non-regular graphs (truncated trees) the node constraint is only
    enforced at full-degree nodes, matching the infinite-tree reading.
    """
    kods = verify_k_outdegree_dominating_set(graph, selected, orientation, k)
    if not kods.ok:
        raise InvalidProblem(
            "input is not a valid k-outdegree dominating set: "
            + "; ".join(kods.violations)
        )
    labeling = labeling_from_kods(graph, selected, orientation, k)
    problem = family_problem(graph.max_degree(), a, k)
    return verify_lcl(
        graph,
        problem,
        labeling,
        skip_non_full_degree_nodes=not graph.is_regular(),
    )
