"""Lemmas 12 and 15, experimentally: 0-round algorithms on the
symmetric-port instances.

:mod:`repro.core.solvability` proves the combinatorial statements; this
module *runs* 0-round randomized algorithms on the actual instances
(the Cayley graph of (Z_2)^Delta, where port == color at both
endpoints) and measures their failure rate, to compare against the
analytic bound ``1/(|N| Delta)^2`` of Lemma 15.

A 0-round randomized algorithm in this setting is fully described by a
*strategy*: a distribution over port-labeled configurations.  All nodes
draw independently from the same strategy, because their 0-round views
are identical (proof of Lemma 15).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.problem import Problem
from repro.sim.generators import colored_port_cayley_graph
from repro.sim.verifiers import verify_lcl


class UniformStrategy:
    """Uniform over allowed node configurations and port assignments."""

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        self.configurations = sorted(
            problem.node_constraint.configurations, key=lambda c: c.render()
        )

    def sample(self, rng: random.Random) -> list:
        """A uniformly random port-labeled allowed configuration."""
        configuration = rng.choice(self.configurations)
        labels = list(configuration.items)
        rng.shuffle(labels)
        return labels


class GreedyStrategy:
    """Favor the configuration with the most self-compatible labels and
    pin its non-self-compatible labels to a fixed port.

    A natural attempt to beat the bound: concentrate the dangerous
    label on one port so failures correlate.  (It still fails with
    probability >= the Lemma 15 bound — both endpoints pick the same
    dangerous port with constant probability.)
    """

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        self_compatible = problem.self_compatible_labels()
        self.best = max(
            problem.node_constraint.configurations,
            key=lambda c: sum(1 for label in c if label in self_compatible),
        )
        self.safe = self_compatible

    def sample(self, rng: random.Random) -> list:
        labels = sorted(
            self.best.items, key=lambda label: (label in self.safe, str(label))
        )
        # Dangerous labels stay at the low ports; shuffle only the rest.
        dangerous = [label for label in labels if label not in self.safe]
        rest = [label for label in labels if label in self.safe]
        rng.shuffle(rest)
        return dangerous + rest


@dataclass
class ZeroRoundExperiment:
    """Result of a Monte-Carlo zero-round experiment."""

    trials: int
    failures: int
    delta: int

    @property
    def failure_rate(self) -> float:
        """Observed fraction of failed trials."""
        return self.failures / self.trials if self.trials else 0.0


def monte_carlo_zero_round_failure(
    problem: Problem,
    strategy: UniformStrategy | AdversarialStrategy | None = None,
    trials: int = 200,
    seed: int = 0,
) -> ZeroRoundExperiment:
    """Run a 0-round strategy on the Lemma 12/15 instance, many times.

    Every trial samples one output per node (independent randomness —
    the private random strings of the model), then checks the labeling
    with the LCL verifier; any violation is a failure.
    """
    delta = problem.delta
    graph = colored_port_cayley_graph(delta)
    if strategy is None:
        strategy = UniformStrategy(problem)
    rng = random.Random(seed)
    failures = 0
    for _ in range(trials):
        labeling = {}
        for node in range(graph.n):
            labels = strategy.sample(rng)
            for port, label in enumerate(labels):
                labeling[(node, port)] = label
        if not verify_lcl(graph, problem, labeling).ok:
            failures += 1
    return ZeroRoundExperiment(trials=trials, failures=failures, delta=delta)
