"""Theorem 14 premises and the lifted bounds (Theorem 1, Corollary 2).

Theorem 14 (after [4, 5, 15]) lifts a port-numbering lower-bound chain
to the LOCAL model: if the chain has length t, every problem uses
O(Delta^2) labels, and no chain member is 0-round solvable with failure
probability below 1/Delta^8 on the symmetric-port instances, then Pi_0
needs Omega(min{t, log_Delta n}) deterministic and
Omega(min{t, log_Delta log n}) randomized rounds.

With the constructive chain length t(Delta, k) from Lemma 13 this
yields *evaluable* versions of Theorem 1 and Corollary 2 — the numbers
the benchmark tables print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.core.solvability import lemma15_condition_holds
from repro.lowerbound.sequence import (
    ChainStep,
    lemma13_chain,
    sequence_length,
    step_zero_round_solvable,
)
from repro.problems.family import FAMILY_LABELS


@dataclass(frozen=True)
class Theorem14Premises:
    """Checked premises of the lifting theorem for one chain."""

    chain_length: int
    labels_bounded: bool
    failure_bounds_hold: bool

    @property
    def ok(self) -> bool:
        """Whether the lift applies."""
        return self.labels_bounded and self.failure_bounds_hold


def verify_theorem14_premises(chain: list[ChainStep]) -> Theorem14Premises:
    """Check the Theorem 14 premises for a Lemma 13 chain.

    Label count: every family problem uses 5 labels, well within
    O(Delta^2).  Failure bound: Lemma 15 must hold for every chain
    member except possibly the last (the theorem quantifies over
    ``t' < t``).
    """
    labels_bounded = all(
        len(FAMILY_LABELS) <= max(step.delta**2, 5) for step in chain
    )
    failure_bounds_hold = all(
        _lemma15_holds_for_step(step) for step in chain[:-1]
    )
    return Theorem14Premises(
        chain_length=max(len(chain) - 1, 0),
        labels_bounded=labels_bounded,
        failure_bounds_hold=failure_bounds_hold,
    )


def _lemma15_holds_for_step(step: ChainStep) -> bool:
    """Lemma 15's premise for one chain step, scalable to huge Delta.

    Small Delta runs the full engine test; large Delta uses the
    support-level solvability test plus the closed-form bound
    ``1/(3 Delta)^2 >= 1/Delta^8`` (three node configurations).
    """
    if step.delta <= 64:
        return lemma15_condition_holds(step.problem)
    if step_zero_round_solvable(step):
        return False
    configurations = 3
    bound = Fraction(1, (configurations * step.delta) ** 2)
    return bound >= Fraction(1, step.delta**8)


def _log2(value: float) -> float:
    return math.log2(value) if value > 1 else 0.0


def theorem1_deterministic_bound(n: float, delta: int, k: int = 0) -> float:
    """Theorem 1, deterministic: min{t(Delta, k), log_Delta n} rounds.

    Uses the *constructive* chain length for the log Delta branch, so
    the value is an actual certified round count, not an asymptotic
    shape.
    """
    t = sequence_length(delta, k)
    return min(t, _log2(n) / max(_log2(delta), 1.0))


def theorem1_randomized_bound(n: float, delta: int, k: int = 0) -> float:
    """Theorem 1, randomized: min{t(Delta, k), log_Delta log n} rounds."""
    t = sequence_length(delta, k)
    return min(t, _log2(_log2(n)) / max(_log2(delta), 1.0))


def corollary2_delta_choice(n: float, randomized: bool = False) -> int:
    """The Delta ~ 2^sqrt(log n) (or 2^sqrt(loglog n)) of Corollary 2."""
    inner = _log2(_log2(n)) if randomized else _log2(n)
    return max(int(round(2 ** math.sqrt(max(inner, 0.0)))), 2)


def corollary2_deterministic_bound(n: float, k: int = 0) -> float:
    """Corollary 2, deterministic: Omega(min{log Delta, sqrt(log n)})
    realized by the balancing choice of Delta."""
    delta = corollary2_delta_choice(n, randomized=False)
    return theorem1_deterministic_bound(n, delta, k)


def corollary2_randomized_bound(n: float, k: int = 0) -> float:
    """Corollary 2, randomized: Omega(min{log Delta, sqrt(loglog n)})."""
    delta = corollary2_delta_choice(n, randomized=True)
    return theorem1_randomized_bound(n, delta, k)


def lower_bound_summary(n: float, delta: int, k: int = 0) -> dict:
    """Everything Theorem 1 gives for one (n, Delta, k), with premises."""
    chain = lemma13_chain(delta, k)
    premises = verify_theorem14_premises(chain)
    return {
        "n": n,
        "delta": delta,
        "k": k,
        "chain_length": premises.chain_length,
        "premises_ok": premises.ok,
        "deterministic_rounds": theorem1_deterministic_bound(n, delta, k),
        "randomized_rounds": theorem1_randomized_bound(n, delta, k),
    }
