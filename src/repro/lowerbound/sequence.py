"""Lemma 13: the Omega(log Delta) lower-bound chain.

The chain is ``Pi_i = Pi_Delta(floor(Delta / 2^(3i)), x + i)``.  One
round-elimination step (Corollary 10 = Lemma 8 + Lemma 9) takes
Pi_Delta(a, x) to Pi_Delta(floor((a - 2x - 1)/2), x + 1), and Lemma 11
relaxes that to the next chain member whenever (following the proof)
``x_i < a_i / 8`` and ``a_i >= 4``.  The chain length is therefore a
*constructive* lower bound on the deterministic port-numbering
complexity of Pi_0 — and, through Lemma 5, of the k-outdegree
dominating set problem with k = x.

Every step of the chain carries its side-condition checks; the
benchmarks additionally re-verify sampled steps with the full engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import cache as _cache
from repro.core.problem import Problem
from repro.core.solvability import zero_round_solvable_symmetric
from repro.lowerbound.lemma9 import lemma9_target_a
from repro.observability import trace as _trace
from repro.observability.metrics import trace_summary_line
from repro.problems.family import family_problem
from repro.robustness import budget as _budget
from repro.robustness.budget import Budget, governed
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import InvalidProblem


@dataclass(frozen=True)
class ChainStep:
    """One problem of the Lemma 13 sequence."""

    index: int
    delta: int
    a: int
    x: int

    def to_dict(self) -> dict:
        """JSON-safe form for checkpoint files."""
        return {
            "index": self.index,
            "delta": self.delta,
            "a": self.a,
            "x": self.x,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChainStep":
        return cls(
            index=payload["index"],
            delta=payload["delta"],
            a=payload["a"],
            x=payload["x"],
        )

    @property
    def problem(self) -> Problem:
        """The problem Pi_Delta(a, x) of this step."""
        return family_problem(self.delta, self.a, self.x)

    def speedup_conditions_hold(self) -> bool:
        """The proof's conditions for taking one more step from here."""
        return self.a >= 4 and self.x < self.a / 8

    def corollary10_conditions_hold(self) -> bool:
        """Corollary 10's own hypotheses (implied by the above)."""
        return (
            2 * self.x + 1 <= self.a
            and self.x + 2 <= self.a <= self.delta
        )

    def render(self) -> str:
        """``Pi_3 = Pi(a=12, x=4)`` style."""
        return f"Pi_{self.index} = Pi(delta={self.delta}, a={self.a}, x={self.x})"


def lemma13_chain(delta: int, x: int = 0) -> list[ChainStep]:
    """The longest valid prefix of the Lemma 13 sequence.

    Starts from ``Pi_0 = Pi_Delta(Delta, x)`` and appends
    ``Pi_(i+1) = Pi_Delta(floor(Delta / 2^(3(i+1))), x + i + 1)`` while
    the proof's conditions (``a_i >= 4``, ``x_i < a_i / 8``) hold at
    the current step.  Every produced step is checked to be non-0-round
    solvable (Lemma 12), so the chain length equals the number of valid
    round-elimination steps.
    """
    if delta < 1:
        raise InvalidProblem("delta must be positive")
    if x < 0:
        raise InvalidProblem("x must be non-negative")
    chain: list[ChainStep] = []
    index = 0
    while True:
        a_i = delta // (2 ** (3 * index))
        x_i = x + index
        if a_i < 1 or x_i > delta - 1:
            break
        _budget.check_chain_step(index, phase="lemma13-chain", a=a_i, x=x_i)
        step = ChainStep(index=index, delta=delta, a=a_i, x=x_i)
        chain.append(step)
        if not step.speedup_conditions_hold():
            break
        index += 1
    return chain


@dataclass
class ChainRunResult:
    """Outcome of a (possibly resumed) governed chain construction."""

    chain: list[ChainStep]
    complete: bool
    resumed_from_step: int | None = None
    provenance: list[str] = field(default_factory=list)

    @property
    def certified_rounds(self) -> int:
        """The PN lower bound the (possibly partial) chain certifies."""
        return max(len(self.chain) - 1, 0)


def _chain_stage_name(delta: int, x: int) -> str:
    return f"chain-delta{delta}-x{x}"


def run_chain(
    delta: int,
    x: int = 0,
    *,
    store: CheckpointStore | None = None,
    budget: Budget | None = None,
    verify_steps: bool = False,
    use_kernel: bool = False,
) -> ChainRunResult:
    """Build the Lemma 13 chain restartably, under an optional budget.

    Produces exactly :func:`lemma13_chain`'s steps, but checkpoints the
    completed prefix to ``store`` after every step, so a run killed
    mid-chain (a budget trip, an injected fault, a real crash) resumes
    from the last completed step on the next call and yields a chain
    identical to an uninterrupted run.  A corrupt checkpoint file is
    detected by its integrity seal, discarded, and recorded in
    ``provenance`` — the run restarts from scratch rather than trusting
    damaged state.

    With ``verify_steps=True`` every appended step is additionally
    checked non-0-round-solvable (Lemma 12) before being persisted,
    and the engine used for the check is recorded in ``provenance``;
    ``use_kernel`` selects the bitmask fast path for those checks.

    Under an ambient :func:`repro.core.cache.caching` store the
    per-step Lemma 12 verdicts are served from the operator cache, and
    each step's ``cache: step N zero-round hit|miss`` outcome lands in
    ``provenance``.  Cache notes — like the trace summary — are
    appended only after the final checkpoint write, so warm and cold
    runs persist byte-identical state.
    """
    if delta < 1:
        raise InvalidProblem("delta must be positive")
    if x < 0:
        raise InvalidProblem("x must be non-negative")
    stage = _chain_stage_name(delta, x)
    chain: list[ChainStep] = []
    resumed_from: int | None = None
    provenance: list[str] = []
    cache = _cache.active_cache()
    cache_notes: list[str] = []
    with _trace.span(
        "chain.run", delta=delta, x=x,
        engine="kernel" if use_kernel else "reference",
    ) as chain_span:
        if store is not None:
            state, corruption = store.load_or_discard(stage)
            if corruption is not None:
                provenance.append(
                    f"discarded corrupt checkpoint {stage!r}: {corruption.message}"
                )
            if (
                state is not None
                and state.get("delta") == delta
                and state.get("x") == x
            ):
                chain = [ChainStep.from_dict(item) for item in state["steps"]]
                resumed_from = len(chain)
                chain_span.set_attr("resumed", True)
                chain_span.set_attr("resumed_from_step", resumed_from)
                if state.get("complete"):
                    chain_span.add("chain.steps", len(chain))
                    _append_cache_summary(provenance)
                    _append_trace_summary(provenance)
                    return ChainRunResult(
                        chain=chain,
                        complete=True,
                        resumed_from_step=resumed_from,
                        provenance=provenance,
                    )
                chain_span.add("chain.steps", len(chain))

        def persist(complete: bool) -> None:
            if store is not None:
                store.save(
                    stage,
                    {
                        "delta": delta,
                        "x": x,
                        "steps": [step.to_dict() for step in chain],
                        "complete": complete,
                    },
                )

        if verify_steps:
            provenance.append(
                "per-step Lemma 12 checks via "
                + ("kernel engine" if use_kernel else "reference engine")
            )
        with governed(budget):
            while True:
                if chain and not chain[-1].speedup_conditions_hold():
                    break
                index = len(chain)
                a_i = delta // (2 ** (3 * index))
                x_i = x + index
                if a_i < 1 or x_i > delta - 1:
                    break
                _budget.check_chain_step(
                    index, phase="chain-run", a=a_i, x=x_i
                )
                step = ChainStep(index=index, delta=delta, a=a_i, x=x_i)
                if verify_steps:
                    hits_before = cache.hits if cache is not None else 0
                    if step_zero_round_solvable(step, use_kernel=use_kernel):
                        raise AssertionError(
                            f"{step.render()} is 0-round solvable "
                            "(Lemma 12 fails)"
                        )
                    if cache is not None:
                        outcome = (
                            "hit" if cache.hits > hits_before else "miss"
                        )
                        cache_notes.append(
                            f"cache: step {index} zero-round {outcome}"
                        )
                chain.append(step)
                chain_span.add("chain.steps")
                _trace.event("chain.step", index=index, a=a_i, x=x_i)
                persist(complete=False)
        persist(complete=True)
    # Observational notes only after the final persist: cache outcomes,
    # like the trace summary, never land in checkpoint bytes.
    provenance.extend(cache_notes)
    _append_cache_summary(provenance)
    _append_trace_summary(provenance)
    return ChainRunResult(
        chain=chain,
        complete=True,
        resumed_from_step=resumed_from,
        provenance=provenance,
    )


def _append_cache_summary(provenance: list[str]) -> None:
    """Add the ambient cache's running totals to a provenance trail.

    Observational only (never persisted), mirroring the trace summary.
    """
    cache = _cache.active_cache()
    if cache is not None:
        provenance.append(cache.summary_line())


def _append_trace_summary(provenance: list[str]) -> None:
    """Add a one-line trace digest to a provenance trail.

    Called only after the final checkpoint write, so the (run-specific,
    resume-dependent) summary never lands in persisted state — resumed
    runs stay byte-identical to uninterrupted ones on disk.
    """
    tracer = _trace.active_tracer()
    if tracer is not None:
        provenance.append(trace_summary_line(tracer.records))


def verify_chain_arithmetic(
    chain: list[ChainStep], *, use_kernel: bool = False
) -> bool:
    """Check the numeric glue between consecutive chain steps.

    For each step: Corollary 10's hypotheses hold, the post-speedup
    ownership target ``floor((a_i - 2 x_i - 1)/2)`` is at least the
    next step's ``a_(i+1)`` (so Lemma 11 applies in the easy
    direction), the x parameter advances by exactly one, and every
    problem in the chain — including the last — fails the 0-round
    solvability test of Lemma 12.  Raises ``AssertionError`` with the
    offending step otherwise.
    """
    for current, following in zip(chain, chain[1:]):
        if not current.corollary10_conditions_hold():
            raise AssertionError(f"Corollary 10 hypotheses fail at {current.render()}")
        if not current.speedup_conditions_hold():
            raise AssertionError(f"speedup conditions fail at {current.render()}")
        target = lemma9_target_a(current.a, current.x)
        if following.a > target:
            raise AssertionError(
                f"{following.render()} is not reachable from {current.render()}: "
                f"a_target={target}"
            )
        if following.x != current.x + 1:
            raise AssertionError(f"x must advance by 1 into {following.render()}")
    for step in chain:
        if step_zero_round_solvable(step, use_kernel=use_kernel):
            raise AssertionError(f"{step.render()} is 0-round solvable")
    return True


def step_zero_round_solvable(step: ChainStep, *, use_kernel: bool = False) -> bool:
    """Lemma 12's test for one chain step, scalable to huge Delta.

    For small Delta the full engine test runs on the materialized
    problem.  For large Delta, materializing arity-Delta configurations
    is wasteful; instead the label *supports* of the three node
    configurations are computed symbolically and checked against the
    engine-computed self-compatible labels of the (Delta-independent)
    family edge constraint — the same test, without the blow-up.
    """
    if step.delta <= 64:
        return zero_round_solvable_symmetric(step.problem, use_kernel=use_kernel)
    delta, a, x = step.delta, step.a, step.x
    reference = family_problem(4, min(a, 4), min(x, 4))
    self_compatible = reference.self_compatible_labels()
    supports = [
        {label for label, count in (("M", delta - x), ("X", x)) if count > 0},
        {label for label, count in (("A", a), ("X", delta - a)) if count > 0},
        {label for label, count in (("P", 1), ("O", delta - 1)) if count > 0},
    ]
    return any(support <= self_compatible for support in supports)


def sequence_length(delta: int, k: int = 0) -> int:
    """The port-numbering lower bound from the chain: its step count.

    ``k`` plays the role of the starting ``x`` (Lemma 5 hands a
    k-outdegree dominating set to ``Pi_Delta(Delta, k)`` in one round).
    A chain of ``t + 1`` problems certifies ``t`` rounds.
    """
    return max(len(lemma13_chain(delta, k)) - 1, 0)


def max_k_for_logdelta_bound(delta: int, fraction: float = 0.5) -> int:
    """The largest k retaining at least ``fraction`` of the k=0 chain.

    A concrete stand-in for the paper's ``k <= Delta^epsilon``
    threshold: beyond this k the chain (and hence the Omega(log Delta)
    bound) collapses.
    """
    baseline = sequence_length(delta, 0)
    if baseline == 0:
        return 0
    k = 0
    while sequence_length(delta, k + 1) >= fraction * baseline:
        k += 1
        if k > delta:
            break
    return k
