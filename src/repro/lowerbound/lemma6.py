"""Lemma 6: the normal form of R(Pi_Delta(a, x)).

For ``x + 2 <= a <= Delta`` the lemma states that, after renaming,
R(Pi_Delta(a, x)) has node constraint

    [MUBQ]^(Delta-x)  [XMOUABPQ]^x
    [PQ]              [OUABPQ]^(Delta-1)
    [ABPQ]^a          [XMOUABPQ]^(Delta-a)

and edge constraint ``XQ, OB, AU, PM``, under the renaming

    {X} -> X, {M,X} -> M, {O,X} -> O, {M,O,X} -> U,
    {A,O,X} -> A, {M,A,O,X} -> B, {P,A,O,X} -> P, {M,P,A,O,X} -> Q.

:func:`verify_lemma6` recomputes R with the engine and compares, for
any concrete parameters.
"""

from __future__ import annotations

from repro.core.diagram import Diagram
from repro.core.problem import Problem
from repro.core.round_elimination import R, RenamedProblem, rename_to_strings
from repro.problems.family import family_problem
from repro.robustness.errors import InvalidProblem

#: The renaming table of Lemma 6 (right-closed sets of Fig. 4 -> letters).
LEMMA6_RENAMING = {
    frozenset("X"): "X",
    frozenset("MX"): "M",
    frozenset("OX"): "O",
    frozenset("MOX"): "U",
    frozenset("AOX"): "A",
    frozenset("MAOX"): "B",
    frozenset("PAOX"): "P",
    frozenset("MPAOX"): "Q",
}

#: The labels of R(Pi_Delta(a, x)) after renaming.
R_FAMILY_LABELS = tuple("XMOUABPQ")

#: The node diagram of R(Pi_Delta(a, x)) (Figure 5), as Hasse edges
#: drawn from weaker to stronger label, derived from the constraints of
#: Lemma 6 (valid in the lemma's parameter range with x >= 1 and
#: a <= Delta - 1; boundary parameters may merge relations).
FIGURE5_HASSE_EDGES = frozenset(
    [
        ("X", "M"),
        ("X", "O"),
        ("M", "U"),
        ("O", "U"),
        ("O", "A"),
        ("U", "B"),
        ("A", "B"),
        ("A", "P"),
        ("B", "Q"),
        ("P", "Q"),
    ]
)


def _check_lemma6_range(delta: int, a: int, x: int) -> None:
    if not x + 2 <= a <= delta:
        raise InvalidProblem(
            f"Lemma 6 needs x + 2 <= a <= delta, got delta={delta}, a={a}, x={x}"
        )


def expected_r_of_family(delta: int, a: int, x: int) -> Problem:
    """The problem Lemma 6 claims R(Pi_Delta(a, x)) to be (renamed)."""
    _check_lemma6_range(delta, a, x)
    node_lines = []
    node_lines.append(_powered("[MUBQ]", delta - x) + _powered("[XMOUABPQ]", x))
    node_lines.append(_powered("[PQ]", 1) + _powered("[OUABPQ]", delta - 1))
    node_lines.append(_powered("[ABPQ]", a) + _powered("[XMOUABPQ]", delta - a))
    return Problem.from_text(
        node_lines=[line for line in node_lines if line],
        edge_lines=["X Q", "O B", "A U", "P M"],
        name=f"Lemma6(delta={delta}, a={a}, x={x})",
    )


def compute_r_of_family(delta: int, a: int, x: int) -> RenamedProblem:
    """R(Pi_Delta(a, x)) computed by the engine, renamed per Lemma 6."""
    _check_lemma6_range(delta, a, x)
    intermediate = R(family_problem(delta, a, x))
    return rename_to_strings(
        intermediate,
        naming=LEMMA6_RENAMING,
        name=f"R(Pi(delta={delta}, a={a}, x={x}))",
    )


def verify_lemma6(delta: int, a: int, x: int) -> bool:
    """Mechanically check Lemma 6 for concrete parameters.

    Recomputes R(Pi_Delta(a, x)) with the round-elimination engine,
    applies the lemma's renaming, and compares node and edge
    constraints with the claimed normal form.  Returns True on an exact
    match and raises ``AssertionError`` (with the differing part) on a
    mismatch, so failures are diagnosable.
    """
    computed = compute_r_of_family(delta, a, x).problem
    expected = expected_r_of_family(delta, a, x)
    if computed.edge_constraint != expected.edge_constraint:
        raise AssertionError(
            "edge constraint mismatch:\ncomputed:\n"
            f"{computed.edge_constraint.render()}\nexpected:\n"
            f"{expected.edge_constraint.render()}"
        )
    if computed.node_constraint != expected.node_constraint:
        raise AssertionError(
            "node constraint mismatch:\ncomputed:\n"
            f"{computed.node_constraint.render()}\nexpected:\n"
            f"{expected.node_constraint.render()}"
        )
    return True


def figure5_diagram(delta: int, a: int, x: int) -> Diagram:
    """The node diagram of R(Pi_Delta(a, x)) (Figure 5), computed."""
    problem = expected_r_of_family(delta, a, x)
    return Diagram(problem.node_constraint, problem.alphabet)


def _powered(token: str, exponent: int) -> str:
    if exponent < 0:
        raise InvalidProblem(f"negative exponent {exponent}")
    if exponent == 0:
        return ""
    return f"{token}^{exponent} "
