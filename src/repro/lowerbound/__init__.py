"""The paper's proof pipeline, lemma by lemma, machine-checked.

Each module implements one ingredient of Section 3/4 and exposes a
``verify_*`` entry point that mechanically checks the lemma's claim —
by direct computation of the round-elimination operators where
feasible, and by executing the paper's own combinatorial argument as a
checker where the direct computation would be exponential in Delta.

* :mod:`repro.lowerbound.lemma5` — k-outdegree dominating set gives
  Pi_Delta(a, k) in one round.
* :mod:`repro.lowerbound.lemma6` — the normal form of
  R(Pi_Delta(a, x)) and its renaming.
* :mod:`repro.lowerbound.lemma8` — every node configuration of
  Rbar(R(Pi_Delta(a, x))) relaxes into Pi_rel; Pi+ is one round easier.
* :mod:`repro.lowerbound.lemma9` — the Delta-edge-coloring trick:
  a 0-round conversion of Pi+(a, x) solutions into
  Pi(floor((a-2x-1)/2), x+1) solutions.
* :mod:`repro.lowerbound.lemma11` — monotonicity in (a, x).
* :mod:`repro.lowerbound.zero_round` — Lemmas 12 and 15 plus
  Monte-Carlo experiments on the symmetric-port instances.
* :mod:`repro.lowerbound.sequence` — Lemma 13: the Omega(log Delta)
  lower-bound chain.
* :mod:`repro.lowerbound.lift` — Theorem 14 premises, Theorem 1 and
  Corollary 2 bound functions.
"""

from repro.lowerbound.lemma5 import labeling_from_kods, verify_lemma5
from repro.lowerbound.lemma6 import (
    LEMMA6_RENAMING,
    compute_r_of_family,
    expected_r_of_family,
    verify_lemma6,
)
from repro.lowerbound.lemma8 import (
    verify_lemma8_argument,
    verify_lemma8_direct,
)
from repro.lowerbound.lemma9 import convert_plus_solution, verify_lemma9
from repro.lowerbound.lemma11 import convert_labeling_lemma11, verify_lemma11
from repro.lowerbound.sequence import ChainStep, lemma13_chain, sequence_length
from repro.lowerbound.lift import (
    corollary2_deterministic_bound,
    corollary2_randomized_bound,
    theorem1_deterministic_bound,
    theorem1_randomized_bound,
    verify_theorem14_premises,
)
from repro.lowerbound.zero_round import (
    UniformStrategy,
    monte_carlo_zero_round_failure,
)
from repro.lowerbound.certificate import LowerBoundCertificate, build_certificate

__all__ = [
    "labeling_from_kods",
    "verify_lemma5",
    "LEMMA6_RENAMING",
    "compute_r_of_family",
    "expected_r_of_family",
    "verify_lemma6",
    "verify_lemma8_argument",
    "verify_lemma8_direct",
    "convert_plus_solution",
    "verify_lemma9",
    "convert_labeling_lemma11",
    "verify_lemma11",
    "ChainStep",
    "lemma13_chain",
    "sequence_length",
    "corollary2_deterministic_bound",
    "corollary2_randomized_bound",
    "theorem1_deterministic_bound",
    "theorem1_randomized_bound",
    "verify_theorem14_premises",
    "UniformStrategy",
    "monte_carlo_zero_round_failure",
    "LowerBoundCertificate",
    "build_certificate",
]
