"""The Section 2.4 roadmap as one machine-checked certificate.

:func:`build_certificate` executes, for concrete (Delta, k), every
step the paper chains together:

1. Lemma 5   — k-ODS solves Pi_Delta(Delta, k) in one round (witnessed
               on an actual instance).
2. Lemma 6   — the engine's R(Pi) equals the claimed normal form
               (verified directly for small Delta).
3. Lemma 8   — the paper's case analysis holds (all Delta), plus the
               direct Rbar computation when feasible.
4. Lemma 9   — the edge-coloring conversion succeeds on a concrete
               Pi+ solution.
5. Lemma 13  — the chain exists, its arithmetic audits, and the final
               problem fails the Lemma 12 test.
6. Theorem 14/1 — the premises hold and the lifted bounds are emitted.

The result is a :class:`LowerBoundCertificate` whose ``ok`` property
states that every executed check passed — the closest a program can
come to "running" the paper's proof for one parameter point.

The builder is *resource-governed*: pass a
:class:`~repro.robustness.budget.Budget` to bound it and a
:class:`~repro.robustness.checkpointing.CheckpointStore` to make it
restartable.  Each named stage is checkpointed as it completes, so a
run killed mid-certificate resumes from the last completed stage and
renders a certificate byte-identical to an uninterrupted run.  When a
tight alphabet budget trips inside the governed engine check, the
builder falls back to the paper's own medicine — simplification via
:mod:`repro.robustness.degradation` — and records every degradation
rung in the certificate's ``provenance``, so the result is auditably
weaker rather than silently wrong.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.algorithms.greedy import greedy_mis
from repro.core import cache as _cache
from repro.lowerbound.lemma5 import verify_lemma5
from repro.lowerbound.lemma6 import verify_lemma6
from repro.lowerbound.lemma8 import verify_lemma8_argument, verify_lemma8_direct
from repro.lowerbound.lemma9 import verify_lemma9
from repro.lowerbound.lift import (
    theorem1_deterministic_bound,
    theorem1_randomized_bound,
    verify_theorem14_premises,
)
from repro.lowerbound.sequence import lemma13_chain, verify_chain_arithmetic
from repro.observability import trace as _trace
from repro.observability.metrics import trace_summary_line
from repro.robustness.budget import Budget
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import SimplificationFailed
from repro.sim.generators import colored_port_cayley_graph, complete_bipartite_graph

#: Direct Rbar(R(.)) computation is exponential in Delta; cap it here.
DIRECT_VERIFICATION_LIMIT = 5
#: Lemma 8's case analysis expands condensed constraints; cap for speed.
ARGUMENT_VERIFICATION_LIMIT = 14
#: Witness instances grow as 2^Delta (Cayley); cap the instance checks.
INSTANCE_LIMIT = 8
#: The governed engine check runs on a family member clamped to this
#: Delta, keeping the degradation demonstration cheap at any scale.
GOVERNED_CHECK_DELTA = 4


@dataclass
class LowerBoundCertificate:
    """Everything :func:`build_certificate` established for (Delta, k)."""

    delta: int
    k: int
    n: float
    chain_length: int = 0
    deterministic_bound: float = 0.0
    randomized_bound: float = 0.0
    checks: dict = field(default_factory=dict)
    skipped: list = field(default_factory=list)
    provenance: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All executed checks passed."""
        return all(self.checks.values())

    @property
    def degraded(self) -> bool:
        """Whether any check ran in a budget-degraded form."""
        return any("degradation" in entry for entry in self.provenance)

    def render(self) -> str:
        """A human-readable audit trail."""
        lines = [
            f"lower-bound certificate for Delta={self.delta}, k={self.k}, "
            f"n={self.n:g}",
            f"  chain length (PN rounds): {self.chain_length}",
            f"  Theorem 1 deterministic: {self.deterministic_bound:g} rounds",
            f"  Theorem 1 randomized:    {self.randomized_bound:g} rounds",
        ]
        for name, passed in sorted(self.checks.items()):
            lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
        for name in self.skipped:
            lines.append(f"  [skipped] {name} (above the feasibility cap)")
        for entry in self.provenance:
            lines.append(f"  [provenance] {entry}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe form for checkpoint files."""
        return {
            "delta": self.delta,
            "k": self.k,
            "n": self.n,
            "chain_length": self.chain_length,
            "deterministic_bound": self.deterministic_bound,
            "randomized_bound": self.randomized_bound,
            "checks": dict(self.checks),
            "skipped": list(self.skipped),
            "provenance": list(self.provenance),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LowerBoundCertificate":
        fields_ = {
            "delta", "k", "n", "chain_length",
            "deterministic_bound", "randomized_bound",
            "checks", "skipped", "provenance",
        }
        return cls(**{key: payload[key] for key in fields_ if key in payload})


def _certificate_stage_name(delta: int, k: int) -> str:
    return f"certificate-delta{delta}-k{k}"


def build_certificate(
    delta: int,
    k: int = 0,
    n: float = 2**64,
    *,
    store: CheckpointStore | None = None,
    budget: Budget | None = None,
) -> LowerBoundCertificate:
    """Run the whole roadmap for one parameter point.

    All proof checks are raise-free: failures are recorded in
    ``checks`` so the certificate can report exactly which step broke.
    Resource failures are *not* swallowed — a tripped budget or an
    injected fault propagates as its typed exception, leaving the
    checkpoint (if a ``store`` was given) at the last completed stage;
    calling again with the same ``store`` resumes there and produces
    output identical to an uninterrupted run.
    """
    certificate = LowerBoundCertificate(delta=delta, k=k, n=n)
    checks = certificate.checks
    stage_name = _certificate_stage_name(delta, k)
    completed: set[str] = set()
    cache = _cache.active_cache()
    # Per-stage cache outcomes are buffered here and merged into
    # provenance only after the last checkpoint write — persisted
    # state must stay byte-identical between warm and cold runs.
    cache_notes: list[str] = []

    def _cache_marks() -> tuple[int, int]:
        return (cache.hits, cache.misses) if cache is not None else (0, 0)

    def _note_stage(stage: str, marks: tuple[int, int]) -> None:
        if cache is None:
            return
        hit_delta = cache.hits - marks[0]
        miss_delta = cache.misses - marks[1]
        if hit_delta or miss_delta:
            cache_notes.append(
                f"cache: {stage} hit={hit_delta} miss={miss_delta}"
            )

    with _trace.span("certificate.build", delta=delta, k=k) as build_span:
        if store is not None:
            state, corruption = store.load_or_discard(stage_name)
            if corruption is not None:
                state = None
            if (
                state is not None
                and state.get("delta") == delta
                and state.get("k") == k
                and state.get("n") == n
            ):
                completed = set(state.get("completed", ()))
                certificate.chain_length = state["chain_length"]
                certificate.deterministic_bound = state["deterministic_bound"]
                certificate.randomized_bound = state["randomized_bound"]
                certificate.checks.update(state.get("checks", {}))
                certificate.skipped.extend(state.get("skipped", ()))
                certificate.provenance.extend(state.get("provenance", ()))
                if completed:
                    build_span.set_attr("resumed", True)
                    build_span.set_attr(
                        "resumed_stages", sorted(completed)
                    )

        def persist(stage: str) -> None:
            completed.add(stage)
            if store is not None:
                payload = certificate.to_dict()
                payload["completed"] = sorted(completed)
                store.save(stage_name, payload)
            _trace.event("certificate.stage", stage=stage)

        chain = lemma13_chain(delta, k)
        if "chain" not in completed:
            if budget is not None:
                budget.checkpoint(stage="chain")
            marks = _cache_marks()
            certificate.chain_length = max(len(chain) - 1, 0)
            checks["lemma13 chain arithmetic"] = _safe(
                lambda: verify_chain_arithmetic(chain)
            )
            premises = verify_theorem14_premises(chain)
            checks["theorem14 premises"] = premises.ok
            certificate.deterministic_bound = theorem1_deterministic_bound(
                n, delta, k
            )
            certificate.randomized_bound = theorem1_randomized_bound(n, delta, k)
            _note_stage("chain", marks)
            persist("chain")

        # Lemma-level verification on a representative chain step.
        representative = next(
            (step for step in chain if step.x + 2 <= step.a <= step.delta), None
        )
        if representative is None:
            if "no-representative" not in completed:
                certificate.skipped.append(
                    "lemma 6/8/9 (no step in the valid range)"
                )
                persist("no-representative")
        else:
            a, x = representative.a, representative.x

            if "lemma6-8" not in completed:
                if budget is not None:
                    budget.checkpoint(stage="lemma6-8")
                marks = _cache_marks()
                if delta <= ARGUMENT_VERIFICATION_LIMIT:
                    checks["lemma6 normal form"] = _safe(
                        lambda: verify_lemma6(delta, a, x)
                    )
                    checks["lemma8 case analysis"] = _safe(
                        lambda: verify_lemma8_argument(delta, a, x).ok
                    )
                else:
                    certificate.skipped.append("lemma 6/8 expansion")
                _note_stage("lemma6-8", marks)
                persist("lemma6-8")

            if "lemma8-direct" not in completed:
                if budget is not None:
                    budget.checkpoint(stage="lemma8-direct")
                marks = _cache_marks()
                if delta <= DIRECT_VERIFICATION_LIMIT:
                    checks["lemma8 direct Rbar"] = _safe(
                        lambda: verify_lemma8_direct(delta, a, x)
                    )
                else:
                    certificate.skipped.append("lemma8 direct Rbar")
                _note_stage("lemma8-direct", marks)
                persist("lemma8-direct")

            if "governed-speedup" not in completed:
                marks = _cache_marks()
                if budget is not None and budget.max_alphabet is not None:
                    budget.checkpoint(stage="governed-speedup")
                    _governed_engine_check(certificate, budget, delta, a, x)
                _note_stage("governed-speedup", marks)
                persist("governed-speedup")

            if "lemma9" not in completed:
                if budget is not None:
                    budget.checkpoint(stage="lemma9")
                marks = _cache_marks()
                if (
                    delta <= ARGUMENT_VERIFICATION_LIMIT
                    and 2 * x + 1 <= a
                    and a >= x + 2
                ):
                    checks["lemma9 conversion"] = _safe(
                        lambda: _lemma9_witness(delta, a, x)
                    )
                else:
                    certificate.skipped.append("lemma9 witness")
                _note_stage("lemma9", marks)
                persist("lemma9")

            if "lemma5" not in completed:
                if budget is not None:
                    budget.checkpoint(stage="lemma5")
                marks = _cache_marks()
                if delta <= INSTANCE_LIMIT:
                    checks["lemma5 instance witness"] = _safe(
                        lambda: _lemma5_witness(delta, k)
                    )
                else:
                    certificate.skipped.append("lemma5 instance witness")
                _note_stage("lemma5", marks)
                persist("lemma5")
    # Merged strictly after the final persist, like the trace summary:
    # cache outcomes are observational and must never reach the store.
    certificate.provenance.extend(cache_notes)
    if cache is not None:
        certificate.provenance.append(cache.summary_line())
    _append_trace_summary(certificate)
    return certificate


def _append_trace_summary(certificate: LowerBoundCertificate) -> None:
    """Record a one-line trace digest in the certificate's provenance.

    Runs only after the final checkpoint write: the digest differs
    between resumed and uninterrupted runs (counters only cover the
    replayed work), so it must never be persisted, or resumed
    checkpoints would stop being byte-identical.
    """
    tracer = _trace.active_tracer()
    if tracer is not None:
        certificate.provenance.append(trace_summary_line(tracer.records))


def _governed_engine_check(
    certificate: LowerBoundCertificate,
    budget: Budget,
    delta: int,
    a: int,
    x: int,
) -> None:
    """One speedup step under the alphabet budget, degrading as needed.

    Runs on a family member clamped to :data:`GOVERNED_CHECK_DELTA` so
    the demonstration stays cheap at any Delta.  Degradation rungs land
    in ``provenance``; running out of medicine records a failed check
    instead of raising, keeping the certificate's raise-free contract
    for proof-level problems.
    """
    from repro.problems.family import family_problem
    from repro.robustness.degradation import governed_speedup

    clamped_delta = min(delta, GOVERNED_CHECK_DELTA)
    clamped_a = min(a, clamped_delta)
    clamped_x = min(x, max(clamped_a - 2, 0))
    problem = family_problem(clamped_delta, clamped_a, clamped_x)
    try:
        stepped = governed_speedup(problem, budget, degrade=True, step=0)
    except SimplificationFailed as failure:
        certificate.checks["governed speedup under budget"] = False
        certificate.provenance.append(
            f"degradation exhausted on {problem.name}: {failure.message}"
        )
        return
    certificate.checks["governed speedup under budget"] = True
    for event in stepped.events:
        certificate.provenance.append(event.provenance())


def _lemma9_witness(delta: int, a: int, x: int) -> bool:
    graph = complete_bipartite_graph(delta)
    labeling = {}
    for node in range(delta):
        for port in range(delta):
            labeling[(node, port)] = "C" if port >= x else "X"
    for node in range(delta, 2 * delta):
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a - x - 1 else "X"
    return verify_lemma9(graph, labeling, delta, a, x).ok


def _lemma5_witness(delta: int, k: int) -> bool:
    graph = colored_port_cayley_graph(delta)
    mis = greedy_mis(graph)
    # An MIS is a 0-outdegree (hence k-outdegree) dominating set.
    return verify_lemma5(graph, mis, {}, k=k, a=max(delta // 2, 1)).ok


def _safe(check: Callable[[], object]) -> bool:
    try:
        return bool(check())
    except (AssertionError, ValueError):
        return False
