"""The Section 2.4 roadmap as one machine-checked certificate.

:func:`build_certificate` executes, for concrete (Delta, k), every
step the paper chains together:

1. Lemma 5   — k-ODS solves Pi_Delta(Delta, k) in one round (witnessed
               on an actual instance).
2. Lemma 6   — the engine's R(Pi) equals the claimed normal form
               (verified directly for small Delta).
3. Lemma 8   — the paper's case analysis holds (all Delta), plus the
               direct Rbar computation when feasible.
4. Lemma 9   — the edge-coloring conversion succeeds on a concrete
               Pi+ solution.
5. Lemma 13  — the chain exists, its arithmetic audits, and the final
               problem fails the Lemma 12 test.
6. Theorem 14/1 — the premises hold and the lifted bounds are emitted.

The result is a :class:`LowerBoundCertificate` whose ``ok`` property
states that every executed check passed — the closest a program can
come to "running" the paper's proof for one parameter point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.greedy import greedy_mis
from repro.lowerbound.lemma5 import verify_lemma5
from repro.lowerbound.lemma6 import verify_lemma6
from repro.lowerbound.lemma8 import verify_lemma8_argument, verify_lemma8_direct
from repro.lowerbound.lemma9 import verify_lemma9
from repro.lowerbound.lift import (
    theorem1_deterministic_bound,
    theorem1_randomized_bound,
    verify_theorem14_premises,
)
from repro.lowerbound.sequence import lemma13_chain, verify_chain_arithmetic
from repro.sim.generators import colored_port_cayley_graph, complete_bipartite_graph

#: Direct Rbar(R(.)) computation is exponential in Delta; cap it here.
DIRECT_VERIFICATION_LIMIT = 5
#: Lemma 8's case analysis expands condensed constraints; cap for speed.
ARGUMENT_VERIFICATION_LIMIT = 14
#: Witness instances grow as 2^Delta (Cayley); cap the instance checks.
INSTANCE_LIMIT = 8


@dataclass
class LowerBoundCertificate:
    """Everything :func:`build_certificate` established for (Delta, k)."""

    delta: int
    k: int
    n: float
    chain_length: int = 0
    deterministic_bound: float = 0.0
    randomized_bound: float = 0.0
    checks: dict = field(default_factory=dict)
    skipped: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All executed checks passed."""
        return all(self.checks.values())

    def render(self) -> str:
        """A human-readable audit trail."""
        lines = [
            f"lower-bound certificate for Delta={self.delta}, k={self.k}, "
            f"n={self.n:g}",
            f"  chain length (PN rounds): {self.chain_length}",
            f"  Theorem 1 deterministic: {self.deterministic_bound:g} rounds",
            f"  Theorem 1 randomized:    {self.randomized_bound:g} rounds",
        ]
        for name, passed in sorted(self.checks.items()):
            lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
        for name in self.skipped:
            lines.append(f"  [skipped] {name} (above the feasibility cap)")
        return "\n".join(lines)


def build_certificate(delta: int, k: int = 0, n: float = 2**64) -> LowerBoundCertificate:
    """Run the whole roadmap for one parameter point.

    All checks raise-free: failures are recorded in ``checks`` so the
    certificate can report exactly which step broke.
    """
    certificate = LowerBoundCertificate(delta=delta, k=k, n=n)
    checks = certificate.checks

    chain = lemma13_chain(delta, k)
    certificate.chain_length = max(len(chain) - 1, 0)
    checks["lemma13 chain arithmetic"] = _safe(
        lambda: verify_chain_arithmetic(chain)
    )
    premises = verify_theorem14_premises(chain)
    checks["theorem14 premises"] = premises.ok
    certificate.deterministic_bound = theorem1_deterministic_bound(n, delta, k)
    certificate.randomized_bound = theorem1_randomized_bound(n, delta, k)

    # Lemma-level verification on a representative chain step.
    representative = next(
        (step for step in chain if step.x + 2 <= step.a <= step.delta), None
    )
    if representative is None:
        certificate.skipped.append("lemma 6/8/9 (no step in the valid range)")
        return certificate
    a, x = representative.a, representative.x

    if delta <= ARGUMENT_VERIFICATION_LIMIT:
        checks["lemma6 normal form"] = _safe(lambda: verify_lemma6(delta, a, x))
        checks["lemma8 case analysis"] = _safe(
            lambda: verify_lemma8_argument(delta, a, x).ok
        )
    else:
        certificate.skipped.append("lemma 6/8 expansion")
    if delta <= DIRECT_VERIFICATION_LIMIT:
        checks["lemma8 direct Rbar"] = _safe(
            lambda: verify_lemma8_direct(delta, a, x)
        )
    else:
        certificate.skipped.append("lemma8 direct Rbar")

    if delta <= ARGUMENT_VERIFICATION_LIMIT and 2 * x + 1 <= a and a >= x + 2:
        checks["lemma9 conversion"] = _safe(
            lambda: _lemma9_witness(delta, a, x)
        )
    else:
        certificate.skipped.append("lemma9 witness")

    if delta <= INSTANCE_LIMIT:
        checks["lemma5 instance witness"] = _safe(
            lambda: _lemma5_witness(delta, k)
        )
    else:
        certificate.skipped.append("lemma5 instance witness")
    return certificate


def _lemma9_witness(delta: int, a: int, x: int) -> bool:
    graph = complete_bipartite_graph(delta)
    labeling = {}
    for node in range(delta):
        for port in range(delta):
            labeling[(node, port)] = "C" if port >= x else "X"
    for node in range(delta, 2 * delta):
        for port in range(delta):
            labeling[(node, port)] = "A" if port < a - x - 1 else "X"
    return verify_lemma9(graph, labeling, delta, a, x).ok


def _lemma5_witness(delta: int, k: int) -> bool:
    graph = colored_port_cayley_graph(delta)
    mis = greedy_mis(graph)
    # An MIS is a 0-outdegree (hence k-outdegree) dominating set.
    return verify_lemma5(graph, mis, {}, k=k, a=max(delta // 2, 1)).ok


def _safe(check) -> bool:
    try:
        return bool(check())
    except (AssertionError, ValueError):
        return False
