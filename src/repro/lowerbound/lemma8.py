"""Lemma 8: Pi+_Delta(a, x) is exactly one round easier than Pi_Delta(a, x).

The proof has two computational faces, both implemented:

* :func:`verify_lemma8_direct` — for small Delta, compute the node
  constraint of Rbar(R(Pi_Delta(a, x))) in full with the engine and
  check that every node configuration relaxes (Definition 7) into a
  node configuration of Pi_rel, and that Pi_rel's edge constraint is
  exactly the replacement-method (existential) constraint over its six
  label sets.  Together with the renaming Pi_rel -> Pi+ (tested in the
  family tests) this is the lemma, verbatim.

* :func:`verify_lemma8_argument` — the paper's own case analysis,
  executed as a checker.  It never materializes Rbar, so it runs for
  any Delta: it checks the five right-closedness facts about the node
  diagram of R(Pi_Delta(a, x)) and the two "no such configuration in
  N_R" counting facts that the proof derives its contradiction from.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import Counter

from repro.core.configurations import CondensedConfiguration, parse_condensed
from repro.core.diagram import Diagram
from repro.core.relaxation import all_relax_into
from repro.core.round_elimination import (
    existential_constraint,
    maximize_node_constraint,
)
from repro.lowerbound.lemma6 import compute_r_of_family, expected_r_of_family
from repro.problems.family import pi_rel_problem


def verify_lemma8_direct(delta: int, a: int, x: int) -> bool:
    """Full engine check of Lemma 8 (exponential in Delta; use <= 5).

    Raises ``AssertionError`` with diagnostics on failure.
    """
    renamed_r = compute_r_of_family(delta, a, x)
    node_max = maximize_node_constraint(renamed_r.problem)
    rel = pi_rel_problem(delta, a, x)
    stray = [
        configuration
        for configuration in node_max.configurations
        if not all_relax_into([configuration], rel.node_constraint.configurations)
    ]
    if stray:
        rendered = "\n".join(configuration.render() for configuration in stray)
        raise AssertionError(
            f"configurations of Rbar(R(Pi)) not relaxable into Pi_rel:\n{rendered}"
        )
    # The edge constraint of Pi_rel must be the replacement-method
    # (existential) edge constraint over its six label sets.
    exist_edges = existential_constraint(
        renamed_r.problem.edge_constraint, set(rel.alphabet), 2
    )
    if exist_edges != rel.edge_constraint:
        raise AssertionError(
            "Pi_rel edge constraint mismatch:\ncomputed:\n"
            f"{exist_edges.render()}\nexpected:\n{rel.edge_constraint.render()}"
        )
    return True


@dataclass(frozen=True)
class Lemma8Report:
    """Which steps of the paper's Lemma 8 case analysis were verified."""

    no_p_implies_mubq: bool
    no_u_implies_abpq: bool
    no_m_implies_ouabpq: bool
    no_b_implies_pq: bool
    no_a_implies_ubpq: bool
    no_m_p_u_configuration: bool
    no_a_u_b_configuration: bool
    pi_rel_sets_right_closed: bool

    @property
    def ok(self) -> bool:
        """All facts hold."""
        return all(
            getattr(self, name) for name in self.__dataclass_fields__
        )


def verify_lemma8_argument(delta: int, a: int, x: int) -> Lemma8Report:
    """Execute the paper's Lemma 8 case analysis for these parameters.

    The proof argues: a node configuration Y_1 .. Y_Delta of
    Rbar(R(Pi)) that relaxes into *no* Pi_rel configuration must (by
    right-closedness and the four "otherwise it would relax" steps)
    admit a choice with either (>= 1 M, >= x+1 P, >= Delta-a U) or
    (x+1 A, Delta-a+1 U, rest B) — and no such configuration exists in
    the node constraint of R(Pi).  This function verifies each of those
    facts.  All facts are statements about the *verified* Lemma 6
    normal form, so the whole chain is machine-checked.
    """
    problem = expected_r_of_family(delta, a, x)
    diagram = Diagram(problem.node_constraint, problem.alphabet)
    right_closed = diagram.right_closed_sets()

    def closed_without(
        label: str, within: frozenset | None = None
    ) -> list[frozenset]:
        universe = within if within is not None else frozenset("XMOUABPQ")
        return [
            labels
            for labels in right_closed
            if label not in labels and labels <= universe
        ]

    ouabpq = frozenset("OUABPQ")
    report = Lemma8Report(
        no_p_implies_mubq=all(
            labels <= frozenset("MUBQ") for labels in closed_without("P")
        ),
        no_u_implies_abpq=all(
            labels <= frozenset("ABPQ") for labels in closed_without("U")
        ),
        no_m_implies_ouabpq=all(
            labels <= ouabpq for labels in closed_without("M")
        ),
        no_b_implies_pq=all(
            labels <= frozenset("PQ")
            for labels in closed_without("B", within=ouabpq)
        ),
        no_a_implies_ubpq=all(
            labels <= frozenset("UBPQ")
            for labels in closed_without("A", within=ouabpq)
        ),
        no_m_p_u_configuration=not _node_constraint_admits(
            delta, a, x, {"M": 1, "P": x + 1, "U": delta - a}
        ),
        no_a_u_b_configuration=not _node_constraint_admits(
            delta,
            a,
            x,
            {"A": x + 1, "U": delta - a + 1, "B": delta - (x + 1) - (delta - a + 1)},
        ),
        pi_rel_sets_right_closed=all(
            diagram.is_right_closed(labels)
            for labels in pi_rel_problem(delta, a, x).alphabet
        ),
    )
    return report


def lemma6_condensed_node_constraint(
    delta: int, a: int, x: int
) -> list[CondensedConfiguration]:
    """The three condensed node configurations of Lemma 6."""
    lines = [
        f"[MUBQ]^{delta - x} [XMOUABPQ]^{x}" if x else f"[MUBQ]^{delta}",
        f"[PQ] [OUABPQ]^{delta - 1}",
        f"[ABPQ]^{a} [XMOUABPQ]^{delta - a}" if a < delta else f"[ABPQ]^{delta}",
    ]
    return [parse_condensed(line) for line in lines]


def _node_constraint_admits(
    delta: int, a: int, x: int, minimum_counts: dict[str, int]
) -> bool:
    """Whether some configuration of N_{R(Pi)} meets the minimum counts.

    Works on the condensed normal form via transportation feasibility,
    so it runs for any Delta without expanding the constraint.
    """
    requirements = {
        label: count for label, count in minimum_counts.items() if count > 0
    }
    if sum(requirements.values()) > delta:
        return False
    return any(
        condensed_admits_counts(condensed, requirements)
        for condensed in lemma6_condensed_node_constraint(delta, a, x)
    )


def condensed_admits_counts(
    condensed: CondensedConfiguration, minimum_counts: dict[str, int]
) -> bool:
    """Whether the condensed configuration contains a configuration with
    at least ``minimum_counts[y]`` occurrences of each label ``y``.

    Transportation feasibility between required labels (supplies) and
    disjunction groups (capacities), solved by max flow; leftover slots
    can always be filled because every group is non-empty.
    """
    requirements = {
        label: count for label, count in minimum_counts.items() if count > 0
    }
    total_required = sum(requirements.values())
    if total_required > condensed.arity:
        return False
    if not requirements:
        return True
    groups = list(condensed.parts)
    source, sink = "source", "sink"
    capacity: dict[tuple, int] = {}
    for label, count in requirements.items():
        capacity[(source, ("label", label))] = count
    for index, (disjunction, exponent) in enumerate(groups):
        capacity[(("group", index), sink)] = exponent
        for label in requirements:
            if label in disjunction:
                capacity[(("label", label), ("group", index))] = total_required
    return _max_flow(capacity, source, sink) == total_required


def _max_flow(capacity: dict[tuple, int], source: tuple, sink: tuple) -> int:
    """Ford-Fulkerson with depth-first augmenting paths (tiny graphs)."""
    flow: dict[tuple, int] = {edge: 0 for edge in capacity}
    adjacency: dict = {}
    for (tail, head) in capacity:
        adjacency.setdefault(tail, set()).add(head)
        adjacency.setdefault(head, set()).add(tail)

    def residual(tail: tuple, head: tuple) -> int:
        forward = capacity.get((tail, head), 0) - flow.get((tail, head), 0)
        backward = flow.get((head, tail), 0)
        return forward + backward

    def push(tail: tuple, head: tuple, amount: int) -> None:
        backward = flow.get((head, tail), 0)
        cancel = min(backward, amount)
        if cancel:
            flow[(head, tail)] -= cancel
            amount -= cancel
        if amount:
            flow[(tail, head)] = flow.get((tail, head), 0) + amount

    def augment(node: tuple, pushed: int, visited: set) -> int:
        if node == sink:
            return pushed
        visited.add(node)
        for neighbor in adjacency.get(node, ()):
            slack = residual(node, neighbor)
            if neighbor in visited or slack <= 0:
                continue
            sent = augment(neighbor, min(pushed, slack), visited)
            if sent:
                push(node, neighbor, sent)
                return sent
        return 0

    total = 0
    while True:
        sent = augment(source, 10**9, set())
        if not sent:
            return total
        total += sent


def counting_facts_summary(delta: int, a: int, x: int) -> dict[str, Counter]:
    """Diagnostic helper: the forbidden count patterns of Lemma 8."""
    return {
        "M-P-U pattern": Counter({"M": 1, "P": x + 1, "U": delta - a}),
        "A-U-B pattern": Counter(
            {"A": x + 1, "U": delta - a + 1, "B": delta - (x + 1) - (delta - a + 1)}
        ),
    }
