"""Reproduction of Balliu, Brandt, Kuhn, Olivetti (PODC 2021):
"Improved Distributed Lower Bounds for MIS and Bounded (Out-)Degree
Dominating Sets in Trees".

Subpackages
-----------
``repro.core``
    The round-elimination engine: problems, diagrams, the R / Rbar
    operators, relaxations, zero-round solvability.
``repro.problems``
    Concrete problem encodings (MIS, the family Pi_Delta(a, x), ...).
``repro.lowerbound``
    The paper's proof pipeline, lemma by lemma, machine-checked.
``repro.sim``
    A LOCAL / port-numbering model simulator with graph generators,
    edge colorings, and output verifiers.
``repro.algorithms``
    Upper-bound distributed algorithms (Luby, color reduction, sweeps).
``repro.analysis``
    Numeric bound formulas and the table builders behind EXPERIMENTS.md.
``repro.robustness``
    Resource governance: budgets with cooperative checkpoints, typed
    failures, checkpoint/resume stores, and graceful degradation via
    simplification.
"""

__version__ = "1.0.0"
