"""The CLI face of the tracing layer: ``--trace`` / ``--metrics``.

Every example script accepts ``--trace out.jsonl`` (write the run's
trace as JSON lines) and ``--metrics`` (print the per-phase table after
the run).  Both are implemented here so the scripts share one behavior:
:func:`cli_tracing` installs an ambient tracer only when either flag is
given — otherwise the run is completely untraced and pays nothing —
and exports the trace even when the command fails partway, so a failed
run still leaves its evidence behind.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from contextlib import contextmanager

from repro.observability.metrics import render_phase_table
from repro.observability.trace import Tracer, tracing


@contextmanager
def cli_tracing(
    trace_path: str | None = None, metrics: bool = False
) -> Iterator[Tracer | None]:
    """Trace the enclosed block per the CLI flags.

    With neither flag set this is a no-op (no tracer installed).
    Otherwise the block runs under a fresh ambient :class:`Tracer`;
    on exit — including an exit by exception — the trace is written to
    ``trace_path`` (if given) and the per-phase table printed to stdout
    (if ``metrics``).
    """
    if trace_path is None and not metrics:
        yield None
        return
    tracer = Tracer()
    try:
        with tracing(tracer):
            yield tracer
    finally:
        if trace_path is not None:
            tracer.write(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)  # reprolint: disable=RL007 -- shared --trace/--metrics front-end for the example CLIs
        if metrics:
            print(render_phase_table(tracer.finish()))  # reprolint: disable=RL007 -- shared --trace/--metrics front-end for the example CLIs


__all__ = ["cli_tracing"]
