"""Hot-spot profiling: ambient per-op wall-time and allocation sampling.

The kernel's hot path is instrumented with named *ops* — coarse,
non-overlapping sections that tile the bodies of the kernel operators
(lattice build, right-closed enumeration, DFS, prune, pairing, intern,
transport).  With no ambient :class:`Profiler` installed each probe is
a single context-variable read returning a shared no-op section, so
the instrumentation rides inside the documented <3% overhead budget.

Install one with :func:`profiling` (the same ambient ContextVar shape
as ``governed()`` / ``tracing()`` / ``caching()``)::

    profiler = Profiler()
    with tracing(tracer), profiling(profiler):
        run_chain(...)

On exit, the accumulated samples are emitted into the ambient tracer
as one ``prof.op`` span per op, carrying the schema-declared timing
counters ``prof.calls`` (sample count), ``prof.wall_ns`` (summed wall
time in nanoseconds), and ``prof.alloc_blocks`` (net allocated-block
delta, clamped at zero — frees can outnumber allocations inside a
section).  ``tools/trace_report.py hotspots`` then aggregates the
``prof.op`` spans of a finished trace into the hot-spot table and
checks that they account for the traced kernel wall time.

The engine never reads the clock itself — RL002 bans ``time.*`` under
``core/`` — so all timing lives here: engine code wraps its sections
in ``with _profiling.section("op.name"):`` and this module decides
whether that means two clock reads or nothing at all.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.observability import trace as _trace

#: Per-op accumulator triple indices (a list is mutated in place).
_CALLS, _WALL_NS, _ALLOC_BLOCKS = 0, 1, 2


class Profiler:
    """Accumulates per-op call counts, wall time, and allocation deltas.

    Ops are identified by dotted names; samples for the same op are
    summed.  The profiler itself is clock-free state — the
    :class:`_Section` probes read ``time.perf_counter_ns`` and
    ``sys.getallocatedblocks`` around the instrumented region.
    """

    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops: dict[str, list[int]] = {}

    def record(self, op: str, wall_ns: int, alloc_blocks: int) -> None:
        """Fold one sample into the accumulator for ``op``."""
        entry = self._ops.get(op)
        if entry is None:
            entry = [0, 0, 0]
            self._ops[op] = entry
        entry[_CALLS] += 1
        entry[_WALL_NS] += wall_ns
        entry[_ALLOC_BLOCKS] += alloc_blocks

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Per-op totals: ``{op: {calls, wall_ns, alloc_blocks}}``.

        ``alloc_blocks`` is clamped at zero — a section that frees more
        blocks than it allocates reports 0 (counters are non-negative).
        """
        return {
            op: {
                "calls": entry[_CALLS],
                "wall_ns": entry[_WALL_NS],
                "alloc_blocks": max(0, entry[_ALLOC_BLOCKS]),
            }
            for op, entry in sorted(self._ops.items())
        }

    def emit(self) -> None:
        """Write the samples into the ambient tracer, one span per op."""
        for op, totals in self.snapshot().items():
            with _trace.span("prof.op", op=op) as span:
                span.add("prof.calls", totals["calls"])
                span.add("prof.wall_ns", totals["wall_ns"])
                span.add("prof.alloc_blocks", totals["alloc_blocks"])


class _Section:
    """One live probe: two clock reads bracketing the ``with`` body."""

    __slots__ = ("_profiler", "_op", "_start_ns", "_start_blocks")

    def __init__(self, profiler: Profiler, op: str) -> None:
        self._profiler = profiler
        self._op = op

    def __enter__(self) -> "_Section":
        self._start_blocks = sys.getallocatedblocks()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        wall_ns = time.perf_counter_ns() - self._start_ns
        alloc_blocks = sys.getallocatedblocks() - self._start_blocks
        self._profiler.record(self._op, wall_ns, alloc_blocks)
        return False


class _NullSection:
    """The shared no-op section returned when no profiler is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SECTION = _NullSection()

_ACTIVE: ContextVar[Profiler | None] = ContextVar(
    "repro_active_profiler", default=None
)


def active_profiler() -> Profiler | None:
    """The ambient profiler, or ``None``."""
    return _ACTIVE.get()


def profiling_enabled() -> bool:
    """Whether a profiler is installed (one ContextVar read)."""
    return _ACTIVE.get() is not None


def section(op: str) -> "_Section | _NullSection":
    """A context manager timing the ``with`` body as op ``op``.

    With no ambient profiler this returns a shared no-op object — the
    disabled cost of an instrumented section is one ContextVar read.
    """
    profiler = _ACTIVE.get()
    if profiler is None:
        return _NULL_SECTION
    return _Section(profiler, op)


@contextmanager
def profiling(profiler: Profiler | None = None):
    """Install ``profiler`` (a fresh one if ``None``) as the ambient
    profiler for the ``with`` body; on exit, emit its samples into the
    ambient tracer as ``prof.op`` spans and restore the previous state.

    Yields the installed profiler so callers can also read
    :meth:`Profiler.snapshot` directly after the block.
    """
    if profiler is None:
        profiler = Profiler()
    token = _ACTIVE.set(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.reset(token)
        profiler.emit()


__all__ = [
    "Profiler",
    "profiling",
    "active_profiler",
    "profiling_enabled",
    "section",
]
