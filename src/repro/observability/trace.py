"""Structured tracing: span trees with an ambient context.

The tracer mirrors the design of :mod:`repro.robustness.budget`: a
:class:`Tracer` is installed as the *ambient* tracer by the
:func:`tracing` context manager, and instrumentation sites call the
module-level helpers (:func:`span`, :func:`add`, :func:`event`,
:func:`set_attr`), which are no-ops costing one context-variable read
when no tracer is installed — tracing is off by default and the hot
paths pay essentially nothing for the hooks.

A trace is a flat list of JSON-safe records (schema in
:mod:`repro.observability.schema`): one ``meta`` record, one ``span``
record per closed span (with parent id, wall-clock interval, attributes
and counters), and ``event`` records attached to the span that was open
when they fired.  Counters are *monotone within a span*: they can only
be incremented by non-negative amounts, so a counter value in a span
record is the total the span accumulated, and per-phase aggregation is
a plain sum.

Multiprocessing composes by grafting: a worker process records into its
own local tracer and ships the finished records back; the parent calls
:meth:`Tracer.graft` to re-identify them and hang the shipped subtree
under its currently open span (see :mod:`repro.core.kernel.parallel`).
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from repro.observability.schema import SCHEMA_VERSION
from repro.robustness.errors import EngineMisuse


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add(self, counter: str, amount: int = 1) -> None:
        pass

    def set_attr(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanHandle:
    """One open span of an active tracer (a context manager)."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "counters",
        "started_at",
    )

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None,
                 name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, int] = {}
        self.started_at = time.perf_counter()

    def add(self, counter: str, amount: int = 1) -> None:
        """Increment a counter; amounts must be non-negative (monotone)."""
        if amount < 0:
            raise EngineMisuse(
                f"counter {counter!r} increment must be non-negative, "
                f"got {amount}"
            )
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set_attr(self, key: str, value: object) -> None:
        """Set (or overwrite) one attribute of the open span."""
        self.attrs[key] = value

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_value: BaseException | None,
        traceback: object,
    ) -> bool:
        self.tracer._close_span(
            self, "error" if exc_type is not None else "ok",
            error=None if exc_value is None else str(exc_value),
        )
        return False


class Tracer:
    """Collects one trace: a tree of spans with counters and events.

    The tracer opens an implicit root span named ``"trace"`` so that
    counters incremented outside any explicit span still land
    somewhere.  Call :meth:`finish` (or use :func:`tracing`, which
    does) to close the root and append the ``meta`` record; after that
    :attr:`records` is the complete trace, :meth:`to_jsonl` renders it,
    and :meth:`write` saves it.
    """

    def __init__(self, *, trace_checkpoints: bool = False) -> None:
        #: Emit one event per cooperative budget checkpoint.  Default
        #: off: checkpoints fire per DFS node and would dominate the
        #: trace; the aggregate lands in the ``budget.checkpoints``
        #: counter either way.
        self.trace_checkpoints = trace_checkpoints
        self.records: list[dict] = []
        self._next_id = 0
        self._stack: list[SpanHandle] = []
        self._origin = time.perf_counter()
        self._finished = False
        self._root = self._open_span("trace", {})

    # -- span lifecycle --------------------------------------------------

    def _open_span(self, name: str, attrs: dict) -> SpanHandle:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        handle = SpanHandle(self, span_id, parent_id, name, attrs)
        self._stack.append(handle)
        return handle

    def _close_span(
        self, handle: SpanHandle, status: str, error: str | None = None
    ) -> None:
        # Close any children left open (an exception unwound past them).
        while self._stack and self._stack[-1] is not handle:
            inner = self._stack.pop()
            self.records.append(self._span_record(inner, "error", None))
        if self._stack and self._stack[-1] is handle:
            self._stack.pop()
        self.records.append(self._span_record(handle, status, error))

    def _span_record(
        self, handle: SpanHandle, status: str, error: str | None
    ) -> dict:
        ended = time.perf_counter()
        record = {
            "type": "span",
            "id": handle.span_id,
            "parent": handle.parent_id,
            "name": handle.name,
            "start_s": round(handle.started_at - self._origin, 6),
            "duration_s": round(ended - handle.started_at, 6),
            "status": status,
            "attrs": handle.attrs,
            "counters": handle.counters,
        }
        if error is not None:
            record["error"] = error
        return record

    def span(self, name: str, **attrs: object) -> SpanHandle:
        """Open a child of the currently innermost span."""
        return self._open_span(name, attrs)

    def current_span(self) -> SpanHandle:
        """The innermost open span (the root when none is)."""
        return self._stack[-1] if self._stack else self._root

    # -- counters and events ---------------------------------------------

    def add(self, counter: str, amount: int = 1) -> None:
        self.current_span().add(counter, amount)

    def event(self, name: str, **attrs: object) -> None:
        self.records.append({
            "type": "event",
            "span": self.current_span().span_id,
            "name": name,
            "at_s": round(time.perf_counter() - self._origin, 6),
            "attrs": attrs,
        })

    # -- multiprocessing grafting ----------------------------------------

    def graft(self, records: list[dict]) -> None:
        """Adopt a finished child trace under the current span.

        Span/event ids of ``records`` are remapped past this tracer's
        id counter, the child's root spans are reparented onto the
        currently open span, and timestamps are kept as the child
        measured them (they share no clock origin with the parent, so
        only durations are meaningful — the report tool sums durations,
        never subtracts timestamps across processes).
        """
        if not records:
            return
        offset = self._next_id
        parent_id = self.current_span().span_id
        max_child_id = -1
        for record in records:
            if record["type"] == "meta":
                continue  # the parent emits the single meta record
            adopted = dict(record)
            if adopted["type"] == "span":
                max_child_id = max(max_child_id, adopted["id"])
                adopted["id"] += offset
                adopted["parent"] = (
                    parent_id if adopted["parent"] is None
                    else adopted["parent"] + offset
                )
            elif adopted["type"] == "event":
                adopted["span"] += offset
            self.records.append(adopted)
        self._next_id += max_child_id + 1

    # -- finishing and export --------------------------------------------

    def finish(self) -> list[dict]:
        """Close the root span, append the ``meta`` record, and return
        the complete record list.  Idempotent."""
        if self._finished:
            return self.records
        while self._stack:
            handle = self._stack.pop()
            self.records.append(self._span_record(handle, "ok", None))
        self.records.append({
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "spans": sum(1 for r in self.records if r["type"] == "span"),
            "events": sum(1 for r in self.records if r["type"] == "event"),
            "wall_clock_s": round(time.perf_counter() - self._origin, 6),
            "peak_rss_kb": peak_rss_kb(),
        })
        self._finished = True
        return self.records

    def to_jsonl(self) -> str:
        """The trace as JSON lines (one record per line)."""
        return "\n".join(
            json.dumps(record, sort_keys=True, default=str)
            for record in self.finish()
        ) + "\n"

    def write(self, path: str | os.PathLike) -> None:
        """Save the finished trace to ``path`` as JSON lines."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


def peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB, if measurable."""
    try:
        import resource
    except ImportError:  # non-Unix platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(usage)


# ---------------------------------------------------------------------------
# The ambient tracer
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[Tracer | None] = ContextVar(
    "repro_active_tracer", default=None
)


def active_tracer() -> Tracer | None:
    """The ambient tracer installed by :func:`tracing`, if any."""
    return _ACTIVE.get()


def tracing_enabled() -> bool:
    """Whether an ambient tracer is installed (the guard hot paths use)."""
    return _ACTIVE.get() is not None


@contextmanager
def tracing(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    ``tracing(None)`` is a no-op so optional tracers pass straight
    through.  On exit the tracer is finished (root span closed, meta
    record appended) and the previous ambient tracer restored.
    """
    if tracer is None:
        yield None
        return
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
        tracer.finish()


# ---------------------------------------------------------------------------
# Guarded instrumentation helpers (no-ops when tracing is disabled)
# ---------------------------------------------------------------------------

def span(name: str, **attrs: object) -> SpanHandle | _NullSpan:
    """Open a span on the ambient tracer — or the shared null span.

    Usage: ``with _trace.span("op.R", engine="kernel") as sp: ...``.
    When tracing is disabled this returns a singleton null object, so
    the call costs one context-variable read and one (empty) kwargs
    dict — keep expensive attribute computation out of the call site.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def add(counter: str, amount: int = 1) -> None:
    """Increment a counter on the current span (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.add(counter, amount)


def event(name: str, **attrs: object) -> None:
    """Record an event on the current span (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.event(name, **attrs)


def set_attr(key: str, value: object) -> None:
    """Set an attribute on the current span (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.current_span().set_attr(key, value)


__all__ = [
    "Tracer",
    "SpanHandle",
    "tracing",
    "active_tracer",
    "tracing_enabled",
    "span",
    "add",
    "event",
    "set_attr",
    "peak_rss_kb",
]
