"""Zero-dependency observability: tracing, metrics, profiling hooks.

The third leg of the engine's operational story, after resource
governance (:mod:`repro.robustness`) and the kernel fast path
(:mod:`repro.core.kernel`): a structured view *inside* a run.

* :mod:`repro.observability.trace` — span trees with an ambient
  context (install with :func:`tracing`, instrument with the guarded
  module-level helpers), monotone per-span counters, wall-clock and
  peak-RSS capture, JSON-lines export.
* :mod:`repro.observability.schema` — the stable trace record schema,
  its validator, and the semantic-vs-timing counter split the
  differential tests rely on.
* :mod:`repro.observability.metrics` — aggregation of finished traces:
  per-phase tables, counter totals, semantic profiles and their diffs.
* :mod:`repro.observability.profiling` — ambient hot-spot sampling
  (install with :func:`profiling`): per-op wall time and allocation
  counts, emitted as ``prof.op`` spans for the hotspots report.

Tracing is off by default; with no ambient tracer every hook is a
single context-variable read, so instrumented hot paths stay within the
documented <3% overhead budget (see DESIGN.md, "Observability").
"""

from repro.observability.metrics import (
    diff_semantic_profiles,
    semantic_profile,
    summarize_phases,
    total_counters,
    trace_summary_line,
)
from repro.observability.profiling import (
    Profiler,
    active_profiler,
    profiling,
    profiling_enabled,
)
from repro.observability.schema import (
    SCHEMA_VERSION,
    SEMANTIC_COUNTERS,
    load_trace,
    validate_trace,
)
from repro.observability.trace import (
    Tracer,
    active_tracer,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Tracer",
    "tracing",
    "active_tracer",
    "tracing_enabled",
    "Profiler",
    "profiling",
    "active_profiler",
    "profiling_enabled",
    "SCHEMA_VERSION",
    "SEMANTIC_COUNTERS",
    "validate_trace",
    "load_trace",
    "summarize_phases",
    "total_counters",
    "semantic_profile",
    "diff_semantic_profiles",
    "trace_summary_line",
]
