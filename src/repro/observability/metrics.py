"""Aggregation over finished traces: per-phase tables and diffs.

A finished trace (list of schema records) is summarized two ways:

* :func:`summarize_phases` — group spans by name: how many ran, total
  wall-clock inside them, and the sum of every counter.  This is the
  table ``tools/trace_report.py report`` prints.
* :func:`semantic_profile` — the engine-independent view used for
  differential comparison: per span name (with the ``engine`` attribute
  stripped out of the identity), the summed
  :data:`~repro.observability.schema.SEMANTIC_COUNTERS` only.  Two runs
  of the same workload on different engines must produce equal
  profiles; :func:`diff_semantic_profiles` reports any drift.
"""

from __future__ import annotations

from repro.observability.schema import SEMANTIC_COUNTERS


def spans_of(records: list[dict]) -> list[dict]:
    """The span records of a trace, in emission (closing) order."""
    return [record for record in records if record.get("type") == "span"]


def summarize_phases(records: list[dict]) -> dict[str, dict]:
    """Per span-name aggregate: count, total seconds, summed counters.

    Returns ``{name: {"count": int, "seconds": float,
    "counters": {counter: total}}}``, sorted by first appearance.
    """
    phases: dict[str, dict] = {}
    for record in spans_of(records):
        phase = phases.setdefault(
            record["name"], {"count": 0, "seconds": 0.0, "counters": {}}
        )
        phase["count"] += 1
        phase["seconds"] += record["duration_s"]
        for counter, value in record["counters"].items():
            phase["counters"][counter] = phase["counters"].get(counter, 0) + value
    for phase in phases.values():
        phase["seconds"] = round(phase["seconds"], 6)
    return phases


def total_counters(records: list[dict]) -> dict[str, int]:
    """Every counter summed across all spans of the trace."""
    totals: dict[str, int] = {}
    for record in spans_of(records):
        for counter, value in record["counters"].items():
            totals[counter] = totals.get(counter, 0) + value
    return dict(sorted(totals.items()))


def semantic_profile(records: list[dict]) -> dict[str, dict[str, int]]:
    """Per span-name totals of the semantic counters only.

    The ``engine`` attribute is deliberately *not* part of the span
    identity, so a reference trace and a kernel trace of the same
    workload map onto the same keys and can be diffed directly.  Spans
    with no semantic counters are omitted.
    """
    profile: dict[str, dict[str, int]] = {}
    for record in spans_of(records):
        semantic = {
            counter: value
            for counter, value in record["counters"].items()
            if counter in SEMANTIC_COUNTERS
        }
        if not semantic:
            continue
        bucket = profile.setdefault(record["name"], {})
        for counter, value in semantic.items():
            bucket[counter] = bucket.get(counter, 0) + value
    return profile


def diff_semantic_profiles(
    first: dict[str, dict[str, int]], second: dict[str, dict[str, int]]
) -> list[str]:
    """Human-readable drift lines between two semantic profiles.

    Empty list means zero semantic drift.  Each line names the span,
    the counter, and both values (``<absent>`` for a missing side).
    """
    drift: list[str] = []
    for name in sorted(set(first) | set(second)):
        left = first.get(name, {})
        right = second.get(name, {})
        for counter in sorted(set(left) | set(right)):
            a = left.get(counter, "<absent>")
            b = right.get(counter, "<absent>")
            if a != b:
                drift.append(f"{name} / {counter}: {a} != {b}")
    return drift


def render_phase_table(records: list[dict]) -> str:
    """The per-phase aggregate as an aligned text table.

    One row per span name: occurrence count, total seconds, and the
    summed counters.  Used by ``tools/trace_report.py report`` and the
    CLIs' ``--metrics`` flag.
    """
    phases = summarize_phases(records)
    header = ("phase", "count", "seconds", "counters")
    rows = [header]
    for name, phase in phases.items():
        counters = " ".join(
            f"{counter}={value}"
            for counter, value in sorted(phase["counters"].items())
        )
        rows.append(
            (name, str(phase["count"]), f"{phase['seconds']:.6f}", counters)
        )
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header) - 1)
    ]
    lines = []
    for row in rows:
        cells = [row[column].ljust(widths[column]) for column in range(len(widths))]
        lines.append(("  ".join(cells) + "  " + row[-1]).rstrip())
    return "\n".join(lines)


def trace_summary_line(records: list[dict]) -> str:
    """A one-line digest for provenance trails and logs."""
    spans = spans_of(records)
    meta = next((r for r in records if r.get("type") == "meta"), None)
    totals = total_counters(records)
    semantic = {
        counter: totals[counter]
        for counter in SEMANTIC_COUNTERS
        if counter in totals
    }
    parts = [f"spans={len(spans)}"]
    if meta is not None:
        parts.append(f"wall_clock_s={meta['wall_clock_s']}")
        if meta.get("peak_rss_kb") is not None:
            parts.append(f"peak_rss_kb={meta['peak_rss_kb']}")
    parts.extend(f"{counter}={value}" for counter, value in semantic.items())
    return "trace: " + " ".join(parts)


__all__ = [
    "spans_of",
    "summarize_phases",
    "total_counters",
    "semantic_profile",
    "diff_semantic_profiles",
    "render_phase_table",
    "trace_summary_line",
]
