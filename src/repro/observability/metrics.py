"""Aggregation over finished traces: per-phase tables and diffs.

A finished trace (list of schema records) is summarized two ways:

* :func:`summarize_phases` — group spans by name: how many ran, total
  wall-clock inside them, and the sum of every counter.  This is the
  table ``tools/trace_report.py report`` prints.
* :func:`semantic_profile` — the engine-independent view used for
  differential comparison: per span name (with the ``engine`` attribute
  stripped out of the identity), the summed
  :data:`~repro.observability.schema.SEMANTIC_COUNTERS` only.  Two runs
  of the same workload on different engines must produce equal
  profiles; :func:`diff_semantic_profiles` reports any drift.
"""

from __future__ import annotations

from repro.observability.schema import SEMANTIC_COUNTERS


def spans_of(records: list[dict]) -> list[dict]:
    """The span records of a trace, in emission (closing) order."""
    return [record for record in records if record.get("type") == "span"]


def summarize_phases(records: list[dict]) -> dict[str, dict]:
    """Per span-name aggregate: count, total seconds, summed counters.

    Returns ``{name: {"count": int, "seconds": float,
    "counters": {counter: total}}}``, sorted by first appearance.
    """
    phases: dict[str, dict] = {}
    for record in spans_of(records):
        phase = phases.setdefault(
            record["name"], {"count": 0, "seconds": 0.0, "counters": {}}
        )
        phase["count"] += 1
        phase["seconds"] += record["duration_s"]
        for counter, value in record["counters"].items():
            phase["counters"][counter] = phase["counters"].get(counter, 0) + value
    for phase in phases.values():
        phase["seconds"] = round(phase["seconds"], 6)
    return phases


def total_counters(records: list[dict]) -> dict[str, int]:
    """Every counter summed across all spans of the trace."""
    totals: dict[str, int] = {}
    for record in spans_of(records):
        for counter, value in record["counters"].items():
            totals[counter] = totals.get(counter, 0) + value
    return dict(sorted(totals.items()))


def semantic_profile(records: list[dict]) -> dict[str, dict[str, int]]:
    """Per span-name totals of the semantic counters only.

    The ``engine`` attribute is deliberately *not* part of the span
    identity, so a reference trace and a kernel trace of the same
    workload map onto the same keys and can be diffed directly.  Spans
    with no semantic counters are omitted.
    """
    profile: dict[str, dict[str, int]] = {}
    for record in spans_of(records):
        semantic = {
            counter: value
            for counter, value in record["counters"].items()
            if counter in SEMANTIC_COUNTERS
        }
        if not semantic:
            continue
        bucket = profile.setdefault(record["name"], {})
        for counter, value in semantic.items():
            bucket[counter] = bucket.get(counter, 0) + value
    return profile


def diff_semantic_profiles(
    first: dict[str, dict[str, int]], second: dict[str, dict[str, int]]
) -> list[str]:
    """Human-readable drift lines between two semantic profiles.

    Empty list means zero semantic drift.  Each line names the span,
    the counter, and both values (``<absent>`` for a missing side).
    """
    drift: list[str] = []
    for name in sorted(set(first) | set(second)):
        left = first.get(name, {})
        right = second.get(name, {})
        for counter in sorted(set(left) | set(right)):
            a = left.get(counter, "<absent>")
            b = right.get(counter, "<absent>")
            if a != b:
                drift.append(f"{name} / {counter}: {a} != {b}")
    return drift


def render_phase_table(records: list[dict]) -> str:
    """The per-phase aggregate as an aligned text table.

    One row per span name: occurrence count, total seconds, and the
    summed counters.  Used by ``tools/trace_report.py report`` and the
    CLIs' ``--metrics`` flag.
    """
    phases = summarize_phases(records)
    header = ("phase", "count", "seconds", "counters")
    rows = [header]
    for name, phase in phases.items():
        counters = " ".join(
            f"{counter}={value}"
            for counter, value in sorted(phase["counters"].items())
        )
        rows.append(
            (name, str(phase["count"]), f"{phase['seconds']:.6f}", counters)
        )
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header) - 1)
    ]
    lines = []
    for row in rows:
        cells = [row[column].ljust(widths[column]) for column in range(len(widths))]
        lines.append(("  ".join(cells) + "  " + row[-1]).rstrip())
    return "\n".join(lines)


def hotspot_profile(records: list[dict]) -> dict:
    """Aggregate the ``prof.op`` spans of a trace against kernel wall.

    Returns::

        {
            "ops": {op: {"calls", "wall_ns", "alloc_blocks"}},
            "profiled_seconds": float,   # sum of prof.wall_ns
            "kernel_seconds": float,     # outermost engine=="kernel" spans
            "coverage": float | None,    # profiled / kernel, None if no wall
        }

    The denominator is the summed duration of *outermost* kernel spans
    — spans whose ``engine`` attribute is ``"kernel"`` and whose parent
    chain contains no other such span — so nested operator spans are
    not double-counted.  A coverage near 1.0 means the profiler's
    sections tile essentially all traced kernel work;
    ``tools/trace_report.py hotspots --min-coverage`` gates on it.
    """
    spans = spans_of(records)
    by_id = {span["id"]: span for span in spans}
    ops: dict[str, dict[str, int]] = {}
    profiled_ns = 0
    for span in spans:
        if span["name"] != "prof.op":
            continue
        op = str(span["attrs"].get("op", "?"))
        entry = ops.setdefault(
            op, {"calls": 0, "wall_ns": 0, "alloc_blocks": 0}
        )
        counters = span["counters"]
        entry["calls"] += counters.get("prof.calls", 0)
        entry["wall_ns"] += counters.get("prof.wall_ns", 0)
        entry["alloc_blocks"] += counters.get("prof.alloc_blocks", 0)
        profiled_ns += counters.get("prof.wall_ns", 0)

    def outermost_kernel(span: dict) -> bool:
        if span["attrs"].get("engine") != "kernel":
            return False
        parent_id = span["parent"]
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            if parent["attrs"].get("engine") == "kernel":
                return False
            parent_id = parent["parent"]
        return True

    kernel_seconds = sum(
        span["duration_s"] for span in spans if outermost_kernel(span)
    )
    profiled_seconds = profiled_ns / 1e9
    coverage = (
        profiled_seconds / kernel_seconds if kernel_seconds > 0 else None
    )
    return {
        "ops": ops,
        "profiled_seconds": profiled_seconds,
        "kernel_seconds": kernel_seconds,
        "coverage": coverage,
    }


def render_hotspot_table(records: list[dict]) -> str:
    """The hot-spot profile as an aligned text table, hottest first.

    One row per profiled op: sample count, summed wall milliseconds,
    share of the profiled total, and net allocated-block delta — then
    a coverage line relating the profiled total to the traced kernel
    wall time.
    """
    profile = hotspot_profile(records)
    header = ("op", "calls", "wall_ms", "share", "alloc_blocks")
    rows = [header]
    total_ns = sum(entry["wall_ns"] for entry in profile["ops"].values())
    ordered = sorted(
        profile["ops"].items(),
        key=lambda item: item[1]["wall_ns"],
        reverse=True,
    )
    for op, entry in ordered:
        share = entry["wall_ns"] / total_ns if total_ns else 0.0
        rows.append(
            (
                op,
                str(entry["calls"]),
                f"{entry['wall_ns'] / 1e6:.3f}",
                f"{share:.1%}",
                str(entry["alloc_blocks"]),
            )
        )
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    lines = [
        "  ".join(
            row[column].ljust(widths[column]) for column in range(len(header))
        ).rstrip()
        for row in rows
    ]
    if profile["coverage"] is None:
        lines.append(
            f"coverage: profiled {profile['profiled_seconds']:.6f}s, "
            "no traced kernel spans"
        )
    else:
        lines.append(
            f"coverage: profiled {profile['profiled_seconds']:.6f}s of "
            f"{profile['kernel_seconds']:.6f}s traced kernel wall "
            f"({profile['coverage']:.1%})"
        )
    return "\n".join(lines)


def trace_summary_line(records: list[dict]) -> str:
    """A one-line digest for provenance trails and logs."""
    spans = spans_of(records)
    meta = next((r for r in records if r.get("type") == "meta"), None)
    totals = total_counters(records)
    semantic = {
        counter: totals[counter]
        for counter in SEMANTIC_COUNTERS
        if counter in totals
    }
    parts = [f"spans={len(spans)}"]
    if meta is not None:
        parts.append(f"wall_clock_s={meta['wall_clock_s']}")
        if meta.get("peak_rss_kb") is not None:
            parts.append(f"peak_rss_kb={meta['peak_rss_kb']}")
    parts.extend(f"{counter}={value}" for counter, value in semantic.items())
    return "trace: " + " ".join(parts)


__all__ = [
    "spans_of",
    "summarize_phases",
    "total_counters",
    "semantic_profile",
    "diff_semantic_profiles",
    "render_phase_table",
    "hotspot_profile",
    "render_hotspot_table",
    "trace_summary_line",
]
