"""The stable JSON-lines trace schema, and its validator.

A trace file holds one JSON object per line.  Three record types:

``meta`` (exactly one, last line)
    ``{"type": "meta", "schema": 1, "spans": int, "events": int,
    "wall_clock_s": float, "peak_rss_kb": int | null}``

``span`` (one per closed span, emitted in closing order)
    ``{"type": "span", "id": int, "parent": int | null, "name": str,
    "start_s": float, "duration_s": float, "status": "ok" | "error",
    "attrs": {...}, "counters": {str: int >= 0}, "error"?: str}``

``event`` (attached to the span open when it fired)
    ``{"type": "event", "span": int, "name": str, "at_s": float,
    "attrs": {...}}``

The schema is versioned (:data:`SCHEMA_VERSION`); consumers must reject
files whose ``meta.schema`` they do not understand.  Counter values are
cumulative within their span and non-negative — so summing a counter
over spans is always meaningful.

:data:`SEMANTIC_COUNTERS` names the counters that describe *what the
engine computed* (label counts, right-closed sets, configuration
counts) rather than *how fast or how cached* it was.  The reference and
kernel engines must agree on semantic counters for the same input; the
differential trace tests and ``tools/trace_report.py diff`` enforce
exactly that, while timing/cache counters (``*.cache.hit``, ``mp.*``,
``budget.checkpoints``) are engine-specific by design.

The ``prof.*`` counters are emitted by the hot-spot profiler
(:mod:`repro.observability.profiling`) — one ``prof.op`` span per
sampled operation with its call count, summed wall time in
nanoseconds, and net allocated-block delta.  They are timing-class by
construction (two runs of the same workload differ in every one), as
is ``kernel.intern.transported``, which counts interned-artifact
bundles transported through a relabeling instead of recomputed.

The ``service.*`` counters are emitted by the job orchestrator
(:mod:`repro.service.orchestrator`), one span per job: ``service.jobs``
(jobs executed), ``service.dedup`` (jobs served by replaying an
isomorphic computation through the warm operator cache),
``service.errors`` (jobs that surfaced a typed failure), and
``service.resumed`` (jobs re-enqueued after a server restart).  They
are timing-class: how work reached the engine, not what it computed.
"""

from __future__ import annotations

import os

from repro.robustness.errors import InvalidTrace

SCHEMA_VERSION = 1

#: Engine-independent counters: both engines must report equal values.
SEMANTIC_COUNTERS = (
    "labels.in",
    "labels.out",
    "edge.closed_sets",
    "node.right_closed_sets",
    "node.configs.out",
    "edge.configs.out",
    "chain.steps",
    "selfred.merged_labels",
    "selfred.removed_labels",
    "selfred.steps",
)

#: Engine/runtime-dependent counters: excluded from differential diffs.
#: ``condensed.configs`` lives here rather than in the semantic tuple:
#: it is emitted only by :func:`existential_condensed`, the Lemma 6
#: display form, which no engine execution path runs — the kernel never
#: produces it, so the differential gate has nothing to compare.
TIMING_COUNTERS = (
    "condensed.configs",
    "kernel.cache.hit",
    "kernel.cache.miss",
    "galois.cache.hit",
    "galois.cache.miss",
    "cache.hit",
    "cache.miss",
    "cache.bytes",
    "cache.corrupt",
    "budget.checkpoints",
    "mp.chunks",
    "mp.chunk_results",
    "mp.shards",
    "mp.retries",
    "mp.worker_deaths",
    "mp.shard_splits",
    "mp.spilled_bytes",
    "mp.spill_loads",
    "mp.mem_admitted_peak",
    "kernel.intern.transported",
    "prof.calls",
    "prof.wall_ns",
    "prof.alloc_blocks",
    "sim.messages",
    "sim.rounds",
    "service.jobs",
    "service.dedup",
    "service.errors",
    "service.resumed",
)

_SPAN_STATUSES = ("ok", "error")


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` describing the first schema violation."""
    if not isinstance(record, dict):
        raise InvalidTrace(f"record is not an object: {record!r}")
    kind = record.get("type")
    if kind == "meta":
        _require(record, "schema", int)
        if record["schema"] != SCHEMA_VERSION:
            raise InvalidTrace(
                f"unsupported schema version {record['schema']!r} "
                f"(supported: {SCHEMA_VERSION})"
            )
        _require(record, "spans", int)
        _require(record, "events", int)
        _require(record, "wall_clock_s", (int, float))
        if record.get("peak_rss_kb") is not None:
            _require(record, "peak_rss_kb", int)
    elif kind == "span":
        _require(record, "id", int)
        if record.get("parent") is not None:
            _require(record, "parent", int)
        _require(record, "name", str)
        _require(record, "start_s", (int, float))
        _require(record, "duration_s", (int, float))
        if record["duration_s"] < 0:
            raise InvalidTrace(f"span {record['id']} has negative duration")
        if record.get("status") not in _SPAN_STATUSES:
            raise InvalidTrace(
                f"span {record['id']} has status {record.get('status')!r}"
            )
        _require(record, "attrs", dict)
        _require(record, "counters", dict)
        for counter, value in record["counters"].items():
            if not isinstance(counter, str):
                raise InvalidTrace(f"counter key {counter!r} is not a string")
            if not isinstance(value, int) or value < 0:
                raise InvalidTrace(
                    f"counter {counter!r} of span {record['id']} must be a "
                    f"non-negative integer, got {value!r}"
                )
    elif kind == "event":
        _require(record, "span", int)
        _require(record, "name", str)
        _require(record, "at_s", (int, float))
        _require(record, "attrs", dict)
    else:
        raise InvalidTrace(f"unknown record type {kind!r}")


def _require(
    record: dict, key: str, types: type | tuple[type, ...]
) -> None:
    if key not in record:
        raise InvalidTrace(
            f"{record.get('type')} record is missing {key!r}: {record!r}"
        )
    if not isinstance(record[key], types) or isinstance(record[key], bool):
        raise InvalidTrace(
            f"{record.get('type')}.{key} has wrong type: {record[key]!r}"
        )


def validate_trace(records: list[dict]) -> None:
    """Validate a whole trace: every record, plus cross-record structure.

    Checks that exactly one ``meta`` record exists (and comes last),
    that span ids are unique, every span's parent is a known span id,
    every event's span is a known span id, and the span/event totals in
    ``meta`` match.
    """
    if not records:
        raise InvalidTrace("empty trace")
    for record in records:
        validate_record(record)
    meta_records = [r for r in records if r["type"] == "meta"]
    if len(meta_records) != 1:
        raise InvalidTrace(f"expected exactly one meta record, got {len(meta_records)}")
    if records[-1]["type"] != "meta":
        raise InvalidTrace("meta record must be the last record")
    meta = meta_records[0]
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]
    span_ids = [r["id"] for r in spans]
    if len(span_ids) != len(set(span_ids)):
        raise InvalidTrace("duplicate span ids")
    known = set(span_ids)
    for record in spans:
        if record["parent"] is not None and record["parent"] not in known:
            raise InvalidTrace(
                f"span {record['id']} has unknown parent {record['parent']}"
            )
    for record in events:
        if record["span"] not in known:
            raise InvalidTrace(
                f"event {record['name']!r} references unknown span "
                f"{record['span']}"
            )
    if meta["spans"] != len(spans) or meta["events"] != len(events):
        raise InvalidTrace(
            f"meta counts (spans={meta['spans']}, events={meta['events']}) "
            f"disagree with the file (spans={len(spans)}, events={len(events)})"
        )


def parse_trace_lines(text: str) -> list[dict]:
    """Parse JSON-lines text into records (no validation)."""
    import json

    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise InvalidTrace(f"line {line_number} is not JSON: {error}") from error
    return records


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read, parse, and validate a trace file."""
    with open(path, encoding="utf-8") as handle:
        records = parse_trace_lines(handle.read())
    validate_trace(records)
    return records


__all__ = [
    "SCHEMA_VERSION",
    "SEMANTIC_COUNTERS",
    "TIMING_COUNTERS",
    "validate_record",
    "validate_trace",
    "parse_trace_lines",
    "load_trace",
]
