"""A LOCAL / port-numbering model simulator.

The substrate for the experimental side of the reproduction: graphs
with port numberings and edge colorings, generators for (regular)
trees and the paper's symmetric-port instances, a synchronous
message-passing runtime with LOCAL and PN node views, and verifiers
for every output object the paper talks about (MIS, dominating sets,
k-outdegree dominating sets, colorings, generic LCL labelings).
"""

from repro.sim.graph import Graph, HalfEdge
from repro.sim.generators import (
    colored_port_cayley_graph,
    cycle_graph,
    path_graph,
    random_tree,
    random_tree_bounded_degree,
    star_graph,
    truncated_regular_tree,
)
from repro.sim.edge_coloring import (
    greedy_edge_coloring,
    is_proper_edge_coloring,
    ports_from_edge_coloring,
    tree_edge_coloring,
)
from repro.sim.runtime import (
    Algorithm,
    Ball,
    MessageTooLargeError,
    NodeView,
    RunResult,
    collect_ball,
    estimate_message_bits,
    run,
    run_ball_algorithm,
)
from repro.sim.transform import (
    degeneracy_orientation,
    induced_subgraph,
    is_maximal_matching,
    line_graph,
)
from repro.sim.views import (
    indistinguishable,
    view_classes,
    view_signature,
)
from repro.sim.brute_force import (
    impossible_for_every_radius,
    solvability_radius,
    uniform_algorithm_exists,
)
from repro.sim.verifiers import (
    VerificationResult,
    verify_arbdefective_coloring,
    verify_defective_coloring,
    verify_dominating_set,
    verify_independent_set,
    verify_k_degree_dominating_set,
    verify_k_outdegree_dominating_set,
    verify_lcl,
    verify_mis,
    verify_proper_coloring,
)

__all__ = [
    "Graph",
    "HalfEdge",
    "colored_port_cayley_graph",
    "cycle_graph",
    "path_graph",
    "random_tree",
    "random_tree_bounded_degree",
    "star_graph",
    "truncated_regular_tree",
    "greedy_edge_coloring",
    "is_proper_edge_coloring",
    "ports_from_edge_coloring",
    "tree_edge_coloring",
    "Algorithm",
    "Ball",
    "MessageTooLargeError",
    "NodeView",
    "RunResult",
    "collect_ball",
    "estimate_message_bits",
    "run",
    "run_ball_algorithm",
    "degeneracy_orientation",
    "induced_subgraph",
    "is_maximal_matching",
    "line_graph",
    "indistinguishable",
    "view_classes",
    "view_signature",
    "impossible_for_every_radius",
    "solvability_radius",
    "uniform_algorithm_exists",
    "VerificationResult",
    "verify_arbdefective_coloring",
    "verify_defective_coloring",
    "verify_dominating_set",
    "verify_independent_set",
    "verify_k_degree_dominating_set",
    "verify_k_outdegree_dominating_set",
    "verify_lcl",
    "verify_mis",
    "verify_proper_coloring",
]
