"""Graph generators: trees, cycles, and the paper's hard instances.

The lower-bound statements live on Delta-regular trees; finite
truncations (every internal node has degree exactly Delta, leaves at a
chosen radius) stand in for them, as recorded in DESIGN.md.  The
symmetric-port instances of Lemmas 12 and 15 — where the edge of color
i carries port i at *both* endpoints — are realized by the Cayley graph
of (Z_2)^Delta, whose natural 1-factorization has exactly that
property.
"""

from __future__ import annotations

import random

from repro.sim.graph import Graph
from repro.robustness.errors import InvalidGraph, RetryExhausted


def path_graph(n: int) -> Graph:
    """The path on ``n`` nodes."""
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise InvalidGraph("a cycle needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def star_graph(leaves: int) -> Graph:
    """A star: node 0 joined to ``leaves`` leaves."""
    if leaves < 1:
        raise InvalidGraph("a star needs at least one leaf")
    return Graph.from_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def truncated_regular_tree(delta: int, radius: int) -> Graph:
    """The Delta-regular tree truncated at distance ``radius`` from the root.

    Every node at distance < ``radius`` has degree exactly ``delta``
    (the root has ``delta`` children, other internal nodes
    ``delta - 1``); nodes at distance ``radius`` are leaves.  For
    ``radius = 0`` this is a single node.
    """
    if delta < 2:
        raise InvalidGraph("need delta >= 2")
    if radius < 0:
        raise InvalidGraph("radius must be non-negative")
    edges: list[tuple[int, int]] = []
    next_node = 1
    frontier = [0]
    for level in range(radius):
        new_frontier = []
        for node in frontier:
            children = delta if level == 0 else delta - 1
            for _ in range(children):
                edges.append((node, next_node))
                new_frontier.append(next_node)
                next_node += 1
        frontier = new_frontier
    graph = Graph(next_node)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def random_tree(n: int, rng: random.Random) -> Graph:
    """A uniformly random labeled tree on ``n`` nodes (Pruefer decode)."""
    if n < 1:
        raise InvalidGraph("need at least one node")
    if n == 1:
        return Graph(1)
    if n == 2:
        return Graph.from_edges(2, [(0, 1)])
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return _decode_pruefer(n, sequence)


def _decode_pruefer(n: int, sequence: list[int]) -> Graph:
    degree = [1] * n
    for node in sequence:
        degree[node] += 1
    import heapq

    leaves = [node for node in range(n) if degree[node] == 1]
    heapq.heapify(leaves)
    graph = Graph(n)
    for node in sequence:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, node)
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    last_two = [heapq.heappop(leaves), heapq.heappop(leaves)]
    graph.add_edge(last_two[0], last_two[1])
    return graph


def random_tree_bounded_degree(n: int, delta: int, rng: random.Random) -> Graph:
    """A random tree with maximum degree at most ``delta``.

    Random attachment: node i joins a uniformly random earlier node
    that still has spare degree.  Not uniform over all bounded-degree
    trees, but a natural workload for the algorithm experiments.
    """
    if delta < 2:
        raise InvalidGraph("need delta >= 2")
    if n < 1:
        raise InvalidGraph("need at least one node")
    graph = Graph(n)
    available = [0] if n > 1 else []
    degree = [0] * n
    for node in range(1, n):
        target = available[rng.randrange(len(available))]
        graph.add_edge(node, target)
        degree[node] += 1
        degree[target] += 1
        if degree[target] >= delta:
            available.remove(target)
        if degree[node] < delta:
            available.append(node)
        if not available:
            raise InvalidGraph(f"cannot fit {n} nodes with max degree {delta}")
    return graph


def torus_grid(rows: int, columns: int) -> Graph:
    """The 4-regular toroidal grid with its natural 4-edge coloring.

    Colors 0/1 are the two horizontal parities, colors 2/3 the vertical
    ones — a proper 4-edge coloring whenever both dimensions are even.
    Another Delta-regular, properly colored instance family for the
    simulator experiments.
    """
    if rows < 3 or columns < 3:
        raise InvalidGraph("torus needs both dimensions >= 3")
    graph = Graph(rows * columns)

    def index(row: int, column: int) -> int:
        return (row % rows) * columns + (column % columns)

    for row in range(rows):
        for column in range(columns):
            right = index(row, column + 1)
            down = index(row + 1, column)
            if columns > 2:
                graph.add_edge(index(row, column), right, color=column % 2)
            if rows > 2:
                graph.add_edge(index(row, column), down, color=2 + row % 2)
    return graph


def random_regular_graph(n: int, delta: int, rng: random.Random,
                         max_attempts: int = 200) -> Graph:
    """A random Delta-regular simple graph via the configuration model.

    Pairs up node stubs uniformly and retries on self-loops or parallel
    edges; for moderate n and Delta the acceptance probability is
    constant, so a few attempts suffice.  These are the high-girth-ish
    instances (girth concentrates around log n / log Delta) on which
    Theorem 3's hypothesis is checked explicitly by the experiments.
    """
    if n * delta % 2:
        raise InvalidGraph("n * delta must be even")
    if delta >= n:
        raise InvalidGraph("need delta < n")
    for _ in range(max_attempts):
        stubs = [node for node in range(n) for _ in range(delta)]
        rng.shuffle(stubs)
        pairs = [
            (stubs[index], stubs[index + 1]) for index in range(0, len(stubs), 2)
        ]
        seen = set()
        ok = True
        for u, v in pairs:
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                ok = False
                break
            seen.add(key)
        if ok:
            return Graph.from_edges(n, pairs)
    raise RetryExhausted(
        f"no simple {delta}-regular graph found in {max_attempts} attempts"
    )


def complete_bipartite_graph(delta: int) -> Graph:
    """K_{delta,delta} with the canonical proper Delta-edge coloring.

    Left nodes are ``0 .. delta-1``, right nodes ``delta .. 2*delta-1``;
    the edge {i, delta + j} gets color ``(i + j) mod delta`` (a
    1-factorization).  Delta-regular, bipartite (so no label can clash
    with itself across the bipartition), and properly colored — the
    workhorse instance for exercising the Lemma 9 conversion on
    solutions that actually use the A and C configurations.
    """
    if delta < 1:
        raise InvalidGraph("need delta >= 1")
    graph = Graph(2 * delta)
    for color in range(delta):
        for i in range(delta):
            j = (color - i) % delta
            graph.add_edge(i, delta + j, color=color)
    return graph


def colored_port_cayley_graph(delta: int) -> Graph:
    """The Lemma 12 / Lemma 15 hard instance family.

    The Cayley graph of (Z_2)^delta with the standard generators:
    nodes are binary vectors of length ``delta``; flipping bit i gives
    the color-i neighbor.  Ports are assigned so that the color-i edge
    uses port i at *both* endpoints, and the edge coloring (colors
    ``0 .. delta-1``) is stored in the graph — so a 0-round algorithm
    sees identical views everywhere, even given the coloring.
    """
    if delta < 1:
        raise InvalidGraph("need delta >= 1")
    n = 1 << delta
    graph = Graph(n)
    # Add edges in color order: since add_edge assigns first-free ports
    # and every node gains exactly one edge per color, port == color.
    for color in range(delta):
        for node in range(n):
            other = node ^ (1 << color)
            if node < other:
                edge_id = graph.add_edge(node, other, color=color)
                assert graph.endpoints(edge_id)[1] == color
                assert graph.endpoints(edge_id)[3] == color
    return graph
