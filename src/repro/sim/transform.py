"""Graph transformations: line graphs and induced subgraphs.

The paper leans on line graphs twice (Sec. 1.1): the MIS of a line
graph is a maximal matching, and a k-outdegree dominating set of a line
graph is automatically an O(k)-degree dominating set.  Both claims are
exercised experimentally (benchmark LINE), which needs an actual line
graph constructor with a mapping back to the original edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.sim.graph import Graph
from repro.robustness.errors import InvalidGraph


@dataclass
class LineGraphResult:
    """A line graph plus the correspondence to the base graph."""

    graph: Graph
    #: node index in the line graph -> edge id of the base graph
    node_to_edge: list[int]
    #: edge id of the base graph -> node index in the line graph
    edge_to_node: dict[int, int]


def line_graph(base: Graph) -> LineGraphResult:
    """The line graph L(G): one node per edge, adjacency = shared endpoint.

    If G has maximum degree Delta, L(G) has maximum degree at most
    2 * (Delta - 1).
    """
    node_to_edge = [edge_id for edge_id, _, _ in base.edges()]
    edge_to_node = {edge_id: index for index, edge_id in enumerate(node_to_edge)}
    if not node_to_edge:
        raise InvalidGraph("the base graph has no edges")
    result = Graph(len(node_to_edge))
    for node in range(base.n):
        incident = [half.edge_id for half in base.half_edges(node)]
        for first_index in range(len(incident)):
            for second_index in range(first_index + 1, len(incident)):
                u = edge_to_node[incident[first_index]]
                v = edge_to_node[incident[second_index]]
                if not result.has_edge(u, v):
                    result.add_edge(u, v)
    return LineGraphResult(
        graph=result, node_to_edge=node_to_edge, edge_to_node=edge_to_node
    )


def induced_subgraph(base: Graph, nodes: Iterable[int]) -> tuple[Graph, list[int]]:
    """The subgraph induced by ``nodes``.

    Returns ``(graph, index_to_original)``; isolated selected nodes are
    kept.
    """
    ordered = sorted(set(nodes))
    if not ordered:
        raise InvalidGraph("cannot induce on an empty node set")
    position = {node: index for index, node in enumerate(ordered)}
    result = Graph(len(ordered))
    for _, u, v in base.edges():
        if u in position and v in position:
            result.add_edge(position[u], position[v])
    return result, ordered


def matching_from_line_graph_mis(
    base: Graph, line: LineGraphResult, selected: Iterable[int]
) -> set[int]:
    """Translate an MIS of L(G) back to a matching of G (edge ids)."""
    return {line.node_to_edge[node] for node in selected}


def degeneracy_orientation(graph: Graph) -> tuple[dict[int, int], int]:
    """An acyclic orientation minimizing the maximum outdegree.

    Repeatedly removes a minimum-degree node; each removed node's
    remaining edges point *away* from it (it is the tail).  The maximum
    outdegree equals the graph's degeneracy, which is the optimum over
    all acyclic orientations.  Returns ``(orientation, degeneracy)``
    with ``orientation[edge_id] = head``.
    """
    remaining_degree = [graph.degree(node) for node in range(graph.n)]
    removed = [False] * graph.n
    orientation: dict[int, int] = {}
    degeneracy = 0
    for _ in range(graph.n):
        node = min(
            (candidate for candidate in range(graph.n) if not removed[candidate]),
            key=lambda candidate: remaining_degree[candidate],
        )
        degeneracy = max(degeneracy, remaining_degree[node])
        removed[node] = True
        for half in graph.half_edges(node):
            if not removed[half.neighbor]:
                orientation[half.edge_id] = half.neighbor
                remaining_degree[half.neighbor] -= 1
    return orientation, degeneracy


def is_maximal_matching(base: Graph, edge_ids: Iterable[int]) -> bool:
    """Whether the edge set is a matching no edge can be added to."""
    chosen = set(edge_ids)
    covered: set[int] = set()
    for edge_id in chosen:
        u, _, v, _ = base.endpoints(edge_id)
        if u in covered or v in covered:
            return False  # not a matching
        covered.add(u)
        covered.add(v)
    for edge_id, u, v in base.edges():
        if edge_id not in chosen and u not in covered and v not in covered:
            return False  # not maximal
    return True
