"""Radius-t views and indistinguishability in the port-numbering model.

The bedrock of every PN lower bound — including Lemmas 12 and 15 — is
that a t-round algorithm's output is a function of the node's *t-radius
view*: the port-labeled (and edge-colored) tree unfolding of depth t.
Two nodes with equal views must answer identically.

:func:`view_signature` canonicalizes that unfolding into a hashable
value, so indistinguishability becomes equality.  On the paper's
symmetric-port instances *all* nodes share the 0-radius view (checked
in the tests and used by Lemma 12); in fact the (Z_2)^Delta Cayley
instance is vertex-transitive, so all views agree at *every* radius —
the strongest possible indistinguishability.
"""

from __future__ import annotations

from repro.sim.graph import Graph


def view_signature(graph: Graph, node: int, radius: int) -> tuple:
    """A canonical encoding of the radius-``radius`` PN view of ``node``.

    The view is the unfolded tree: per port, the edge color (if any),
    the port number at the far end, and recursively the neighbor's
    view of depth ``radius - 1`` with the arrival port marked.  The
    encoding contains no node identifiers, so equal signatures mean a
    PN algorithm cannot distinguish the nodes within ``radius`` rounds.

    Unfolding walks back and forth across edges exactly as the formal
    definition does (the universal cover), so cycles shorter than
    2 * radius + 1 do influence the view only through repetition
    patterns — matching the high-girth discussions of Theorem 3.
    """
    return _unfold(graph, node, arrival_port=None, depth=radius)


def _unfold(
    graph: Graph, node: int, arrival_port: int | None, depth: int
) -> tuple:
    if depth == 0:
        return (graph.degree(node), arrival_port)
    branches = []
    for port, half in enumerate(graph.half_edges(node)):
        color = graph.edge_color(half.edge_id)
        child = _unfold(
            graph,
            half.neighbor,
            arrival_port=half.neighbor_port,
            depth=depth - 1,
        )
        branches.append((port, color, half.neighbor_port, child))
    return (graph.degree(node), arrival_port, tuple(branches))


def indistinguishable(graph: Graph, first: int, second: int, radius: int) -> bool:
    """Whether two nodes have equal radius-``radius`` PN views."""
    return view_signature(graph, first, radius) == view_signature(
        graph, second, radius
    )


def view_classes(graph: Graph, radius: int) -> list[list[int]]:
    """Partition the nodes into view-equality classes.

    A deterministic t-round PN algorithm outputs one value per class;
    the class structure therefore measures how much symmetry an
    instance offers an adversary (one class = the algorithm is blind).
    """
    classes: dict = {}
    for node in range(graph.n):
        classes.setdefault(view_signature(graph, node, radius), []).append(node)
    return sorted(classes.values())


def is_vertex_transitive_up_to(graph: Graph, radius: int) -> bool:
    """Whether all nodes share one view class at this radius."""
    return len(view_classes(graph, radius)) == 1
