"""A synchronous message-passing runtime (paper, Sec. 2.1).

Implements both models:

* **LOCAL** — nodes know unique ids from ``{0, .., poly(n)}``, the
  degree, Delta, and n; messages are arbitrary Python objects (the
  model does not bound message size).
* **PN** (port numbering) — identical, except the node view exposes no
  id.  Model separation is structural: a PN algorithm cannot read an
  id because the attribute raises.

The runtime is deterministic given a seed: every node receives an
independent ``random.Random`` stream derived from the seed and its
index, matching the private random bit strings of the randomized
models.

Besides the message-passing interface there is a *full-information*
runner, :func:`run_ball_algorithm`: since LOCAL allows unbounded
messages, a T-round algorithm is equivalent to a function from
T-radius neighborhoods to outputs (Sec. 2.1), and some of the paper's
reductions (e.g. the 1-round conversion of Lemma 5) are most naturally
written that way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.observability import trace as _trace
from repro.sim.graph import Graph
from repro.robustness.errors import EngineMisuse, RetryExhausted


class MessageTooLargeError(RuntimeError):
    """A CONGEST message exceeded the per-edge bit budget."""


def estimate_message_bits(message: object) -> int:
    """A conservative bit-size estimate for CONGEST accounting.

    Integers cost their bit length, booleans 1, floats 64, strings 8
    bits per character; containers cost the sum of their items plus 8
    bits of framing each.  ``None`` is free (absence of a message).
    """
    if message is None:
        return 0
    if isinstance(message, bool):
        return 1
    if isinstance(message, int):
        return max(message.bit_length(), 1) + 1  # sign bit
    if isinstance(message, float):
        return 64
    if isinstance(message, str):
        return 8 * len(message)
    if isinstance(message, (tuple, list, set, frozenset)):
        return 8 + sum(estimate_message_bits(item) for item in message)
    if isinstance(message, dict):
        return 8 + sum(
            estimate_message_bits(key) + estimate_message_bits(value)
            for key, value in message.items()
        )
    raise TypeError(
        f"cannot estimate CONGEST size of {type(message).__name__}"
    )


class NodeView:
    """What a node initially knows, per Section 2.1.

    Attributes:
        degree: the node's own degree.
        n: number of nodes in the graph (known in both models).
        delta: the maximum degree of the graph.
        edge_colors: color of the edge behind each port (``None`` when
            the graph carries no coloring input).
        input: arbitrary per-node problem input (or ``None``).
        rng: the node's private random stream.
    """

    def __init__(
        self,
        node: int,
        graph: Graph,
        model: str,
        rng: random.Random,
        node_input: object = None,
    ) -> None:
        self._node = node
        self._model = model
        self.degree = graph.degree(node)
        self.n = graph.n
        self.delta = graph.max_degree()
        self.edge_colors = [
            graph.color_at(node, port) for port in range(self.degree)
        ]
        self.input = node_input
        self.rng = rng

    @property
    def id(self) -> int:
        """The node's unique identifier — LOCAL and CONGEST only."""
        if self._model == "PN":
            raise AttributeError("the PN model provides no identifiers")
        return self._node

    @property
    def model(self) -> str:
        """One of ``"LOCAL"``, ``"CONGEST"``, ``"PN"``."""
        return self._model


class Algorithm:
    """Base class for synchronous distributed algorithms.

    Lifecycle per node: ``init(view)`` once; then in every round the
    runtime collects ``send()`` (a dict port -> message), delivers, and
    calls ``receive(messages)`` with a dict port -> message holding the
    messages that arrived (ports of silent or halted neighbors are
    absent).  A node halts by returning ``True`` from ``receive`` — or
    by ``init`` setting ``self.halted`` for 0-round algorithms.  After
    halting, ``output()`` is read once.
    """

    halted: bool = False

    def init(self, view: NodeView) -> None:
        """Store the view and do round-0 (input-only) computation."""
        self.view = view

    def send(self) -> dict[int, object]:
        """Messages to emit this round, keyed by port."""
        return {}

    def receive(self, messages: dict[int, object]) -> bool:
        """Handle this round's messages; return True to halt."""
        raise NotImplementedError

    def output(self) -> object:
        """The node's local output, read after halting."""
        raise NotImplementedError


@dataclass
class RunResult:
    """Outcome of a simulation run."""

    outputs: list
    rounds: int
    halted: bool
    per_node_rounds: list[int] = field(default_factory=list)


def run(
    graph: Graph,
    algorithm_factory: Callable[[], Algorithm],
    *,
    model: str = "LOCAL",
    seed: int = 0,
    rng: random.Random | None = None,
    inputs: list | None = None,
    max_rounds: int = 10_000,
    message_bits: int | None = None,
) -> RunResult:
    """Run one algorithm instance per node, synchronously.

    The round complexity reported is the number of communication
    rounds until the last node halts (a node halting right in ``init``
    contributes 0 rounds).  Raises ``RuntimeError`` when ``max_rounds``
    is exceeded — distributed algorithms must terminate.

    All randomness flows from one injectable master stream: either the
    ``rng`` argument or a fresh ``random.Random(seed)`` — never the
    module-level global.  Per-node private streams are derived from the
    master deterministically, so a run is a pure function of
    ``(graph, algorithm, seed-or-rng, inputs)`` and an
    interrupted-and-resumed randomized experiment reproduces exactly by
    replaying with the same seed.

    In the ``"CONGEST"`` model every message is size-checked against
    ``message_bits`` (default ``32 * ceil(log2 n)``, i.e. O(log n));
    oversized messages raise :class:`MessageTooLargeError`.  The paper's
    lower bounds apply verbatim to CONGEST (Sec. 2.1), so CONGEST runs
    of the upper-bound algorithms are directly comparable.
    """
    if model not in ("LOCAL", "PN", "CONGEST"):
        raise EngineMisuse(f"unknown model {model!r}")
    with _trace.span(
        "sim.run", model=model, n=graph.n, delta=graph.max_degree()
    ) as sim_span:
        bit_budget = message_bits
        if model == "CONGEST" and bit_budget is None:
            bit_budget = 32 * max((graph.n - 1).bit_length(), 1)
        master = rng if rng is not None else random.Random(seed)
        node_seeds = [master.randrange(2**63) for _ in range(graph.n)]
        algorithms = [algorithm_factory() for _ in range(graph.n)]
        per_node_rounds = [0] * graph.n
        for node, algorithm in enumerate(algorithms):
            view = NodeView(
                node,
                graph,
                model,
                random.Random(node_seeds[node]),
                inputs[node] if inputs is not None else None,
            )
            algorithm.init(view)
        rounds = 0
        while not all(algorithm.halted for algorithm in algorithms):
            if rounds >= max_rounds:
                raise RetryExhausted(
                    f"algorithm did not halt within {max_rounds} rounds"
                )
            rounds += 1
            sim_span.add("sim.rounds")
            outboxes: list[dict[int, object]] = []
            for node, algorithm in enumerate(algorithms):
                outboxes.append({} if algorithm.halted else algorithm.send())
            inboxes: list[dict[int, object]] = [{} for _ in range(graph.n)]
            for node, outbox in enumerate(outboxes):
                sim_span.add("sim.messages", len(outbox))
                for port, message in outbox.items():
                    if bit_budget is not None:
                        size = estimate_message_bits(message)
                        if size > bit_budget:
                            raise MessageTooLargeError(
                                f"node {node} sent {size} bits on port {port}, "
                                f"budget is {bit_budget} (round {rounds})"
                            )
                    half = graph.half_edges(node)[port]
                    inboxes[half.neighbor][half.neighbor_port] = message
            for node, algorithm in enumerate(algorithms):
                if algorithm.halted:
                    continue
                per_node_rounds[node] = rounds
                if algorithm.receive(inboxes[node]):
                    algorithm.halted = True
        outputs = [algorithm.output() for algorithm in algorithms]
    return RunResult(
        outputs=outputs,
        rounds=max(per_node_rounds) if per_node_rounds else 0,
        halted=True,
        per_node_rounds=per_node_rounds,
    )


# ---------------------------------------------------------------------------
# Full-information (radius-T view) runner
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Ball:
    """The radius-T view of a node: the subgraph it can learn in T rounds.

    ``nodes`` lists the nodes of the ball (center first); views, ports,
    colors and inputs are exposed through the original graph, which is
    safe because a T-round LOCAL algorithm may depend on anything
    within distance T.
    """

    center: int
    radius: int
    nodes: tuple[int, ...]
    graph: Graph
    inputs: tuple | None

    def distance(self, node: int) -> int:
        """Distance from the center to ``node`` inside the ball."""
        distances = {self.center: 0}
        queue = [self.center]
        while queue:
            current = queue.pop(0)
            if current == node:
                return distances[current]
            if distances[current] == self.radius:
                continue
            for half in self.graph.half_edges(current):
                if half.neighbor not in distances:
                    distances[half.neighbor] = distances[current] + 1
                    queue.append(half.neighbor)
        if node in distances:
            return distances[node]
        raise EngineMisuse(f"node {node} is outside the ball")


def collect_ball(
    graph: Graph, center: int, radius: int, inputs: list | None = None
) -> Ball:
    """The set of nodes within ``radius`` of ``center``, center first."""
    seen = {center}
    ordered = [center]
    frontier = [center]
    for _ in range(radius):
        next_frontier = []
        for node in frontier:
            for half in graph.half_edges(node):
                if half.neighbor not in seen:
                    seen.add(half.neighbor)
                    ordered.append(half.neighbor)
                    next_frontier.append(half.neighbor)
        frontier = next_frontier
    return Ball(
        center=center,
        radius=radius,
        nodes=tuple(ordered),
        graph=graph,
        inputs=tuple(inputs) if inputs is not None else None,
    )


def run_ball_algorithm(
    graph: Graph,
    radius: int,
    decide: Callable[[Ball], object],
    inputs: list | None = None,
) -> list:
    """Evaluate a radius-``radius`` view algorithm at every node.

    ``decide`` maps a :class:`Ball` to the node's output.  This is the
    "T-round algorithm = function of T-radius neighborhoods" reading of
    the LOCAL model (Sec. 2.1).
    """
    return [
        decide(collect_ball(graph, node, radius, inputs)) for node in range(graph.n)
    ]
