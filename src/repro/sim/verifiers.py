"""Verifiers for every output object the paper discusses.

Each verifier returns a :class:`VerificationResult` listing violations
(empty list = valid output).  Experiments never trust an algorithm "by
construction": every produced object is re-checked here against the
independently-stated definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.sim.graph import Graph


@dataclass
class VerificationResult:
    """Outcome of a verification: valid iff ``violations`` is empty."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the object verified cleanly."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def add(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    def merge(self, other: "VerificationResult") -> "VerificationResult":
        """Accumulate another result's violations."""
        self.violations.extend(other.violations)
        return self


# ---------------------------------------------------------------------------
# Set-based objects
# ---------------------------------------------------------------------------

def verify_independent_set(graph: Graph, selected: Iterable[int]) -> VerificationResult:
    """No two selected nodes are adjacent."""
    result = VerificationResult()
    chosen = set(selected)
    for _, u, v in graph.edges():
        if u in chosen and v in chosen:
            result.add(f"adjacent nodes {u} and {v} are both selected")
    return result


def verify_dominating_set(graph: Graph, selected: Iterable[int]) -> VerificationResult:
    """Every unselected node has a selected neighbor."""
    result = VerificationResult()
    chosen = set(selected)
    for node in range(graph.n):
        if node in chosen:
            continue
        if not any(neighbor in chosen for neighbor in graph.neighbors(node)):
            result.add(f"node {node} is not dominated")
    return result


def verify_mis(graph: Graph, selected: Iterable[int]) -> VerificationResult:
    """Maximal independent set = independent + dominating (Sec. 1)."""
    chosen = set(selected)
    result = verify_independent_set(graph, chosen)
    return result.merge(verify_dominating_set(graph, chosen))


def _orientation_heads(
    graph: Graph, orientation: Mapping[int, int]
) -> VerificationResult:
    result = VerificationResult()
    for edge_id, head in orientation.items():
        u, _, v, _ = graph.endpoints(edge_id)
        if head not in (u, v):
            result.add(f"edge {edge_id} oriented toward non-endpoint {head}")
    return result


def verify_k_outdegree_dominating_set(
    graph: Graph,
    selected: Iterable[int],
    orientation: Mapping[int, int],
    k: int,
) -> VerificationResult:
    """The paper's k-outdegree dominating set (Sec. 1).

    ``selected`` is the set S; ``orientation`` maps each edge id of the
    induced subgraph G[S] to the endpoint the edge points *toward*
    (its head).  Requirements: S dominates G, every induced edge is
    oriented, and every node of S has outdegree at most k in G[S].
    """
    chosen = set(selected)
    result = verify_dominating_set(graph, chosen)
    result.merge(_orientation_heads(graph, orientation))
    outdegree = {node: 0 for node in chosen}
    for edge_id, u, v in graph.edges():
        if u in chosen and v in chosen:
            if edge_id not in orientation:
                result.add(f"induced edge {edge_id} ({u},{v}) is unoriented")
                continue
            head = orientation[edge_id]
            tail = u if head == v else v
            outdegree[tail] = outdegree.get(tail, 0) + 1
    for node, degree in outdegree.items():
        if degree > k:
            result.add(f"node {node} has outdegree {degree} > k = {k}")
    return result


def verify_k_degree_dominating_set(
    graph: Graph, selected: Iterable[int], k: int
) -> VerificationResult:
    """k-degree dominating set: S dominates and G[S] has max degree <= k."""
    chosen = set(selected)
    result = verify_dominating_set(graph, chosen)
    induced_degree = {node: 0 for node in chosen}
    for _, u, v in graph.edges():
        if u in chosen and v in chosen:
            induced_degree[u] += 1
            induced_degree[v] += 1
    for node, degree in induced_degree.items():
        if degree > k:
            result.add(f"node {node} has induced degree {degree} > k = {k}")
    return result


# ---------------------------------------------------------------------------
# Colorings
# ---------------------------------------------------------------------------

def verify_proper_coloring(graph: Graph, colors: list) -> VerificationResult:
    """Adjacent nodes get distinct colors."""
    result = VerificationResult()
    if len(colors) != graph.n:
        result.add(f"expected {graph.n} colors, got {len(colors)}")
        return result
    for _, u, v in graph.edges():
        if colors[u] == colors[v]:
            result.add(f"edge ({u},{v}) is monochromatic with color {colors[u]}")
    return result


def verify_defective_coloring(
    graph: Graph, colors: list, defect: int
) -> VerificationResult:
    """Each color class induces maximum degree at most ``defect``."""
    result = VerificationResult()
    if len(colors) != graph.n:
        result.add(f"expected {graph.n} colors, got {len(colors)}")
        return result
    same_color_degree = [0] * graph.n
    for _, u, v in graph.edges():
        if colors[u] == colors[v]:
            same_color_degree[u] += 1
            same_color_degree[v] += 1
    for node, degree in enumerate(same_color_degree):
        if degree > defect:
            result.add(
                f"node {node} has {degree} same-color neighbors > defect {defect}"
            )
    return result


def verify_arbdefective_coloring(
    graph: Graph,
    colors: list,
    orientation: Mapping[int, int],
    defect: int,
) -> VerificationResult:
    """Each color class, under ``orientation``, has outdegree <= defect.

    ``orientation`` maps monochromatic edge ids to their head node.
    """
    result = VerificationResult()
    if len(colors) != graph.n:
        result.add(f"expected {graph.n} colors, got {len(colors)}")
        return result
    result.merge(_orientation_heads(graph, orientation))
    outdegree = [0] * graph.n
    for edge_id, u, v in graph.edges():
        if colors[u] != colors[v]:
            continue
        if edge_id not in orientation:
            result.add(f"monochromatic edge {edge_id} ({u},{v}) is unoriented")
            continue
        head = orientation[edge_id]
        tail = u if head == v else v
        outdegree[tail] += 1
    for node, degree in enumerate(outdegree):
        if degree > defect:
            result.add(f"node {node} has outdegree {degree} > defect {defect}")
    return result


# ---------------------------------------------------------------------------
# Generic LCL labelings
# ---------------------------------------------------------------------------

def verify_lcl(
    graph: Graph,
    problem: Problem,
    labeling: Mapping[tuple[int, int], object],
    *,
    skip_non_full_degree_nodes: bool = False,
) -> VerificationResult:
    """Check a half-edge labeling against a (Sigma, N, E) problem.

    ``labeling`` maps ``(node, port)`` to a label.  Every node's
    multiset of incident labels must be an allowed node configuration
    and every edge's label pair an allowed edge configuration
    (Sec. 2.2).  With ``skip_non_full_degree_nodes`` the node
    constraint is only enforced at nodes of degree exactly
    ``problem.delta`` — used on truncated regular trees, where leaves
    stand in for continuing branches of the infinite tree.
    """
    result = VerificationResult()
    for node in range(graph.n):
        degree = graph.degree(node)
        labels = []
        missing = False
        for port in range(degree):
            if (node, port) not in labeling:
                result.add(f"half-edge ({node}, {port}) is unlabeled")
                missing = True
            else:
                labels.append(labeling[(node, port)])
        if missing:
            continue
        if degree != problem.delta:
            if not skip_non_full_degree_nodes:
                result.add(
                    f"node {node} has degree {degree} != delta {problem.delta}"
                )
            continue
        if Configuration(labels) not in problem.node_constraint:
            rendered = Configuration(labels).render()
            result.add(f"node {node} outputs disallowed configuration {rendered}")
    for edge_id, u, v in graph.edges():
        port_u = graph.endpoints(edge_id)[1]
        port_v = graph.endpoints(edge_id)[3]
        if (u, port_u) not in labeling or (v, port_v) not in labeling:
            continue  # already reported above
        pair = (labeling[(u, port_u)], labeling[(v, port_v)])
        if not problem.edge_constraint.allows(pair):
            result.add(
                f"edge ({u},{v}) carries disallowed pair "
                f"{Configuration(pair).render()}"
            )
    return result
