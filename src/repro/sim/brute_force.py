"""Brute-force decision of deterministic PN solvability on an instance.

A deterministic t-round PN algorithm is a function from radius-t views
to port-labeled outputs; on a *fixed* graph it therefore assigns one
output per view class (:func:`repro.sim.views.view_classes`).  For
small instances the space of such assignments can be searched
exhaustively, deciding exactly whether *any* deterministic t-round
algorithm solves the problem on that instance.

Two take-aways the tests establish:

* On the symmetric-port Cayley instances, all nodes share one view
  class at every radius, so any problem whose node configurations all
  contain a non-self-compatible label is unsolvable *for every t* —
  the engine-level Lemma 12 argument, replayed on an actual network.
* On instances with richer view structure (paths, trees), solvability
  kicks in at the radius where the classes separate enough, giving a
  concrete feel for "t rounds buy t-radius information".
"""

from __future__ import annotations

import itertools

from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.robustness import budget as _budget
from repro.robustness.errors import BudgetExceeded
from repro.sim.graph import Graph
from repro.sim.verifiers import verify_lcl
from repro.sim.views import view_classes


def class_output_options(problem: Problem, degree: int) -> list[tuple]:
    """All ordered port labelings a node of ``degree`` may output.

    For full-degree nodes these are the permutations of allowed node
    configurations; the search treats lower-degree nodes as
    unconstrained on the node side (their edges still count), matching
    the truncated-tree reading used everywhere else.
    """
    options: set[tuple] = set()
    if degree == problem.delta:
        for configuration in problem.node_constraint.configurations:
            for order in set(itertools.permutations(configuration.items)):  # reprolint: disable=RL002 -- dedup only; options is a set and the return is sorted(options)
                options.add(order)
    else:
        labels = sorted(problem.alphabet, key=str)
        for order in itertools.product(labels, repeat=degree):
            options.add(order)
    return sorted(options)


def uniform_algorithm_exists(
    problem: Problem, graph: Graph, radius: int, limit: int = 2_000_000
) -> bool:
    """Whether some deterministic ``radius``-round PN algorithm solves
    ``problem`` on ``graph``.

    Exhaustive search over per-view-class outputs with a work ``limit``
    guard (raises :class:`BudgetExceeded` — still a ``RuntimeError`` —
    beyond it rather than silently degrading to a heuristic).  An
    ambient :class:`~repro.robustness.budget.Budget` further tightens
    the limit through ``max_configurations`` and is checkpointed once
    per tried assignment, so wall-clock budgets and fault injection
    reach into this loop.
    """
    classes = view_classes(graph, radius)
    class_of_node: dict[int, int] = {}
    for index, group in enumerate(classes):
        for node in group:
            class_of_node[node] = index
    degree_of_class = [graph.degree(group[0]) for group in classes]
    options = [
        class_output_options(problem, degree) for degree in degree_of_class
    ]
    active = _budget.current_budget()
    if active is not None and active.max_configurations is not None:
        limit = min(limit, active.max_configurations)
    total = 1
    for choice in options:
        total *= max(len(choice), 1)
        if total > limit:
            raise BudgetExceeded(
                f"search space {total}+ exceeds the limit {limit}",
                search_space=total,
                limit=limit,
                view_classes=len(classes),
                radius=radius,
            )
    tried = 0
    for assignment in itertools.product(*options):
        tried += 1
        _budget.checkpoint(
            phase="brute-force", assignments_tried=tried, radius=radius
        )
        labeling = {}
        for node in range(graph.n):
            output = assignment[class_of_node[node]]
            for port, label in enumerate(output):
                labeling[(node, port)] = label
        if verify_lcl(
            graph, problem, labeling, skip_non_full_degree_nodes=True
        ).ok:
            return True
    return False


def solvability_radius(
    problem: Problem, graph: Graph, max_radius: int = 3
) -> int | None:
    """The smallest radius at which a uniform algorithm exists, if any."""
    for radius in range(max_radius + 1):
        if uniform_algorithm_exists(problem, graph, radius):
            return radius
    return None


def witness_labeling(
    problem: Problem, graph: Graph, radius: int
) -> dict[tuple[int, int], object] | None:
    """A solving per-class labeling, or ``None`` (same search as above)."""
    classes = view_classes(graph, radius)
    class_of_node: dict[int, int] = {}
    for index, group in enumerate(classes):
        for node in group:
            class_of_node[node] = index
    options = [
        class_output_options(problem, graph.degree(group[0])) for group in classes
    ]
    tried = 0
    for assignment in itertools.product(*options):
        tried += 1
        _budget.checkpoint(
            phase="witness-search", assignments_tried=tried, radius=radius
        )
        labeling = {}
        for node in range(graph.n):
            output = assignment[class_of_node[node]]
            for port, label in enumerate(output):
                labeling[(node, port)] = label
        if verify_lcl(
            graph, problem, labeling, skip_non_full_degree_nodes=True
        ).ok:
            return labeling
    return None


def impossible_for_every_radius(problem: Problem, graph: Graph) -> bool:
    """A sufficient condition for unsolvability at *all* radii.

    If the graph has a color- and port-preserving transitive symmetry
    (one view class at some radius >= its diameter is a certificate we
    approximate by checking radius = n, clamped), every deterministic
    PN algorithm labels all nodes identically; if additionally every
    allowed node configuration contains a label not compatible with
    itself, some edge always breaks (the Lemma 12 argument).
    """
    # One view class at radius n implies one class at every radius.
    if len(view_classes(graph, min(graph.n, 6))) != 1:
        return False
    self_compatible = problem.self_compatible_labels()
    return all(
        not configuration.support() <= self_compatible
        for configuration in problem.node_constraint.configurations
    )
