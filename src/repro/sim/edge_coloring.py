"""Proper edge colorings and the coloring-aligned port numbering.

The paper's lower bound holds *even when* nodes receive a proper
Delta-edge coloring as input; the proof in fact exploits it (Lemma 9).
Trees are Class 1, so a Delta-edge coloring always exists and a rooted
sweep finds one.  :func:`ports_from_edge_coloring` rebuilds the port
numbering so that every edge's color equals its port at both endpoints,
producing exactly the instances of Lemmas 12 and 15.
"""

from __future__ import annotations

from repro.sim.graph import Graph
from repro.robustness.errors import InvalidGraph


def tree_edge_coloring(graph: Graph, colors: int | None = None) -> Graph:
    """Color the edges of a tree properly with ``max_degree`` colors.

    Root the tree at node 0 and sweep down: each node assigns to its
    child edges the colors ``0 .. delta-1`` minus the color of its
    parent edge, round-robin.  Mutates and returns ``graph``.
    """
    if not graph.is_tree():
        raise InvalidGraph("tree_edge_coloring needs a tree")
    palette = colors if colors is not None else max(graph.max_degree(), 1)
    if palette < graph.max_degree():
        raise InvalidGraph(
            f"{palette} colors cannot properly color a tree of max degree "
            f"{graph.max_degree()}"
        )
    parent_color = {0: None}
    queue = [0]
    seen = {0}
    while queue:
        node = queue.pop()
        next_color = 0
        for half in graph.half_edges(node):
            if half.neighbor in seen:
                continue
            while next_color == parent_color[node]:
                next_color += 1
            graph.set_edge_color(half.edge_id, next_color % palette)
            parent_color[half.neighbor] = next_color % palette
            next_color += 1
            seen.add(half.neighbor)
            queue.append(half.neighbor)
    return graph


def greedy_edge_coloring(graph: Graph) -> Graph:
    """Properly color any graph's edges greedily.

    Uses at most ``2 * Delta - 1`` colors (first color free at both
    endpoints).  Mutates and returns ``graph``.
    """
    used_at: list[set[int]] = [set() for _ in range(graph.n)]
    for edge_id, u, v in graph.edges():
        color = 0
        while color in used_at[u] or color in used_at[v]:
            color += 1
        graph.set_edge_color(edge_id, color)
        used_at[u].add(color)
        used_at[v].add(color)
    return graph


def is_proper_edge_coloring(graph: Graph) -> bool:
    """Whether all edges are colored and no node repeats a color."""
    if not graph.is_fully_colored():
        return False
    for node in range(graph.n):
        colors = [graph.color_at(node, port) for port in range(graph.degree(node))]
        if len(set(colors)) != len(colors):
            return False
    return True


def ports_from_edge_coloring(graph: Graph) -> Graph:
    """Renumber ports so that port == edge color at both endpoints.

    Requires a proper edge coloring whose colors, at every node, form a
    prefix-compatible set: each node of degree d must see colors that
    are exactly ``{0, .., d-1}`` (true for regular graphs colored with
    Delta colors).  Returns a new graph; this is the adversarial port
    assignment of Lemma 12.
    """
    if not is_proper_edge_coloring(graph):
        raise InvalidGraph("needs a proper edge coloring")
    port_maps: list[dict[int, int]] = []
    for node in range(graph.n):
        degree = graph.degree(node)
        mapping = {
            port: graph.color_at(node, port) for port in range(degree)
        }
        if set(mapping.values()) != set(range(degree)):
            raise InvalidGraph(
                f"node {node} sees colors {sorted(set(mapping.values()))}, "
                f"expected exactly 0..{degree - 1}"
            )
        port_maps.append(mapping)
    return graph.with_ports(port_maps)
