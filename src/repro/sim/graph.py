"""Port-numbered graphs (paper, Sec. 2.1).

Nodes are ``0 .. n-1``.  Every node numbers its incident edges with
ports ``0 .. deg(v)-1`` (the paper uses 1-based ports; 0-based is an
implementation convenience).  Each edge has an integer id, an optional
color (for the Delta-edge-coloring input the paper exploits), and the
two endpoints know each other's port, which matches the paper's
technical convention that edges carry a port numbering as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator
from repro.robustness.errors import InvalidGraph


@dataclass(frozen=True)
class HalfEdge:
    """What a node sees through one of its ports."""

    neighbor: int
    neighbor_port: int
    edge_id: int


class Graph:
    """A simple undirected graph with port numbers and edge colors."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise InvalidGraph("a graph needs at least one node")
        self._n = n
        self._adjacency: list[list[HalfEdge]] = [[] for _ in range(n)]
        self._endpoints: list[tuple[int, int, int, int]] = []  # u, pu, v, pv
        self._colors: list[int | None] = []

    # -- construction -------------------------------------------------

    def add_edge(self, u: int, v: int, color: int | None = None) -> int:
        """Add the edge {u, v}; ports are assigned first-free.

        Returns the edge id.  Self-loops and duplicate edges are
        rejected (the formalism works on simple graphs).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise InvalidGraph(f"self-loop at node {u}")
        if any(half.neighbor == v for half in self._adjacency[u]):
            raise InvalidGraph(f"duplicate edge {{{u}, {v}}}")
        edge_id = len(self._endpoints)
        port_u = len(self._adjacency[u])
        port_v = len(self._adjacency[v])
        self._adjacency[u].append(HalfEdge(v, port_v, edge_id))
        self._adjacency[v].append(HalfEdge(u, port_u, edge_id))
        self._endpoints.append((u, port_u, v, port_v))
        self._colors.append(color)
        return edge_id

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from an edge list."""
        graph = cls(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise InvalidGraph(f"node {node} out of range [0, {self._n})")

    # -- basic queries ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._endpoints)

    def degree(self, node: int) -> int:
        """Number of incident edges of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        """The maximum degree Delta of the graph."""
        return max(len(half_edges) for half_edges in self._adjacency)

    def half_edges(self, node: int) -> list[HalfEdge]:
        """The half-edges of ``node``, indexed by port."""
        self._check_node(node)
        return list(self._adjacency[node])

    def neighbor(self, node: int, port: int) -> int:
        """The node at the other end of ``port``."""
        return self._half(node, port).neighbor

    def neighbors(self, node: int) -> list[int]:
        """All adjacent nodes, in port order."""
        self._check_node(node)
        return [half.neighbor for half in self._adjacency[node]]

    def port_to(self, node: int, neighbor: int) -> int:
        """The port of ``node`` leading to ``neighbor``."""
        for port, half in enumerate(self._adjacency[node]):
            if half.neighbor == neighbor:
                return port
        raise InvalidGraph(f"{neighbor} is not adjacent to {node}")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether {u, v} is an edge."""
        self._check_node(u)
        return any(half.neighbor == v for half in self._adjacency[u])

    def edge_id(self, node: int, port: int) -> int:
        """The id of the edge behind ``port`` of ``node``."""
        return self._half(node, port).edge_id

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(edge_id, u, v)`` for every edge."""
        for edge_id, (u, _, v, _) in enumerate(self._endpoints):
            yield edge_id, u, v

    def endpoints(self, edge_id: int) -> tuple[int, int, int, int]:
        """``(u, port_u, v, port_v)`` of the edge."""
        return self._endpoints[edge_id]

    def _half(self, node: int, port: int) -> HalfEdge:
        self._check_node(node)
        adjacency = self._adjacency[node]
        if not 0 <= port < len(adjacency):
            raise InvalidGraph(f"port {port} out of range for node {node}")
        return adjacency[port]

    # -- edge colors ----------------------------------------------------

    def set_edge_color(self, edge_id: int, color: int) -> None:
        """Assign a color to the edge (the Delta-edge-coloring input)."""
        self._colors[edge_id] = color

    def edge_color(self, edge_id: int) -> int | None:
        """The color of the edge, or ``None`` if uncolored."""
        return self._colors[edge_id]

    def color_at(self, node: int, port: int) -> int | None:
        """The color of the edge behind ``port`` of ``node``."""
        return self._colors[self._half(node, port).edge_id]

    def is_fully_colored(self) -> bool:
        """Whether every edge has a color."""
        return all(color is not None for color in self._colors)

    # -- port permutation ----------------------------------------------

    def with_ports(self, port_maps: list[dict[int, int]]) -> "Graph":
        """A copy with ports permuted per node.

        ``port_maps[v]`` maps old ports of ``v`` to new ports and must
        be a permutation of ``0 .. deg(v)-1``.
        """
        if len(port_maps) != self._n:
            raise InvalidGraph("need one port map per node")
        for node, port_map in enumerate(port_maps):
            expected = set(range(self.degree(node)))
            if set(port_map) != expected or set(port_map.values()) != expected:
                raise InvalidGraph(f"port map of node {node} is not a permutation")
        graph = Graph(self._n)
        graph._adjacency = [
            [HalfEdge(0, 0, 0)] * self.degree(node) for node in range(self._n)
        ]
        for edge_id, (u, pu, v, pv) in enumerate(self._endpoints):
            new_pu = port_maps[u][pu]
            new_pv = port_maps[v][pv]
            graph._adjacency[u][new_pu] = HalfEdge(v, new_pv, edge_id)
            graph._adjacency[v][new_pv] = HalfEdge(u, new_pu, edge_id)
            graph._endpoints.append((u, new_pu, v, new_pv))
            graph._colors.append(self._colors[edge_id])
        return graph

    # -- structure checks ------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected."""
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for half in self._adjacency[node]:
                if half.neighbor not in seen:
                    seen.add(half.neighbor)
                    stack.append(half.neighbor)
        return len(seen) == self._n

    def is_tree(self) -> bool:
        """Whether the graph is a tree."""
        return self.m == self._n - 1 and self.is_connected()

    def is_regular(self, delta: int | None = None) -> bool:
        """Whether every node has the same degree (``delta`` if given)."""
        degrees = {len(half_edges) for half_edges in self._adjacency}
        if len(degrees) != 1:
            return False
        if delta is None:
            return True
        return degrees == {delta}

    def girth(self) -> float:
        """Length of the shortest cycle (``inf`` for forests).

        BFS from every node; O(n * m), fine for test-sized graphs.
        """
        best = float("inf")
        for root in range(self._n):
            distance = {root: 0}
            parent_edge = {root: -1}
            queue = [root]
            while queue:
                next_queue = []
                for node in queue:
                    for half in self._adjacency[node]:
                        if half.edge_id == parent_edge[node]:
                            continue
                        if half.neighbor in distance:
                            cycle = distance[node] + distance[half.neighbor] + 1
                            best = min(best, cycle)
                        else:
                            distance[half.neighbor] = distance[node] + 1
                            parent_edge[half.neighbor] = half.edge_id
                            next_queue.append(half.neighbor)
                queue = next_queue
        return best
