"""Resource budgets and the cooperative checkpoint protocol.

A :class:`Budget` bounds the four resources that round elimination can
exhaust: wall-clock time, alphabet size, configuration counts inside
the maximization searches, and chain length in the Lemma 13 sequence.
The engine's hot loops call the module-level :func:`checkpoint` /
``check_*`` helpers, which consult the *ambient* budget installed by
the :func:`governed` context manager — so deep search code does not
need a budget parameter threaded through every signature, and runs
without a budget pay only a context-variable read.

A budget is also the engine's fault-injection surface: the optional
``probe`` callable fires at every checkpoint with the checkpoint's
context dict, letting the test harness (``tests/faults.py``) raise at
the Nth checkpoint to simulate a kill mid-run.

Observability: every checkpoint increments the ambient trace counter
``budget.checkpoints`` (a no-op without a tracer), every budget trip
emits a ``budget.trip`` span event before raising, and a tracer
constructed with ``trace_checkpoints=True`` additionally gets one
``budget.checkpoint`` event per cooperative checkpoint — off by
default because checkpoints fire per DFS node and would dominate the
trace.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.observability import trace as _trace
from repro.robustness.errors import AlphabetExplosion, BudgetExceeded


@dataclass
class Budget:
    """Resource limits for one governed computation.

    ``None`` for any field means "unlimited".  The object is mutable
    bookkeeping (started clock, checkpoint count); create a fresh one
    per run.

    Attributes:
        wall_clock_seconds: hard cap on elapsed time, checked at every
            cooperative checkpoint.
        max_alphabet: cap on the label count a round-elimination step
            may produce (:meth:`check_alphabet` raises
            :class:`AlphabetExplosion` beyond it).
        max_configurations: cap on intermediate configuration /
            closed-set counts inside the maximization searches and on
            brute-force search spaces.
        max_chain_steps: cap on Lemma 13 chain length.
        max_shard_bytes: aggregate cap on the size estimates of shards
            the parallel kernel admits in flight at once (the
            memory-accounting budget of
            :mod:`repro.core.kernel.sharding`); enforced by admission,
            not by raising.
        max_shard_retries: per-shard retry cap before the shard
            scheduler degrades (split, then serial fallback).  A
            :class:`ShardPolicy` with an explicit value wins over this.
        probe: optional callable invoked with the context dict at every
            checkpoint — the fault-injection hook.
    """

    wall_clock_seconds: float | None = None
    max_alphabet: int | None = None
    max_configurations: int | None = None
    max_chain_steps: int | None = None
    max_shard_bytes: int | None = None
    max_shard_retries: int | None = None
    probe: Callable[[dict], None] | None = None
    _started_at: float | None = field(
        default=None, repr=False, compare=False
    )
    _checkpoints: int = field(default=0, repr=False, compare=False)

    def start(self) -> "Budget":
        """Start (or restart) the wall clock; returns ``self``."""
        self._started_at = time.monotonic()
        self._checkpoints = 0
        return self

    @property
    def checkpoints_passed(self) -> int:
        """How many cooperative checkpoints this budget has seen."""
        return self._checkpoints

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def checkpoint(self, **context: object) -> None:
        """One cooperative yield point inside a hot loop.

        Fires the ``probe`` (fault injection), then enforces the wall
        clock.  Raises :class:`BudgetExceeded` with the merged context
        when the clock has run out.
        """
        self._checkpoints += 1
        tracer = _trace.active_tracer()
        if tracer is not None:
            tracer.add("budget.checkpoints")
            if tracer.trace_checkpoints:
                tracer.event("budget.checkpoint", **context)
        if self.probe is not None:
            probe_context = dict(context)
            probe_context.setdefault("checkpoint", self._checkpoints)
            self.probe(probe_context)
        if self.wall_clock_seconds is not None:
            if self._started_at is None:
                self.start()
            elapsed = self.elapsed()
            if elapsed > self.wall_clock_seconds:
                _trace.event(
                    "budget.trip", resource="wall_clock",
                    elapsed_seconds=round(elapsed, 3), **context,
                )
                raise BudgetExceeded(
                    "wall-clock budget exhausted",
                    elapsed_seconds=round(elapsed, 3),
                    budget_seconds=self.wall_clock_seconds,
                    **context,
                )

    def check_alphabet(self, size: int, **context: object) -> None:
        """Checkpoint plus the alphabet-size limit."""
        self.checkpoint(alphabet_size=size, **context)
        if self.max_alphabet is not None and size > self.max_alphabet:
            _trace.event(
                "budget.trip", resource="alphabet", alphabet_size=size, **context
            )
            raise AlphabetExplosion(
                "alphabet budget exceeded",
                alphabet_size=size,
                max_alphabet=self.max_alphabet,
                elapsed_seconds=round(self.elapsed(), 3),
                **context,
            )

    def check_configurations(self, count: int, **context: object) -> None:
        """Checkpoint plus the intermediate-configuration limit."""
        self.checkpoint(configurations=count, **context)
        if self.max_configurations is not None and count > self.max_configurations:
            _trace.event(
                "budget.trip", resource="configurations",
                configurations=count, **context,
            )
            raise BudgetExceeded(
                "configuration budget exceeded",
                configurations=count,
                max_configurations=self.max_configurations,
                elapsed_seconds=round(self.elapsed(), 3),
                **context,
            )

    def check_chain_step(self, index: int, **context: object) -> None:
        """Checkpoint plus the chain-length limit."""
        self.checkpoint(step=index, **context)
        if self.max_chain_steps is not None and index >= self.max_chain_steps:
            _trace.event(
                "budget.trip", resource="chain_steps", step=index, **context
            )
            raise BudgetExceeded(
                "chain-step budget exceeded",
                step=index,
                max_chain_steps=self.max_chain_steps,
                elapsed_seconds=round(self.elapsed(), 3),
                **context,
            )


_ACTIVE: ContextVar[Budget | None] = ContextVar(
    "repro_active_budget", default=None
)


def current_budget() -> Budget | None:
    """The ambient budget installed by :func:`governed`, if any."""
    return _ACTIVE.get()


@contextmanager
def governed(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for the enclosed block.

    ``governed(None)`` is a no-op, so call sites can pass an optional
    budget straight through.  Nesting is fine; the innermost budget
    wins, and the previous one is restored on exit.
    """
    if budget is None:
        yield None
        return
    if budget._started_at is None:
        budget.start()
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)


def checkpoint(**context: object) -> None:
    """Cooperative checkpoint against the ambient budget (if any)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.checkpoint(**context)


def check_alphabet(size: int, **context: object) -> None:
    """Ambient-budget alphabet check (no-op without a budget)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_alphabet(size, **context)


def check_configurations(count: int, **context: object) -> None:
    """Ambient-budget configuration-count check (no-op without one)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_configurations(count, **context)


def check_chain_step(index: int, **context: object) -> None:
    """Ambient-budget chain-step check (no-op without a budget)."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_chain_step(index, **context)


__all__ = [
    "Budget",
    "governed",
    "current_budget",
    "checkpoint",
    "check_alphabet",
    "check_configurations",
    "check_chain_step",
]
