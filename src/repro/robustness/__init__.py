"""Resource-governed execution for the round-elimination engine.

Round elimination grows problem descriptions doubly exponentially in
the worst case (paper, Sec. 1.2); serving it at production scale needs
explicit defenses.  This package provides them:

``repro.robustness.errors``
    The typed failure hierarchy — :class:`ReproError` and its
    subclasses, each carrying structured context (step index, alphabet
    size, elapsed time).
``repro.robustness.budget``
    :class:`Budget` objects (wall clock, alphabet, configurations,
    chain steps) with a cooperative :func:`checkpoint` protocol threaded
    through the engine's hot loops, plus the :func:`governed` ambient
    installer.
``repro.robustness.checkpointing``
    :class:`CheckpointStore` — atomic, integrity-sealed JSON stages on
    disk, so killed runs resume from the last completed step.
``repro.robustness.degradation``
    Graceful degradation: when the alphabet budget trips mid-step,
    shrink the problem via the paper's own medicine (equivalence
    merging, label removal — the Lemma 9 motivation) and record every
    rung as auditable provenance.

``errors`` imports nothing at all and is safe to import from anywhere
— including :mod:`repro.observability.schema`, which sits *below*
``budget`` (budget emits trace counters).  Everything except ``errors``
is therefore loaded lazily here: eagerly importing ``budget`` from this
package initializer would close the cycle
``observability.schema -> robustness -> budget -> observability.trace``.
"""

from repro.robustness.errors import (
    AlphabetExplosion,
    BudgetExceeded,
    CheckpointCorrupt,
    EngineMisuse,
    InvalidGraph,
    InvalidProblem,
    InvalidTrace,
    ReproError,
    RetryExhausted,
    SimplificationFailed,
)

_LAZY = {
    "Budget": ("repro.robustness.budget", "Budget"),
    "governed": ("repro.robustness.budget", "governed"),
    "current_budget": ("repro.robustness.budget", "current_budget"),
    "checkpoint": ("repro.robustness.budget", "checkpoint"),
    "check_alphabet": ("repro.robustness.budget", "check_alphabet"),
    "check_configurations": (
        "repro.robustness.budget",
        "check_configurations",
    ),
    "check_chain_step": ("repro.robustness.budget", "check_chain_step"),
    "CheckpointStore": ("repro.robustness.checkpointing", "CheckpointStore"),
    "DegradationEvent": ("repro.robustness.degradation", "DegradationEvent"),
    "GovernedSpeedup": ("repro.robustness.degradation", "GovernedSpeedup"),
    "GovernedTrajectory": (
        "repro.robustness.degradation",
        "GovernedTrajectory",
    ),
    "governed_speedup": ("repro.robustness.degradation", "governed_speedup"),
    "governed_iterate": ("repro.robustness.degradation", "governed_iterate"),
    "shrink_once": ("repro.robustness.degradation", "shrink_once"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


__all__ = [
    "ReproError",
    "InvalidProblem",
    "SimplificationFailed",
    "BudgetExceeded",
    "AlphabetExplosion",
    "CheckpointCorrupt",
    "EngineMisuse",
    "InvalidGraph",
    "InvalidTrace",
    "RetryExhausted",
    *sorted(_LAZY),
]
