"""Resource-governed execution for the round-elimination engine.

Round elimination grows problem descriptions doubly exponentially in
the worst case (paper, Sec. 1.2); serving it at production scale needs
explicit defenses.  This package provides them:

``repro.robustness.errors``
    The typed failure hierarchy — :class:`ReproError` and its
    subclasses, each carrying structured context (step index, alphabet
    size, elapsed time).
``repro.robustness.budget``
    :class:`Budget` objects (wall clock, alphabet, configurations,
    chain steps) with a cooperative :func:`checkpoint` protocol threaded
    through the engine's hot loops, plus the :func:`governed` ambient
    installer.
``repro.robustness.checkpointing``
    :class:`CheckpointStore` — atomic, integrity-sealed JSON stages on
    disk, so killed runs resume from the last completed step.
``repro.robustness.degradation``
    Graceful degradation: when the alphabet budget trips mid-step,
    shrink the problem via the paper's own medicine (equivalence
    merging, label removal — the Lemma 9 motivation) and record every
    rung as auditable provenance.

``errors`` and ``budget`` import nothing from the engine and are safe
to import from anywhere in ``repro.core``; ``checkpointing`` and
``degradation`` sit above the core and are loaded lazily here to keep
the layering acyclic.
"""

from repro.robustness.budget import (
    Budget,
    check_alphabet,
    check_chain_step,
    check_configurations,
    checkpoint,
    current_budget,
    governed,
)
from repro.robustness.errors import (
    AlphabetExplosion,
    BudgetExceeded,
    CheckpointCorrupt,
    InvalidProblem,
    ReproError,
    SimplificationFailed,
)

_LAZY = {
    "CheckpointStore": ("repro.robustness.checkpointing", "CheckpointStore"),
    "DegradationEvent": ("repro.robustness.degradation", "DegradationEvent"),
    "GovernedSpeedup": ("repro.robustness.degradation", "GovernedSpeedup"),
    "GovernedTrajectory": (
        "repro.robustness.degradation",
        "GovernedTrajectory",
    ),
    "governed_speedup": ("repro.robustness.degradation", "governed_speedup"),
    "governed_iterate": ("repro.robustness.degradation", "governed_iterate"),
    "shrink_once": ("repro.robustness.degradation", "shrink_once"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


__all__ = [
    "ReproError",
    "InvalidProblem",
    "SimplificationFailed",
    "BudgetExceeded",
    "AlphabetExplosion",
    "CheckpointCorrupt",
    "Budget",
    "governed",
    "current_budget",
    "checkpoint",
    "check_alphabet",
    "check_configurations",
    "check_chain_step",
    *sorted(_LAZY),
]
