"""The typed failure hierarchy of the engine.

Round elimination is explosive by nature: one ``Rbar(R(.))`` step can
grow the alphabet doubly exponentially (paper, Sec. 1.2), and the
surrounding search procedures (closed-set frontiers, maximization DFS,
brute-force solvability) inherit that blow-up.  When something gives
way, callers need to know *what* gave way and *where* — a bare
``ValueError`` thrown from five frames inside a maximization loop is
useless to a CLI, a batch scheduler, or a resume-from-checkpoint
driver.

Every exception here derives from :class:`ReproError` and carries a
structured ``context`` dict (step index, alphabet size, elapsed time,
...) alongside the rendered message.  The hierarchy deliberately
double-inherits from the builtin types it replaces so that existing
``except ValueError`` / ``except RuntimeError`` call sites keep
working:

* :class:`InvalidProblem` (also a ``ValueError``) — a problem
  description is malformed or degenerate: labels outside the alphabet,
  mismatched arities, duplicated configurations, or a constraint that
  admits no maximal configuration.
* :class:`SimplificationFailed` (also a ``ValueError``) — the graceful
  degradation ladder (equivalence merging, label removal, the Lemma 9
  style relaxations) ran out of medicine before meeting the budget.
* :class:`BudgetExceeded` (also a ``RuntimeError``) — a cooperative
  :meth:`~repro.robustness.budget.Budget.checkpoint` found a resource
  budget (wall clock, configurations, chain steps) exhausted.
* :class:`AlphabetExplosion` — the specific, most common budget trip:
  a round-elimination step produced more labels than allowed.
* :class:`CheckpointCorrupt` — a checkpoint file on disk failed its
  integrity seal or did not parse; resume logic treats this as "start
  from scratch", never as data.
* :class:`EngineMisuse` (also a ``ValueError``) — the caller asked for
  an engine flag combination that does not exist, such as parallel
  workers on the reference engine, or otherwise passed arguments no
  engine configuration can satisfy.
* :class:`InvalidGraph` (also a ``ValueError``) — a simulator-side
  input is malformed: a graph with self-loops or broken port maps, a
  non-tree where a tree is required, or generator parameters that no
  graph realizes.
* :class:`InvalidTrace` (also a ``ValueError``) — a trace file or
  record violates the versioned JSON-lines schema of
  :mod:`repro.observability.schema`.
* :class:`InvalidScenario` (also a ``ValueError``) — a declarative
  scenario spec (:mod:`repro.scenarios`) failed to parse, or names a
  problem family, operator, or parameter set the loaders reject.
* :class:`RetryExhausted` (a :class:`BudgetExceeded`, hence also a
  ``RuntimeError``) — a bounded retry or round loop ran out of
  attempts: the configuration-model generator found no simple graph,
  or a simulated algorithm did not halt within ``max_rounds``.
* :class:`InvalidJobRequest` (also a ``ValueError``) — a service job
  submission (:mod:`repro.service`) is malformed: unknown keys, a
  missing problem, an operator/policy/engine the wire format does not
  admit, or invalid budget fields.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class of all typed engine failures.

    Attributes:
        message: the human-readable summary, without the context suffix.
        context: structured key/value details (step, alphabet_size,
            elapsed, ...) for programmatic callers and the CLI.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        self.message = message
        self.context = dict(context)
        rendered = message
        if self.context:
            details = ", ".join(
                f"{key}={value}" for key, value in sorted(self.context.items())
            )
            rendered = f"{message} [{details}]" if message else f"[{details}]"
        super().__init__(rendered)


class InvalidProblem(ReproError, ValueError):
    """A problem description is malformed or degenerate."""


class SimplificationFailed(ReproError, ValueError):
    """Graceful degradation could not shrink a problem far enough."""


class BudgetExceeded(ReproError, RuntimeError):
    """A cooperative checkpoint found a resource budget exhausted."""


class AlphabetExplosion(BudgetExceeded):
    """A round-elimination step outgrew the alphabet budget."""


class CheckpointCorrupt(ReproError):
    """A checkpoint file failed its integrity seal or did not parse."""


class EngineMisuse(ReproError, ValueError):
    """An invalid engine flag combination was requested by the caller."""


class InvalidGraph(ReproError, ValueError):
    """A simulator input graph, labeling, or generator request is malformed."""


class InvalidTrace(ReproError, ValueError):
    """A trace record or file violates the JSON-lines trace schema."""


class InvalidScenario(ReproError, ValueError):
    """A scenario spec is malformed, or names an unknown family/operator.

    Raised by :mod:`repro.scenarios` when a ``.scn`` file fails to
    parse, references a problem family or chain operator the loader
    does not know, or carries parameters the family builder rejects.
    """


class RetryExhausted(BudgetExceeded):
    """A bounded retry or round loop ran out of attempts.

    The shard scheduler (:mod:`repro.core.kernel.sharding`) raises this
    only after its whole degradation ladder failed — backoff retries,
    shard splits, and the in-parent serial fallback — so catching it
    means the work itself is broken, not just one worker process.
    """


class InvalidJobRequest(ReproError, ValueError):
    """A service job request is malformed.

    Raised by :mod:`repro.service.wire` when a submitted job document
    is not valid JSON-shaped data, mixes a scenario name with an inline
    problem, names an unknown operator/policy/engine, or carries budget
    fields no :class:`~repro.robustness.budget.Budget` accepts.  The
    HTTP layer renders it as a structured 400 response; it never
    reaches the orchestrator's workers.
    """


__all__ = [
    "ReproError",
    "InvalidProblem",
    "SimplificationFailed",
    "BudgetExceeded",
    "AlphabetExplosion",
    "CheckpointCorrupt",
    "EngineMisuse",
    "InvalidGraph",
    "InvalidTrace",
    "InvalidScenario",
    "RetryExhausted",
    "InvalidJobRequest",
]
