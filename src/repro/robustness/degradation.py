"""Graceful degradation: shrink the problem instead of dying.

The paper's central engineering insight is that round elimination only
stays tractable if problem descriptions are actively kept small — the
Lemma 9 edge-coloring trick exists precisely to collapse the ``C``
label that iterated speedups would otherwise proliferate (Sec. 1.2).
This module applies the same medicine mechanically: when a governed
``Rbar(R(.))`` step trips the alphabet budget, the input problem is
simplified one rung at a time and the step retried, and every rung is
recorded as a :class:`DegradationEvent` so the final artifact is
*auditably weaker* rather than silently wrong.

The ladder, weakest medicine first:

1. ``merge-equivalent-labels`` — collapse interchangeable labels
   (:func:`repro.core.simplify.merge_equivalent_labels`); lossless, the
   result is the same problem up to 0-round relabelings.
2. ``safe-label-removal`` — drop a label certified removable by
   :func:`repro.core.simplify.is_safe_removal` (a stronger label covers
   it w.r.t. both constraints); lossless.
3. ``lossy-label-removal`` — drop the least-used label outright.  The
   restricted problem is *at least as hard* (its solutions solve the
   original), so downstream upper-bound conclusions stay sound, but
   information is genuinely lost; the event is flagged ``LOSSY`` and
   must appear in any certificate built from the result.

The parallel kernel's shard scheduler
(:mod:`repro.core.kernel.sharding`) follows the same
weakest-medicine-first shape for *infrastructure* faults — retry with
backoff, split the shard, fall back to serial — where this module
degrades the *problem* for semantic budget trips.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.core.labels import render_label
from repro.core.problem import Problem
from repro.core.round_elimination import SpeedupResult, speedup
from repro.core.simplify import (
    is_safe_removal,
    merge_equivalent_labels,
    remove_label,
)
from repro.robustness.budget import Budget, governed
from repro.robustness.errors import AlphabetExplosion, SimplificationFailed


@dataclass(frozen=True)
class DegradationEvent:
    """One rung of the degradation ladder, applied and recorded."""

    step: int
    action: str
    detail: str
    lossless: bool
    alphabet_before: int
    alphabet_after: int

    def provenance(self) -> str:
        """The audit-trail line recorded in certificates."""
        kind = "lossless" if self.lossless else "LOSSY"
        return (
            f"degradation[{kind}] step {self.step}: {self.action} "
            f"({self.detail}; alphabet "
            f"{self.alphabet_before} -> {self.alphabet_after})"
        )

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "action": self.action,
            "detail": self.detail,
            "lossless": self.lossless,
            "alphabet_before": self.alphabet_before,
            "alphabet_after": self.alphabet_after,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradationEvent":
        return cls(**payload)


@dataclass
class GovernedSpeedup:
    """A speedup step that may have degraded its input to fit a budget."""

    result: SpeedupResult
    problem_used: Problem
    events: list[DegradationEvent]

    @property
    def problem(self) -> Problem:
        """The resulting problem with compact string labels."""
        return self.result.problem

    @property
    def degraded(self) -> bool:
        return bool(self.events)


def shrink_once(problem: Problem, step: int = 0) -> tuple[Problem, DegradationEvent] | None:
    """Apply the weakest applicable rung of the ladder, once.

    Returns the shrunk problem and the event describing the rung, or
    ``None`` when no rung applies (single-label alphabet, or every
    removal would empty a constraint).
    """
    before = len(problem.alphabet)

    merged = merge_equivalent_labels(problem)
    if len(merged.alphabet) < before:
        return merged, DegradationEvent(
            step=step,
            action="merge-equivalent-labels",
            detail=f"{before - len(merged.alphabet)} label(s) merged",
            lossless=True,
            alphabet_before=before,
            alphabet_after=len(merged.alphabet),
        )

    labels = sorted(problem.alphabet, key=render_label)
    for weak in labels:
        for strong in labels:
            if weak == strong:
                continue
            if is_safe_removal(problem, weak, strong):
                try:
                    shrunk = remove_label(problem, weak)
                except ValueError:
                    continue
                return shrunk, DegradationEvent(
                    step=step,
                    action="safe-label-removal",
                    detail=(
                        f"removed {render_label(weak)} "
                        f"(covered by {render_label(strong)})"
                    ),
                    lossless=True,
                    alphabet_before=before,
                    alphabet_after=len(shrunk.alphabet),
                )

    if before > 1:
        # Lossy fallback: drop the label used by the fewest
        # configurations; ties broken by label name for determinism.
        def usage(label: Hashable) -> tuple:
            count = len(
                problem.node_constraint.configurations_containing(label)
            ) + len(problem.edge_constraint.configurations_containing(label))
            return (count, render_label(label))

        for weak in sorted(labels, key=usage):
            try:
                shrunk = remove_label(problem, weak)
            except ValueError:
                continue
            return shrunk, DegradationEvent(
                step=step,
                action="lossy-label-removal",
                detail=f"removed {render_label(weak)} without a cover",
                lossless=False,
                alphabet_before=before,
                alphabet_after=len(shrunk.alphabet),
            )
    return None


def governed_speedup(
    problem: Problem,
    budget: Budget | None = None,
    *,
    degrade: bool = True,
    step: int = 0,
) -> GovernedSpeedup:
    """One ``Rbar(R(.))`` step under ``budget``, degrading as needed.

    On :class:`AlphabetExplosion` the input problem is shrunk one
    ladder rung at a time and the step retried; each rung is recorded.
    Raises :class:`SimplificationFailed` (carrying the recorded events
    in its context) when the ladder runs dry before the budget is met,
    and re-raises the explosion untouched when ``degrade`` is false.
    """
    events: list[DegradationEvent] = []
    current = problem
    while True:
        try:
            with governed(budget):
                result = speedup(current)
            return GovernedSpeedup(
                result=result, problem_used=current, events=events
            )
        except AlphabetExplosion as explosion:
            if not degrade:
                raise
            rung = shrink_once(current, step=step)
            if rung is None:
                raise SimplificationFailed(
                    "alphabet budget cannot be met by simplification",
                    step=step,
                    alphabet_size=len(current.alphabet),
                    max_alphabet=explosion.context.get("max_alphabet"),
                    degradations=len(events),
                ) from explosion
            current, event = rung
            events.append(event)


@dataclass
class GovernedTrajectory:
    """Iterated governed speedup: the problems visited plus the audit."""

    problems: list[Problem]
    events: list[DegradationEvent]
    reached_fixed_point: bool

    @property
    def steps(self) -> int:
        return len(self.problems) - 1


def governed_iterate(
    problem: Problem,
    max_steps: int = 5,
    budget: Budget | None = None,
    *,
    degrade: bool = True,
) -> GovernedTrajectory:
    """Budget-governed sibling of :func:`repro.core.simplify.iterate_speedup`.

    Each step is a :func:`governed_speedup` followed by equivalence
    merging; degradation events from every step accumulate in order.
    Stops early at an isomorphism fixed point, like the ungoverned
    version.
    """
    problems = [problem]
    events: list[DegradationEvent] = []
    for index in range(max_steps):
        stepped = governed_speedup(
            problems[-1], budget, degrade=degrade, step=index
        )
        events.extend(stepped.events)
        next_problem = merge_equivalent_labels(stepped.problem)
        problems.append(next_problem)
        if next_problem.is_isomorphic(problems[-2]):
            return GovernedTrajectory(
                problems=problems, events=events, reached_fixed_point=True
            )
    return GovernedTrajectory(
        problems=problems, events=events, reached_fixed_point=False
    )


__all__ = [
    "DegradationEvent",
    "GovernedSpeedup",
    "GovernedTrajectory",
    "governed_speedup",
    "governed_iterate",
    "shrink_once",
]
