"""On-disk checkpoint store for restartable computations.

A :class:`CheckpointStore` manages one directory of named stages, each
an atomically written, integrity-sealed JSON file (the primitives live
in :mod:`repro.core.io`).  The contract the engine relies on:

* a kill at any moment leaves either the previous complete checkpoint
  or the new complete checkpoint on disk — never a torn file;
* a corrupted file (bit rot, manual edits, the fault harness) is
  detected by its SHA-256 seal and surfaces as
  :class:`~repro.robustness.errors.CheckpointCorrupt`, which resume
  logic converts into "start from scratch", never into wrong data.

The chain runner (:func:`repro.lowerbound.sequence.run_chain`) and the
certificate builder
(:func:`repro.lowerbound.certificate.build_certificate`) write a stage
after every completed step, so a resumed run replays only the remaining
work and produces output identical to an uninterrupted run.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.io import read_json_checkpoint, write_json_checkpoint
from repro.observability import trace as _trace
from repro.robustness.errors import CheckpointCorrupt


class CheckpointStore:
    """A directory of named, integrity-sealed JSON checkpoint stages."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, stage: str) -> Path:
        """The on-disk path of ``stage``."""
        return self.directory / f"{stage}.json"

    def save(self, stage: str, payload: dict) -> int:
        """Atomically persist ``payload`` under ``stage``.

        Returns the size of the sealed document in bytes, so spill
        accounting (``mp.spilled_bytes`` in the shard scheduler) can
        charge exactly what landed on disk.
        """
        path = self.path_for(stage)
        write_json_checkpoint(path, payload)
        size = path.stat().st_size
        _trace.event("checkpoint.save", stage=stage, bytes=size)
        return size

    def load(self, stage: str) -> object | None:
        """The payload of ``stage``, or ``None`` when absent.

        Raises :class:`CheckpointCorrupt` when the file exists but
        fails its integrity seal.
        """
        path = self.path_for(stage)
        if not path.exists():
            _trace.event("checkpoint.load", stage=stage, found=False)
            return None
        payload = read_json_checkpoint(path)
        _trace.event("checkpoint.load", stage=stage, found=True)
        return payload

    def load_or_discard(
        self, stage: str
    ) -> tuple[object | None, CheckpointCorrupt | None]:
        """Like :meth:`load`, but a corrupt file is deleted and reported.

        Returns ``(payload_or_None, corruption_error_or_None)`` so the
        caller can both restart cleanly and record why.
        """
        try:
            return self.load(stage), None
        except CheckpointCorrupt as error:
            self.delete(stage)
            _trace.event("checkpoint.corrupt", stage=stage, message=error.message)
            return None, error

    def delete(self, stage: str) -> None:
        """Remove ``stage`` if present."""
        try:
            self.path_for(stage).unlink()
        except FileNotFoundError:
            pass

    def stages(self, prefix: str = "") -> list[str]:
        """Names of all stages currently on disk, sorted.

        With ``prefix``, only stages whose names start with it — the
        service job store (:mod:`repro.service.jobs`) namespaces its
        records as ``job-<id>`` and scans exactly that slice on
        restart.
        """
        return sorted(
            path.stem
            for path in self.directory.glob("*.json")
            if path.stem.startswith(prefix)
        )

    def clear(self) -> None:
        """Delete every stage in the store."""
        for stage in self.stages():
            self.delete(stage)


__all__ = ["CheckpointStore"]
