"""Locally checkable problems as (Sigma, N, E) triples (paper, Sec. 2.2).

A :class:`Problem` bundles an alphabet, a node constraint of arity
Delta, and an edge constraint of arity 2.  It offers normalization
(dropping labels that cannot ever be used consistently), renaming, and
isomorphism testing (equality up to a label bijection), all of which
the proof pipeline of Section 3 relies on.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable

from repro.core.constraints import Constraint
from repro.core.labels import Alphabet, render_label
from repro.robustness.errors import InvalidProblem


def _first_configuration_using(
    node_constraint: Constraint, edge_constraint: Constraint, labels: frozenset
) -> str:
    """Render the first configuration touching any of ``labels``."""
    for constraint in (node_constraint, edge_constraint):
        for configuration in constraint:
            if configuration.support() & labels:
                return configuration.render()
    return "<none>"


def _check_duplicate_node_lines(node_lines: Iterable[str], name: str = "") -> None:
    """Reject a node configuration spelled out twice in different ways.

    Only *simple* lines — those expanding to a single configuration —
    participate: two distinct such lines denoting the same multiset
    (``M X^2`` vs ``X^2 M``) are always a typo and raise
    :class:`InvalidProblem` naming the configuration.  Disjunction
    lines (``[MUBQ]^4``) overlap across lines by design (the Lemma 6
    normal forms rely on it), and repeating the identical line is
    tolerated as an idempotent mention (degenerate family parameters
    such as ``Pi(a=0, x=Delta)`` produce it legitimately).
    """
    from repro.core.configurations import parse_condensed

    seen: dict = {}
    for line in node_lines:
        condensed = parse_condensed(line) if isinstance(line, str) else line
        rendered = (
            line.strip() if isinstance(line, str) else condensed.render()
        )
        expanded = condensed.expand()
        if len(expanded) != 1:
            continue
        (configuration,) = expanded
        previous = seen.get(configuration)
        if previous is not None and previous != rendered:
            raise InvalidProblem(
                "duplicate node configuration "
                f"{configuration.render()!r} produced by distinct "
                f"lines {previous!r} and {rendered!r}",
                configuration=configuration.render(),
                name=name or "<unnamed>",
            )
        seen[configuration] = rendered


class Problem:
    """A locally checkable problem in the round-elimination formalism."""

    __slots__ = (
        "_alphabet",
        "_node_constraint",
        "_edge_constraint",
        "name",
        "_compat_cache",
        "_kernel_cache",
        "_canonical_cache",
    )

    def __init__(
        self,
        alphabet: Alphabet | Iterable[Hashable],
        node_constraint: Constraint,
        edge_constraint: Constraint,
        name: str = "",
    ) -> None:
        if not isinstance(alphabet, Alphabet):
            alphabet = Alphabet(alphabet)
        if edge_constraint.arity != 2:
            raise InvalidProblem(
                "edge constraint must have arity 2",
                arity=edge_constraint.arity,
                name=name or "<unnamed>",
            )
        stray_node = node_constraint.labels_used() - set(alphabet)
        stray_edge = edge_constraint.labels_used() - set(alphabet)
        if stray_node or stray_edge:
            offending = _first_configuration_using(
                node_constraint, edge_constraint, stray_node | stray_edge
            )
            raise InvalidProblem(
                "constraints use labels outside the alphabet: "
                f"{sorted(map(render_label, stray_node | stray_edge))}",
                configuration=offending,
                alphabet_size=len(alphabet),
                name=name or "<unnamed>",
            )
        self._alphabet = alphabet
        self._node_constraint = node_constraint
        self._edge_constraint = edge_constraint
        self.name = name
        self._compat_cache: dict = {}
        self._kernel_cache = None
        self._canonical_cache = None

    @classmethod
    def from_text(
        cls,
        node_lines: Iterable[str],
        edge_lines: Iterable[str],
        name: str = "",
    ) -> "Problem":
        """Build a problem from condensed-configuration strings.

        The alphabet is inferred from the labels that occur.  Example
        (MIS with Delta = 3, Section 2.2 of the paper)::

            Problem.from_text(["M^3", "P O^2"], ["M [PO]", "O O"])

        Validation happens here, where the offending line can still be
        named: mixed arities raise :class:`InvalidProblem`, and so does
        a node configuration produced by two *different* condensed
        lines (a duplicate that would otherwise silently collapse —
        repeating the identical line is tolerated as an idempotent
        mention).  Edge lines legitimately re-mention pairs (the
        paper's ``M [PAOX]`` / ``X [MPAOX]`` style both contain
        ``MX``), so the duplicate check applies to node lines only.
        """
        node_lines = list(node_lines)
        edge_lines = list(edge_lines)
        _check_duplicate_node_lines(node_lines, name=name)
        try:
            node_constraint = Constraint.from_condensed(node_lines)
            edge_constraint = Constraint.from_condensed(edge_lines)
        except InvalidProblem:
            raise
        except ValueError as error:
            raise InvalidProblem(
                f"malformed constraint lines: {error}",
                name=name or "<unnamed>",
            ) from error
        labels = sorted(
            node_constraint.labels_used() | edge_constraint.labels_used(),
            key=render_label,
        )
        return cls(Alphabet(labels), node_constraint, edge_constraint, name=name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Problem):
            return NotImplemented
        return (
            self._node_constraint == other._node_constraint
            and self._edge_constraint == other._edge_constraint
        )

    def __hash__(self) -> int:
        return hash((self._node_constraint, self._edge_constraint))

    def __repr__(self) -> str:
        label = self.name or "Problem"
        return (
            f"<{label}: delta={self.delta}, "
            f"{len(self._alphabet)} labels, "
            f"{len(self._node_constraint)} node / "
            f"{len(self._edge_constraint)} edge configurations>"
        )

    @property
    def alphabet(self) -> Alphabet:
        """The label alphabet Sigma."""
        return self._alphabet

    @property
    def node_constraint(self) -> Constraint:
        """The node constraint N (arity Delta)."""
        return self._node_constraint

    @property
    def edge_constraint(self) -> Constraint:
        """The edge constraint E (arity 2)."""
        return self._edge_constraint

    @property
    def delta(self) -> int:
        """The arity of the node constraint (the degree Delta)."""
        return self._node_constraint.arity

    def edge_allows(self, left: Hashable, right: Hashable) -> bool:
        """Whether the pair ``left right`` is an allowed edge configuration."""
        return self._edge_constraint.allows((left, right))

    def compatible_labels(self, label: Hashable) -> frozenset:
        """All labels that may sit on the other endpoint of ``label``.

        Memoized per label: these single-label images generate the
        Galois closure lattice of the maximization step, which used to
        recompute them on every ``partner`` call.
        """
        cached = self._compat_cache.get(label)
        if cached is None:
            cached = frozenset(
                other for other in self._alphabet if self.edge_allows(label, other)
            )
            self._compat_cache[label] = cached
        return cached

    def self_compatible_labels(self) -> frozenset:
        """Labels L with LL allowed on an edge (used by Lemmas 12 and 15)."""
        return frozenset(
            label for label in self._alphabet if self.edge_allows(label, label)
        )

    def used_labels(self) -> frozenset:
        """Labels occurring in both constraints (usable in a solution).

        A label missing from the node constraint can never be output by
        a node; a label missing from the edge constraint can never sit
        on an edge.  Either way it is dead weight.
        """
        return self._node_constraint.labels_used() & self._edge_constraint.labels_used()

    def normalized(self) -> "Problem":
        """Iteratively drop unusable labels and the configurations using them.

        The result has every remaining label occurring in both
        constraints.  Raises ``ValueError`` if nothing remains (the
        problem is unsatisfiable even locally).
        """
        node_constraint = self._node_constraint
        edge_constraint = self._edge_constraint
        while True:
            usable = node_constraint.labels_used() & edge_constraint.labels_used()
            if usable == node_constraint.labels_used() | edge_constraint.labels_used():
                break
            try:
                node_constraint = node_constraint.restrict_to(usable)
                edge_constraint = edge_constraint.restrict_to(usable)
            except ValueError as error:
                raise InvalidProblem(
                    "normalization removed every configuration "
                    "(the problem is locally unsatisfiable)",
                    alphabet_size=len(self._alphabet),
                    name=self.name or "<unnamed>",
                ) from error
        alphabet = Alphabet(
            label for label in self._alphabet if label in usable
        )
        return Problem(alphabet, node_constraint, edge_constraint, name=self.name)

    def rename(self, mapping: dict, name: str = "") -> "Problem":
        """Apply a label bijection, producing an isomorphic problem."""
        targets = [mapping.get(label, label) for label in self._alphabet]
        if len(set(targets)) != len(targets):
            raise InvalidProblem(
                "renaming is not injective on the alphabet",
                alphabet_size=len(self._alphabet),
                name=self.name or "<unnamed>",
            )
        return Problem(
            Alphabet(targets),
            self._node_constraint.rename(mapping),
            self._edge_constraint.rename(mapping),
            name=name or self.name,
        )

    def _label_signature(self, label: Hashable) -> tuple:
        """A renaming-invariant fingerprint of a label, used to prune
        the isomorphism search."""
        node_occurrences = sorted(
            configuration.count(label)
            for configuration in self._node_constraint.configurations_containing(label)
        )
        edge_occurrences = sorted(
            configuration.count(label)
            for configuration in self._edge_constraint.configurations_containing(label)
        )
        return (
            tuple(node_occurrences),
            tuple(edge_occurrences),
            self.edge_allows(label, label),
            len(self.compatible_labels(label)),
        )

    def find_isomorphism(self, other: "Problem") -> dict | None:
        """A label bijection turning ``self`` into ``other``, or ``None``.

        Brute-force search over signature-compatible bijections; fine
        for the constant-size alphabets of this paper (at most 8).
        """
        if len(self._alphabet) != len(other._alphabet):
            return None
        if self.delta != other.delta:
            return None
        if len(self._node_constraint) != len(other._node_constraint):
            return None
        if len(self._edge_constraint) != len(other._edge_constraint):
            return None
        own_labels = list(self._alphabet)
        own_signatures = {label: self._label_signature(label) for label in own_labels}
        other_signatures = {
            label: other._label_signature(label) for label in other._alphabet
        }
        candidates = {
            label: [
                target
                for target in other._alphabet
                if other_signatures[target] == own_signatures[label]
            ]
            for label in own_labels
        }
        if any(not options for options in candidates.values()):
            return None
        own_labels.sort(key=lambda label: len(candidates[label]))
        for assignment in itertools.product(
            *(candidates[label] for label in own_labels)
        ):
            if len(set(assignment)) != len(assignment):
                continue
            mapping = dict(zip(own_labels, assignment))
            if (
                self._node_constraint.rename(mapping) == other._node_constraint
                and self._edge_constraint.rename(mapping) == other._edge_constraint
            ):
                return mapping
        return None

    def is_isomorphic(self, other: "Problem") -> bool:
        """Whether the problems are equal up to renaming labels."""
        return self.find_isomorphism(other) is not None

    def render(self) -> str:
        """Paper-style listing of alphabet and both constraints."""
        lines = []
        if self.name:
            lines.append(f"problem: {self.name}")
        lines.append(
            "labels: " + " ".join(render_label(label) for label in self._alphabet)
        )
        lines.append("node constraint:")
        lines.extend("  " + configuration.render() for configuration in self._node_constraint)
        lines.append("edge constraint:")
        lines.extend("  " + configuration.render() for configuration in self._edge_constraint)
        return "\n".join(lines)
