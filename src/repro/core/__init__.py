"""Core round-elimination machinery.

This package implements the formal framework of Section 2 of the paper:
labels and configurations, node/edge constraints, locally checkable
problems as (Sigma, N, E) triples, label-strength diagrams, right-closed
sets, the round-elimination operators R and R-bar (Brandt, PODC 2019),
relaxations between configurations, and zero-round solvability tests.
"""

from repro.core.labels import Alphabet, LabelSet, render_label, render_label_set
from repro.core.configurations import (
    CondensedConfiguration,
    Configuration,
    Disjunction,
    parse_condensed,
)
from repro.core.constraints import Constraint
from repro.core.problem import Problem
from repro.core.diagram import Diagram, right_closed_sets
from repro.core.cache import (
    ENGINE_VERSION,
    OperatorCache,
    active_cache,
    caching,
    canonical_form,
    default_cache_dir,
    fingerprint,
)
from repro.core.round_elimination import (
    SpeedupResult,
    maximize_edge_constraint,
    maximize_node_constraint,
    rename_to_strings,
    speedup,
    R,
    Rbar,
)
from repro.core.relaxation import (
    can_relax,
    find_label_relabeling,
    find_upgrade_reduction,
)
from repro.core.solvability import (
    randomized_zero_round_failure_bound,
    zero_round_solvable_pn,
    zero_round_solvable_symmetric,
)
from repro.core.kernel import KernelProblem, LabelInterner, kernel_R, kernel_Rbar

__all__ = [
    "Alphabet",
    "LabelSet",
    "render_label",
    "render_label_set",
    "Configuration",
    "CondensedConfiguration",
    "Disjunction",
    "parse_condensed",
    "Constraint",
    "Problem",
    "Diagram",
    "right_closed_sets",
    "ENGINE_VERSION",
    "OperatorCache",
    "active_cache",
    "caching",
    "canonical_form",
    "default_cache_dir",
    "fingerprint",
    "SpeedupResult",
    "maximize_edge_constraint",
    "maximize_node_constraint",
    "rename_to_strings",
    "speedup",
    "R",
    "Rbar",
    "can_relax",
    "find_label_relabeling",
    "find_upgrade_reduction",
    "randomized_zero_round_failure_bound",
    "zero_round_solvable_pn",
    "zero_round_solvable_symmetric",
    "KernelProblem",
    "LabelInterner",
    "kernel_R",
    "kernel_Rbar",
]
