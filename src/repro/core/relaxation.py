"""Relaxations between configurations and 0-round reductions.

Three related notions live here:

* :func:`can_relax` — Definition 7 of the paper: a node configuration
  of label *sets* ``Y_1 ... Y_Delta`` relaxes to ``Z_1 ... Z_Delta``
  when some permutation matches every ``Y_i`` into a superset
  ``Z_rho(i)``.  This is also exactly the dominance order used to prune
  non-maximal configurations in the maximization steps.

* :func:`find_label_relabeling` — a uniform label map ``g`` from one
  problem into another such that allowed configurations map into
  allowed configurations.  Its existence certifies that the target is
  0-round solvable given a solution of the source.

* :func:`find_upgrade_reduction` — the per-configuration, per-position
  upgrade used by Lemma 11: each node may replace a label by one that
  is *at least as strong* w.r.t. the (shared) edge constraint, provided
  the upgraded configuration is allowed by the target's node
  constraint.  Strength guarantees edge configurations stay allowed, so
  such a witness again certifies a 0-round reduction.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro.core import cache as _cache
from repro.core.configurations import Configuration
from repro.core.diagram import Diagram
from repro.core.problem import Problem
from repro.observability import trace as _trace
from repro.robustness import budget as _budget


def can_relax(source: Configuration, target: Configuration) -> bool:
    """Definition 7: whether ``source`` can be relaxed to ``target``.

    Both configurations must consist of set labels (``frozenset``) and
    share one arity.  Uses bipartite matching (Kuhn's augmenting paths)
    over the pointwise-subset relation.
    """
    if source.arity != target.arity:
        return False
    source_sets = list(source.items)
    target_sets = list(target.items)
    return _match(source_sets, target_sets, lambda small, big: small <= big)


def relaxation_witness(
    source: Configuration, target: Configuration
) -> list[int] | None:
    """The permutation realizing a relaxation, or ``None``.

    Returns ``rho`` as a list: source position ``i`` maps to target
    position ``rho[i]``.
    """
    if source.arity != target.arity:
        return None
    source_sets = list(source.items)
    target_sets = list(target.items)
    assignment = _match_assignment(
        source_sets, target_sets, lambda small, big: small <= big
    )
    if assignment is None:
        return None
    rho = [0] * len(source_sets)
    for target_index, source_index in assignment.items():
        rho[source_index] = target_index
    return rho


def _match(left: list, right: list, admits: Callable[[object, object], bool]) -> bool:
    return _match_assignment(left, right, admits) is not None


def _match_assignment(
    left: list, right: list, admits: Callable[[object, object], bool]
) -> dict[int, int] | None:
    """Perfect matching of ``left`` items into ``right`` slots.

    ``admits(left_item, right_item)`` decides admissibility.  Returns
    ``{right_index: left_index}`` or ``None``.
    """
    if len(left) != len(right):
        return None
    assignment: dict[int, int] = {}

    def try_assign(left_index: int, visited: set[int]) -> bool:
        for right_index, right_item in enumerate(right):
            if right_index in visited or not admits(left[left_index], right_item):
                continue
            visited.add(right_index)
            if right_index not in assignment or try_assign(
                assignment[right_index], visited
            ):
                assignment[right_index] = left_index
                return True
        return False

    for left_index in range(len(left)):
        if not try_assign(left_index, set()):
            return None
    return assignment


def find_label_relabeling(
    source: Problem, target: Problem, *, use_kernel: bool = False
) -> dict | None:
    """A uniform map g: Sigma_source -> Sigma_target certifying a
    0-round reduction, or ``None`` if no such map exists.

    The map must send every allowed node (edge) configuration of the
    source to an allowed node (edge) configuration of the target.
    Backtracking over the source alphabet with incremental pruning.
    ``use_kernel=True`` runs the interned-id search instead (same
    existence answer; the returned witness may differ).
    """
    if source.delta != target.delta:
        return None
    engine = "kernel" if use_kernel else "reference"
    with _trace.span("op.relabeling", engine=engine, delta=source.delta) as span:
        span.add("labels.in", len(source.alphabet))

        def compute() -> dict | None:
            if use_kernel:
                from repro.core.kernel.engine import (
                    find_label_relabeling_kernel,
                )

                return find_label_relabeling_kernel(source, target)
            return _find_label_relabeling_reference(source, target)

        return _cache.cached_relabeling(source, target, compute)


def _find_label_relabeling_reference(source: Problem, target: Problem) -> dict | None:
    source_labels = list(source.alphabet)
    target_labels = list(target.alphabet)
    mapping: dict = {}

    def consistent_so_far() -> bool:
        assigned = set(mapping)
        for constraint, target_constraint in (
            (source.node_constraint, target.node_constraint),
            (source.edge_constraint, target.edge_constraint),
        ):
            for configuration in constraint.configurations:
                if not configuration.support() <= assigned:
                    continue
                image = configuration.replace_all(mapping)
                if image not in target_constraint:
                    return False
        return True

    def assign(index: int) -> bool:
        _budget.checkpoint(phase="relabeling-search", assigned=index)
        if index == len(source_labels):
            return True
        label = source_labels[index]
        for candidate in target_labels:
            mapping[label] = candidate
            if consistent_so_far() and assign(index + 1):
                return True
            del mapping[label]
        return False

    if assign(0):
        return dict(mapping)
    return None


def find_upgrade_reduction(
    source: Problem, target: Problem
) -> dict[Configuration, Configuration] | None:
    """Per-configuration upgrade witnesses (the Lemma 11 mechanism).

    Requires the two problems to share an edge constraint over a common
    alphabet.  For every allowed node configuration ``C`` of the source
    the witness supplies an allowed node configuration ``C'`` of the
    target together with a position matching under the "at least as
    strong w.r.t. the edge constraint" relation.  If every source
    configuration has a witness the reduction is 0 rounds: if both
    endpoints of an edge upgrade their labels to at-least-as-strong
    ones, the edge configuration stays allowed (apply the strength
    property once per endpoint).

    Returns ``{source_config: chosen_target_config}`` or ``None``.
    """
    if source.delta != target.delta:
        return None
    shared_labels = set(source.alphabet) | set(target.alphabet)
    diagram = Diagram(source.edge_constraint, sorted(shared_labels, key=str))

    def upgradable(weak: Hashable, strong: Hashable) -> bool:
        return diagram.at_least_as_strong(strong, weak)

    witnesses: dict[Configuration, Configuration] = {}
    for configuration in source.node_constraint.configurations:
        _budget.checkpoint(
            phase="upgrade-reduction", witnesses=len(witnesses)
        )
        found = None
        for candidate in target.node_constraint.configurations:
            if _match(
                list(configuration.items),
                list(candidate.items),
                lambda weak, strong: upgradable(weak, strong),
            ):
                found = candidate
                break
        if found is None:
            return None
        witnesses[configuration] = found
    return witnesses


def compare_problems(
    first: Problem, second: Problem, *, use_kernel: bool = False
) -> str:
    """Order two problems by 0-round relabeling reductions.

    Returns one of ``"equivalent"``, ``"first_easier"`` (a solution of
    ``first`` relabels into one of ``second``... i.e. ``second`` is
    0-round solvable given ``first``), ``"second_easier"``, or
    ``"incomparable"``.  This is a *sufficient* comparison only — the
    absence of a uniform relabeling does not prove a complexity gap —
    but it is exactly the kind of certificate the paper's Lemma 11 and
    the relaxation steps produce.
    """
    forward = find_label_relabeling(first, second, use_kernel=use_kernel) is not None
    backward = find_label_relabeling(second, first, use_kernel=use_kernel) is not None
    if forward and backward:
        return "equivalent"
    if forward:
        return "first_easier"
    if backward:
        return "second_easier"
    return "incomparable"


def all_relax_into(
    configurations: Iterable[Configuration],
    targets: Iterable[Configuration],
    *,
    use_kernel: bool = False,
) -> bool:
    """Whether every configuration relaxes into some target (Lemma 8).

    ``use_kernel=True`` interns the set labels once and runs the
    Definition 7 matchings over bitmasks.
    """
    if use_kernel:
        from repro.core.kernel.engine import all_relax_into_kernel

        return all_relax_into_kernel(configurations, targets)
    target_list = list(targets)
    return all(
        any(can_relax(configuration, target) for target in target_list)
        for configuration in configurations
    )
