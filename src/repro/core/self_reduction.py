"""The self-reduction operator: condense, speed up, condense again.

Iterated round elimination blows alphabets up doubly exponentially, so
a chain that keeps applying ``speedup`` drowns in labels after two or
three steps.  The self-reduction route (Khoury-Schild, arXiv
2505.15654) interleaves each speedup with a *complexity-preserving
condensation*: merge labels that are equivalent w.r.t. both
constraints, then repeatedly drop any label dominated by another in
both diagrams.  Both moves are exact — merging is a 0-round relabeling
in both directions, and removing a dominated label keeps the problem
no easier (solutions restrict) and no harder (rewrite the weak label
as the dominating one in 0 rounds), so

    T(condense(P)) = T(P)   and   T(self_reduce(P)) = T(P) - 1

on high-girth graphs.  A chain of ``k`` self-reduction steps whose
iterates are all zero-round unsolvable therefore certifies ``T >= k``,
and a nontrivial isomorphism fixed point certifies the
Omega(log n)-style bound of the fixed-point method (Sec. 1.2 of the
paper), exactly as :func:`repro.core.simplify.iterate_speedup` does for
the merge-only trajectory.

Determinism and caching: every condensation decision (merge
representatives, removal candidate order) is keyed by the *canonical
ids* of :func:`repro.core.cache.canonical_form`, computed once on the
input.  The whole pass is thus a pure function of the problem's
canonical encoding, which makes the
:func:`repro.core.cache.cached_condensation` transport sound and the
warm rerun byte-identical to a cold one.

Both engines implement the strength tests: the reference path uses
:class:`repro.core.diagram.Diagram`, the kernel path the bitmask
oracles :meth:`KernelProblem.node_ge_masks` /
:meth:`KernelProblem.edge_ge_masks`.  The differential oracle in
``tests/oracle.py`` holds them to exact equality.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass

from repro.core import cache as _cache
from repro.core.diagram import Diagram
from repro.core.problem import Problem
from repro.core.round_elimination import SpeedupResult, speedup
from repro.observability import trace as _trace
from repro.robustness import budget as _budget
from repro.robustness.errors import EngineMisuse

StrengthTest = Callable[[Hashable, Hashable], bool]


def _strength_tests(
    problem: Problem, use_kernel: bool
) -> tuple[StrengthTest, StrengthTest]:
    """``(node_ge, edge_ge)`` replacement-test oracles for ``problem``."""
    if use_kernel:
        from repro.core.kernel.bitops import bit
        from repro.core.kernel.engine import KernelProblem

        kernel = KernelProblem.of(problem)
        node_masks = kernel.node_ge_masks()
        edge_masks = kernel.edge_ge_masks()
        id_of = kernel.interner.id_of

        def node_ge(strong: Hashable, weak: Hashable) -> bool:
            return bool(node_masks[id_of(weak)] & bit(id_of(strong)))

        def edge_ge(strong: Hashable, weak: Hashable) -> bool:
            return bool(edge_masks[id_of(weak)] & bit(id_of(strong)))

        return node_ge, edge_ge
    node_diagram = Diagram(problem.node_constraint, problem.alphabet)
    edge_diagram = Diagram(problem.edge_constraint, problem.alphabet)
    return node_diagram.at_least_as_strong, edge_diagram.at_least_as_strong


def _condense_uncached(problem: Problem, *, use_kernel: bool) -> Problem:
    rank = {
        label: position
        for position, label in enumerate(_cache.canonical_form(problem).order)
    }
    with _trace.span(
        "op.condense",
        engine="kernel" if use_kernel else "reference",
        problem=problem.name,
        delta=problem.delta,
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        current = problem
        merged_total = 0
        removed_total = 0
        while True:
            _budget.checkpoint(phase="condense")
            node_ge, edge_ge = _strength_tests(current, use_kernel)
            labels = sorted(current.alphabet, key=rank.__getitem__)
            # Merge pass: group mutually-strong labels, keeping the
            # canonically smallest member of each class.
            classes: list[list[Hashable]] = []
            for label in labels:
                for group in classes:
                    representative = group[0]
                    if (
                        node_ge(label, representative)
                        and node_ge(representative, label)
                        and edge_ge(label, representative)
                        and edge_ge(representative, label)
                    ):
                        group.append(label)
                        break
                else:
                    classes.append([label])
            if any(len(group) > 1 for group in classes):
                mapping: dict[Hashable, Hashable] = {}
                for group in classes:
                    for member in group:
                        mapping[member] = group[0]
                kept = [
                    label
                    for label in current.alphabet
                    if mapping[label] == label
                ]
                merged_total += len(current.alphabet) - len(kept)
                current = Problem(
                    kept,
                    current.node_constraint.rename(mapping),
                    current.edge_constraint.rename(mapping),
                    name=current.name,
                )
                continue
            # Removal pass: drop the canonically first label dominated
            # by another in both diagrams (an exact simplification).
            removal: Hashable | None = None
            for weak in labels:
                for strong in labels:
                    if strong == weak:
                        continue
                    if node_ge(strong, weak) and edge_ge(strong, weak):
                        removal = weak
                        break
                if removal is not None:
                    break
            if removal is None:
                break
            removed_total += 1
            remaining = [
                label for label in current.alphabet if label != removal
            ]
            current = Problem(
                remaining,
                current.node_constraint.restrict_to(remaining),
                current.edge_constraint.restrict_to(remaining),
                name=current.name,
            )
        span.add("selfred.merged_labels", merged_total)
        span.add("selfred.removed_labels", removed_total)
        span.add("labels.out", len(current.alphabet))
    return current


def condense_problem(problem: Problem, *, use_kernel: bool = False) -> Problem:
    """The exact condensation of ``problem`` (same complexity, fewer labels).

    Alternates merging equivalence classes of mutually-strong labels
    with certified dominated-label removals until neither applies.
    Idempotent, deterministic, and equivariant under label bijections;
    memoized through the ambient :func:`repro.core.cache.caching` store
    by the problem's renaming-invariant fingerprint.
    """
    return _cache.cached_condensation(
        problem, lambda: _condense_uncached(problem, use_kernel=use_kernel)
    )


@dataclass(frozen=True)
class SelfReductionStep:
    """The record of one full self-reduction step."""

    original: Problem
    condensed: Problem             #: condense(original)
    speedup: SpeedupResult         #: the Rbar(R(.)) step on the condensed problem
    problem: Problem               #: condense(speedup.problem) - the result

    @property
    def fixed_point(self) -> bool:
        """Whether the step mapped the condensed problem onto itself
        (up to renaming) - the Sec. 1.2 fixed-point certificate."""
        return self.problem.is_isomorphic(self.condensed)


def self_reduce(
    problem: Problem,
    *,
    use_kernel: bool = False,
    workers: int | None = None,
) -> SelfReductionStep:
    """One self-reduction step: ``condense(speedup(condense(problem)))``.

    The result has complexity exactly ``max(T - 1, 0)`` on high-girth
    graphs when ``problem`` has complexity ``T`` (Theorem 3 for the
    speedup, exactness of both condensation moves for the rest).
    ``use_kernel`` / ``workers`` thread through to the component
    operators; output is identical either way.
    """
    if workers is not None and not use_kernel:
        raise EngineMisuse(
            "workers requires use_kernel=True",
            operator="self_reduce",
            workers=workers,
        )
    with _trace.span(
        "op.self_reduce",
        engine="kernel" if use_kernel else "reference",
        problem=problem.name,
        delta=problem.delta,
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        condensed = condense_problem(problem, use_kernel=use_kernel)
        sped = speedup(condensed, use_kernel=use_kernel, workers=workers)
        reduced = condense_problem(sped.problem, use_kernel=use_kernel)
        span.add("labels.out", len(reduced.alphabet))
    return SelfReductionStep(
        original=problem,
        condensed=condensed,
        speedup=sped,
        problem=reduced,
    )


@dataclass(frozen=True)
class SelfReductionChain:
    """The iterates of a self-reduction chain and what they certify."""

    policy: str                    #: "pn" or "symmetric"
    problems: list[Problem]        #: [condense(start), step 1, step 2, ...]
    reached_fixed_point: bool
    certified_rounds: int          #: leading zero-round-unsolvable iterates

    @property
    def steps(self) -> int:
        """Number of self-reduction steps performed."""
        return len(self.problems) - 1


def self_reduction_chain(
    problem: Problem,
    max_steps: int,
    *,
    policy: str = "pn",
    use_kernel: bool = False,
    workers: int | None = None,
) -> SelfReductionChain:
    """Iterate :func:`self_reduce`, tracking what the chain certifies.

    ``certified_rounds`` counts the leading iterates that are zero-round
    unsolvable under ``policy`` ("pn" for the general port-numbering
    model, "symmetric" for symmetric ports): each step loses exactly one
    round, so ``k`` leading nontrivial iterates certify ``T >= k`` for
    the condensed start problem.  Stops early at an isomorphism fixed
    point; a nontrivial fixed point upgrades the bound to the
    Omega(log n)-style conclusion of the fixed-point method.
    """
    from repro.core.solvability import (
        zero_round_solvable_pn,
        zero_round_solvable_symmetric,
    )

    if policy == "pn":
        solvable = zero_round_solvable_pn
    elif policy == "symmetric":
        solvable = zero_round_solvable_symmetric
    else:
        raise EngineMisuse(
            "self-reduction policy must be 'pn' or 'symmetric'", policy=policy
        )
    if max_steps < 0:
        raise EngineMisuse(
            "self-reduction chain needs max_steps >= 0", max_steps=max_steps
        )
    with _trace.span(
        "selfred.chain",
        engine="kernel" if use_kernel else "reference",
        problem=problem.name,
        policy=policy,
    ) as span:
        current = condense_problem(problem, use_kernel=use_kernel)
        problems = [current]
        reached_fixed_point = False
        for _ in range(max_steps):
            _budget.checkpoint(phase="self-reduction")
            step = self_reduce(current, use_kernel=use_kernel, workers=workers)
            problems.append(step.problem)
            if step.fixed_point:
                reached_fixed_point = True
                break
            current = step.problem
        certified_rounds = 0
        for iterate in problems:
            if solvable(iterate, use_kernel=use_kernel):
                break
            certified_rounds += 1
        span.add("selfred.steps", len(problems) - 1)
        span.add("chain.steps", len(problems) - 1)
    return SelfReductionChain(
        policy=policy,
        problems=problems,
        reached_fixed_point=reached_fixed_point,
        certified_rounds=certified_rounds,
    )


__all__ = [
    "condense_problem",
    "SelfReductionStep",
    "self_reduce",
    "SelfReductionChain",
    "self_reduction_chain",
]
