"""Configurations: words over a label alphabet, and condensed forms.

A *configuration* is a word over the alphabet whose order does not
matter (paper, Section 2.2); we therefore represent it canonically as a
sorted tuple (a multiset).  Node configurations have length Delta, edge
configurations length 2.

A *condensed configuration* uses disjunctions ``[AB]`` and exponents to
describe a collection of configurations compactly, exactly as the paper
writes them (e.g. ``M[PO]`` denotes both ``MP`` and ``MO``, and
``A^a X^(Delta-a)`` is written here with concrete exponents).  The
parser accepts the syntax used throughout the paper:

* single-character labels: ``M``;
* multi-character labels in parentheses: ``(MX)``;
* disjunctions in brackets: ``[PO]``, ``[M(MX)]``;
* exponents after any atom: ``O^3``, ``[PO]^2``;
* whitespace between atoms is optional.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Hashable, Iterable, Iterator

from repro.core.labels import render_label, render_label_set
from repro.robustness import budget as _budget
from repro.robustness.errors import InvalidProblem


def _label_sort_key(label: Hashable) -> str:
    return render_label(label)


class Configuration:
    """A multiset of labels of fixed arity, stored canonically.

    Two configurations compare equal iff they contain the same labels
    with the same multiplicities, regardless of construction order.
    """

    __slots__ = ("_items",)

    def __init__(self, labels: Iterable[Hashable]) -> None:
        self._items: tuple[Hashable, ...] = tuple(sorted(labels, key=_label_sort_key))
        if not self._items:
            raise InvalidProblem("a configuration must contain at least one label")

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._items

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return f"Configuration({self.render()})"

    def __lt__(self, other: "Configuration") -> bool:
        return self._items < other._items

    @property
    def items(self) -> tuple[Hashable, ...]:
        """The labels in canonical (sorted) order."""
        return self._items

    @property
    def arity(self) -> int:
        """Number of labels in the configuration (with multiplicity)."""
        return len(self._items)

    def counts(self) -> Counter:
        """Multiplicity of each label."""
        return Counter(self._items)

    def support(self) -> frozenset:
        """The set of distinct labels appearing in the configuration."""
        return frozenset(self._items)

    def count(self, label: Hashable) -> int:
        """Multiplicity of ``label`` in the configuration."""
        return self._items.count(label)

    def replace_one(self, old: Hashable, new: Hashable) -> "Configuration":
        """Replace one occurrence of ``old`` by ``new``.

        This is the operation underlying the label-strength relation of
        Section 2.3 ("replacing one occurrence of B in C by A").
        """
        items = list(self._items)
        items.remove(old)  # raises ValueError if absent, which is intended
        items.append(new)
        return Configuration(items)

    def replace_all(self, mapping: dict) -> "Configuration":
        """Apply a label renaming to every position."""
        return Configuration(mapping.get(label, label) for label in self._items)

    def with_counts(self, adjustments: dict) -> "Configuration":
        """Return a configuration with label multiplicities adjusted.

        ``adjustments`` maps labels to signed deltas; the result must
        remain a valid multiset (non-negative multiplicities, same
        arity is *not* required).
        """
        counts = self.counts()
        for label, delta in adjustments.items():
            counts[label] += delta
            if counts[label] < 0:
                raise InvalidProblem(f"multiplicity of {label!r} would become negative")
        return Configuration(counts.elements())

    def render(self) -> str:
        """Human-readable form with exponents, e.g. ``M^3 X``."""
        counts = self.counts()
        parts = []
        for label in sorted(counts, key=_label_sort_key):
            multiplicity = counts[label]
            text = render_label(label)
            parts.append(text if multiplicity == 1 else f"{text}^{multiplicity}")
        return " ".join(parts)


class Disjunction:
    """A choice between labels, rendered ``[AB]`` (paper, Section 2.2)."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[Hashable]) -> None:
        self._labels = frozenset(labels)
        if not self._labels:
            raise InvalidProblem("a disjunction must offer at least one label")

    def __iter__(self) -> Iterator[Hashable]:
        return iter(sorted(self._labels, key=_label_sort_key))

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Disjunction):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        return f"Disjunction({self.render()})"

    @property
    def labels(self) -> frozenset:
        """The alternatives offered by this disjunction."""
        return self._labels

    def render(self) -> str:
        """``[AB]`` for a genuine choice, bare label otherwise."""
        if len(self._labels) == 1:
            (label,) = self._labels
            return render_label(label)
        return render_label_set(self._labels)


class CondensedConfiguration:
    """A configuration template with disjunctions and exponents.

    Stored as a multiset of disjunctions; :meth:`expand` yields every
    concrete :class:`Configuration` obtainable by picking one label per
    disjunction (deduplicated as multisets), matching the paper's
    notion of configurations *contained in* a condensed configuration.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: Iterable[tuple[Disjunction, int]]) -> None:
        normalized: Counter = Counter()
        for disjunction, exponent in parts:
            if exponent < 0:
                raise InvalidProblem("exponents must be non-negative")
            if exponent:
                normalized[disjunction] += exponent
        if not normalized:
            raise InvalidProblem("a condensed configuration must be non-empty")
        self._parts: tuple[tuple[Disjunction, int], ...] = tuple(
            sorted(normalized.items(), key=lambda item: item[0].render())
        )

    @classmethod
    def from_groups(cls, *groups: tuple[Iterable[Hashable], int]) -> "CondensedConfiguration":
        """Build from ``(labels, exponent)`` pairs.

        Example: ``CondensedConfiguration.from_groups((("M",), 3), (("P", "O"), 1))``
        is the paper's ``M^3 [PO]``.
        """
        return cls((Disjunction(labels), exponent) for labels, exponent in groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CondensedConfiguration):
            return NotImplemented
        return self._parts == other._parts

    def __hash__(self) -> int:
        return hash(self._parts)

    def __repr__(self) -> str:
        return f"CondensedConfiguration({self.render()})"

    @property
    def parts(self) -> tuple[tuple[Disjunction, int], ...]:
        """The ``(disjunction, exponent)`` pairs in canonical order."""
        return self._parts

    @property
    def arity(self) -> int:
        """Length of every configuration this condensed form denotes."""
        return sum(exponent for _, exponent in self._parts)

    def expand(self) -> set[Configuration]:
        """All concrete configurations contained in this condensed form.

        Enumerates *multisets* per disjunction group (not the raw label
        product, which blows up combinatorially for repeated groups):
        a group ``[ABPQ]^9`` contributes C(12, 3) = 220 multisets, not
        4^9 tuples.
        """
        group_options: list[list[tuple]] = []
        for disjunction, exponent in self._parts:
            members = sorted(disjunction.labels, key=_label_sort_key)
            group_options.append(
                list(itertools.combinations_with_replacement(members, exponent))
            )
        results: set[Configuration] = set()
        checked = 0
        for combo in itertools.product(*group_options):
            # Stride the probe: one-line expansions stay silent, a
            # runaway product is caught within 64 configurations.
            if len(results) - checked >= 64:
                checked = len(results)
                _budget.check_configurations(
                    len(results), phase="condensed-expansion"
                )
            labels: list = []
            for part in combo:
                labels.extend(part)
            results.add(Configuration(labels))
        return results

    def contains(self, configuration: Configuration) -> bool:
        """Whether ``configuration`` is contained in this condensed form.

        Uses a matching argument instead of expansion so that wide
        disjunctions stay cheap.
        """
        if configuration.arity != self.arity:
            return False
        slots: list[frozenset] = []
        for disjunction, exponent in self._parts:
            slots.extend([disjunction.labels] * exponent)
        return _match_labels_to_slots(list(configuration.items), slots)

    def render(self) -> str:
        """Paper-style rendering, e.g. ``[MX]^2 [PO]``."""
        parts = []
        for disjunction, exponent in self._parts:
            text = disjunction.render()
            parts.append(text if exponent == 1 else f"{text}^{exponent}")
        return " ".join(parts)


def _match_labels_to_slots(labels: list, slots: list[frozenset]) -> bool:
    """Bipartite perfect matching: each label into a slot admitting it."""
    assignment: dict[int, int] = {}  # slot index -> label index

    def try_assign(label_index: int, visited: set[int]) -> bool:
        for slot_index, slot in enumerate(slots):
            if slot_index in visited or labels[label_index] not in slot:
                continue
            visited.add(slot_index)
            if slot_index not in assignment or try_assign(assignment[slot_index], visited):
                assignment[slot_index] = label_index
                return True
        return False

    for label_index in range(len(labels)):
        if not try_assign(label_index, set()):
            return False
    return True


def parse_condensed(text: str) -> CondensedConfiguration:
    """Parse the paper's condensed-configuration syntax.

    See the module docstring for the grammar.  Raises ``ValueError`` on
    malformed input.
    """
    parts: list[tuple[Disjunction, int]] = []
    position = 0
    length = len(text)

    def skip_spaces() -> None:
        nonlocal position
        while position < length and text[position].isspace():
            position += 1

    def parse_label() -> str:
        nonlocal position
        if text[position] == "(":
            end = text.find(")", position)
            if end < 0:
                raise InvalidProblem(f"unclosed '(' at offset {position} in {text!r}")
            label = text[position + 1 : end]
            if not label:
                raise InvalidProblem(f"empty label at offset {position} in {text!r}")
            position = end + 1
            return label
        label = text[position]
        position += 1
        return label

    # analysis: unbounded-ok(single left-to-right scan of one constraint line)
    while True:
        skip_spaces()
        if position >= length:
            break
        character = text[position]
        if character == "[":
            position += 1
            members: list[str] = []
            # analysis: unbounded-ok(consumes at least one character of the line per iteration)
            while True:
                skip_spaces()
                if position >= length:
                    raise InvalidProblem(f"unclosed '[' in {text!r}")
                if text[position] == "]":
                    position += 1
                    break
                members.append(parse_label())
            if not members:
                raise InvalidProblem(f"empty disjunction in {text!r}")
            disjunction = Disjunction(members)
        elif character in ")]^":
            raise InvalidProblem(f"unexpected {character!r} at offset {position} in {text!r}")
        else:
            disjunction = Disjunction([parse_label()])
        exponent = 1
        skip_spaces()
        if position < length and text[position] == "^":
            position += 1
            skip_spaces()
            start = position
            while position < length and text[position].isdigit():
                position += 1
            if start == position:
                raise InvalidProblem(f"missing exponent at offset {position} in {text!r}")
            exponent = int(text[start:position])
        parts.append((disjunction, exponent))
    if not parts:
        raise InvalidProblem("empty configuration string")
    return CondensedConfiguration(parts)
