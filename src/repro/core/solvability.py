"""Zero-round solvability in the port-numbering model (Lemmas 12, 15).

Two instance families matter:

* The *general* PN model: a 0-round deterministic algorithm assigns one
  label to each port, identically at every node (all 0-round views are
  equal).  Any pairing of ports can occur on an edge, so the algorithm
  succeeds iff some allowed node configuration uses only pairwise
  edge-compatible labels.

* The paper's *symmetric-port* instances (Lemma 12): ports are assigned
  so that the edge of color i has port i at both endpoints.  Every edge
  then carries the same label on both sides, so the algorithm succeeds
  iff some allowed node configuration consists of self-compatible
  labels only.  Crucially this holds even with a Delta-edge coloring
  given as input, since the coloring equals the port numbering.

For randomized algorithms Lemma 15 turns the same observation into a
failure-probability bound of ``1 / (|N| * Delta)^2``, which for the
three-configuration family problems is ``1/(3 Delta)^2 >= 1/Delta^8``.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.core import cache as _cache
from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.observability import trace as _trace


def zero_round_solvable_pn(problem: Problem, *, use_kernel: bool = False) -> bool:
    """Deterministic 0-round solvability in the general PN model.

    True iff some allowed node configuration's support is pairwise
    edge-compatible (including each label with itself, since the two
    endpoints of an edge may use equal port numbers).
    ``use_kernel=True`` evaluates the same predicate over interned
    bitmasks (support mask contained in every member's compatibility
    mask).
    """
    with _trace.span(
        "op.zero_round_pn",
        engine="kernel" if use_kernel else "reference",
        problem=problem.name,
        delta=problem.delta,
    ) as span:
        span.add("labels.in", len(problem.alphabet))

        def compute() -> bool:
            if use_kernel:
                from repro.core.kernel.engine import (
                    zero_round_solvable_pn_kernel,
                )

                return zero_round_solvable_pn_kernel(problem)
            return _pn_witness(problem) is not None

        return _cache.cached_verdict("zero-round-pn", problem, compute)


def zero_round_witness_pn(problem: Problem) -> Configuration | None:
    """The node configuration a 0-round PN algorithm could output."""
    return _pn_witness(problem)


def _pn_witness(problem: Problem) -> Configuration | None:
    for configuration in problem.node_constraint.configurations:
        support = configuration.support()
        if all(
            problem.edge_allows(first, second)
            for first, second in itertools.combinations_with_replacement(
                sorted(support, key=str), 2
            )
        ):
            return configuration
    return None


def zero_round_solvable_symmetric(
    problem: Problem, *, use_kernel: bool = False
) -> bool:
    """Deterministic 0-round solvability on Lemma 12's instances.

    The instances assign port i to both endpoints of every color-i edge,
    so both endpoints of an edge output the same label.  Solvable iff
    some allowed node configuration uses self-compatible labels only.
    The Delta-edge coloring input does not help: it coincides with the
    port numbering, which is already visible in 0 rounds.
    ``use_kernel=True`` checks support masks against the
    self-compatible mask instead of iterating label sets.
    """
    with _trace.span(
        "op.zero_round_symmetric",
        engine="kernel" if use_kernel else "reference",
        problem=problem.name,
        delta=problem.delta,
    ) as span:
        span.add("labels.in", len(problem.alphabet))

        def compute() -> bool:
            if use_kernel:
                from repro.core.kernel.engine import (
                    zero_round_solvable_symmetric_kernel,
                )

                return zero_round_solvable_symmetric_kernel(problem)
            return _symmetric_witness(problem) is not None

        return _cache.cached_verdict(
            "zero-round-symmetric", problem, compute
        )


def zero_round_witness_symmetric(problem: Problem) -> Configuration | None:
    """The witness configuration for the symmetric-port test."""
    return _symmetric_witness(problem)


def _symmetric_witness(problem: Problem) -> Configuration | None:
    self_compatible = problem.self_compatible_labels()
    for configuration in problem.node_constraint.configurations:
        if configuration.support() <= self_compatible:
            return configuration
    return None


def randomized_zero_round_failure_bound(problem: Problem) -> Fraction:
    """Lemma 15's lower bound on the failure probability of any 0-round
    randomized PN algorithm on the symmetric-port instances.

    If every allowed node configuration contains a label that is not
    self-compatible, some configuration is output with probability at
    least ``1/|N|``; within it some port carries a non-self-compatible
    label with probability at least ``1/(|N| * Delta)``, and two
    adjacent nodes doing so simultaneously on the shared edge fail,
    giving failure probability at least ``1/(|N| * Delta)^2``.

    Returns the bound as an exact fraction, or ``Fraction(0)`` when the
    premise fails (some configuration is fully self-compatible, i.e.
    a 0-round algorithm exists and no failure is forced).
    """
    if zero_round_solvable_symmetric(problem):
        return Fraction(0)
    denominator = len(problem.node_constraint) * problem.delta
    return Fraction(1, denominator * denominator)


def lemma15_condition_holds(problem: Problem) -> bool:
    """Whether the failure bound meets Theorem 14's ``1/Delta^8`` threshold."""
    bound = randomized_zero_round_failure_bound(problem)
    if bound == 0:
        return False
    return bound >= Fraction(1, problem.delta**8)
