"""Problem simplifications, in the round-eliminator tradition.

Iterated round elimination blows problem descriptions up doubly
exponentially (paper, Sec. 1.2); *simplifications* shrink them without
making them too easy.  Two sound, fully mechanical simplifications are
implemented:

* :func:`merge_equivalent_labels` — labels mutually at-least-as-strong
  w.r.t. both constraints are interchangeable, so keeping one of them
  preserves the problem up to 0-round relabelings.

* :func:`remove_label` — dropping a label (restricting both
  constraints) can only make a problem *harder or equal*: every
  solution of the restricted problem is a solution of the original.
  This is the direction used in lower-bound sequences.
  :func:`is_safe_removal` checks the converse relabeling (weak label
  replaced by a stronger one) that keeps the restricted problem *no
  harder* than the original, i.e. the removal loses nothing.

:func:`iterate_speedup` combines the speedup with equivalence merging
and reports the trajectory — reaching a fixed point certifies an
Omega(log n)-style lower bound in the fixed-point method of Sec. 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.core.diagram import Diagram
from repro.core.problem import Problem
from repro.core.round_elimination import speedup
from repro.robustness.errors import SimplificationFailed


def equivalent_label_classes(problem: Problem) -> list[frozenset]:
    """Groups of labels interchangeable w.r.t. both constraints."""
    node_diagram = Diagram(problem.node_constraint, problem.alphabet)
    edge_diagram = Diagram(problem.edge_constraint, problem.alphabet)
    classes: list[set] = []
    # analysis: unbounded-ok(quadratic in the alphabet, already bounded by check_alphabet upstream)
    for label in problem.alphabet:
        placed = False
        for group in classes:
            representative = next(iter(group))
            if (
                node_diagram.equivalent(label, representative)
                and edge_diagram.equivalent(label, representative)
            ):
                group.add(label)
                placed = True
                break
        if not placed:
            classes.append({label})
    return [frozenset(group) for group in classes]


def merge_equivalent_labels(problem: Problem) -> Problem:
    """Collapse each equivalence class onto one representative.

    The result is the same problem up to a 0-round relabeling in both
    directions.
    """
    mapping: dict = {}
    # analysis: unbounded-ok(one pass over the label classes of a checked alphabet)
    for group in equivalent_label_classes(problem):
        representative = sorted(group, key=str)[0]
        for label in group:
            mapping[label] = representative
    kept = sorted(set(mapping.values()), key=str)
    node_constraint = problem.node_constraint.rename(mapping)
    edge_constraint = problem.edge_constraint.rename(mapping)
    return Problem(kept, node_constraint, edge_constraint, name=problem.name)


def remove_label(problem: Problem, label: Hashable) -> Problem:
    """Restrict both constraints to the alphabet without ``label``.

    The restricted problem is at least as hard as the original (its
    solutions are solutions of the original); use
    :func:`is_safe_removal` to certify it is also no harder.
    """
    remaining = [other for other in problem.alphabet if other != label]
    if not remaining:
        raise SimplificationFailed("cannot remove the last label")
    return Problem(
        remaining,
        problem.node_constraint.restrict_to(remaining),
        problem.edge_constraint.restrict_to(remaining),
        name=problem.name,
    )


def is_safe_removal(problem: Problem, weak: Hashable, strong: Hashable) -> bool:
    """Whether rewriting ``weak`` as ``strong`` never breaks a solution.

    True when ``strong`` is at least as strong as ``weak`` w.r.t. both
    constraints — then any solution of the original converts, in 0
    rounds, into a solution avoiding ``weak``, so removing ``weak``
    keeps the problem's complexity unchanged.
    """
    node_diagram = Diagram(problem.node_constraint, problem.alphabet)
    edge_diagram = Diagram(problem.edge_constraint, problem.alphabet)
    return node_diagram.at_least_as_strong(
        strong, weak
    ) and edge_diagram.at_least_as_strong(strong, weak)


@dataclass
class SpeedupTrajectory:
    """The problems visited by iterated simplified speedup."""

    problems: list[Problem]
    reached_fixed_point: bool

    @property
    def steps(self) -> int:
        """Number of speedup steps performed."""
        return len(self.problems) - 1


def certified_upper_bound(problem: Problem, max_steps: int = 5) -> int | None:
    """An upper bound via round elimination (the Sec. 1.2 upper-bound use).

    Theorem 3 is an equivalence: if the ``t``-th iterate of the speedup
    is 0-round solvable in the PN model, the original problem is
    solvable in ``t`` rounds on graphs of girth at least ``2t + 2``.
    Returns the smallest such ``t`` within ``max_steps``, or ``None``.
    """
    from repro.core.solvability import zero_round_solvable_pn

    current = problem
    for step in range(max_steps + 1):
        if zero_round_solvable_pn(current):
            return step
        if step == max_steps:
            return None
        current = merge_equivalent_labels(speedup(current).problem)
    return None


def iterate_speedup(problem: Problem, max_steps: int = 5) -> SpeedupTrajectory:
    """Iterate Rbar(R(.)) with equivalence merging after each step.

    Stops early when two consecutive problems are isomorphic (a fixed
    point — the strongest outcome round elimination can certify, as for
    sinkless orientation [14]).
    """
    problems = [problem]
    for _ in range(max_steps):
        next_problem = merge_equivalent_labels(speedup(problems[-1]).problem)
        problems.append(next_problem)
        if next_problem.is_isomorphic(problems[-2]):
            return SpeedupTrajectory(problems=problems, reached_fixed_point=True)
    return SpeedupTrajectory(problems=problems, reached_fixed_point=False)
