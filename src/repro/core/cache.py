"""Content-addressed operator cache for the round-elimination pipeline.

Every ``run_chain`` / ``build_certificate`` invocation replays the same
deterministic R / Rbar steps: the Lemma 13 chain for a given
``(Delta, x)`` is a fixed sequence, and the same problems recur across
chains, benchmarks, goldens, and CI.  This module memoizes the
expensive operators behind a *renaming-invariant* fingerprint, so a
result computed once is reused for every isomorphic copy of the same
problem — across engines (the reference and kernel engines return
identical objects by contract), across processes (opt-in on-disk tier),
and across label renamings.

Canonical form
==============

:func:`canonical_form` orders the alphabet canonically: labels start in
the partition induced by :meth:`Problem._label_signature`, the
partition is refined Weisfeiler-Leman style (each round re-colors a
label by the color multisets of its node-configuration co-occurrences
and of its edge-compatible labels), and remaining ties are broken by
enumerating the permutations within each color block and keeping the
lexicographically smallest constraint encoding.  The encoding —
alphabet size plus both constraints over canonical integer ids — fully
determines the problem up to renaming, so two problems share a
fingerprint *exactly* when they are isomorphic (property-tested against
:meth:`Problem.find_isomorphism` in ``tests/test_cache.py``).

Result transport
================

The labels of ``R(P)`` / ``Rbar(P)`` are frozensets of *input* labels,
so a cached result is stored in canonical coordinates (each output
label as a sorted list of canonical input ids) and transported back
through the inverse canonical order on a hit.  Both operators are
equivariant under label bijections, which makes the transport sound;
the decoded alphabet is re-sorted with the same ``_set_sort_key`` the
engines use, so downstream renaming is byte-identical to a cold run.

Failure caching: an :class:`InvalidProblem` raised by an operator is a
*verdict* about the problem (its context carries only
renaming-invariant counts) and is cached and re-raised on hits.
Budget trips (:class:`BudgetExceeded` and friends) depend on the
ambient budget, never on the problem alone, and are never cached.

Two tiers
=========

:class:`OperatorCache` keeps a bounded in-process LRU plus an opt-in
on-disk store (``REPRO_CACHE_DIR`` or ``~/.cache/repro``).  Disk
entries reuse the sealed atomic checkpoint format of
:mod:`repro.core.io`: a torn or tampered entry fails its SHA-256 seal,
is evicted, and the result is recomputed — corruption is never trusted.
Keys are ``{operator}-v{ENGINE_VERSION}-{fingerprint}``; bumping
:data:`ENGINE_VERSION` invalidates every stored entry at once.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.io import (
    canonical_json,
    payload_digest,
    read_json_checkpoint,
    write_json_checkpoint,
)
from repro.core.labels import Alphabet, render_label
from repro.core.problem import Problem
from repro.observability import trace as _trace
from repro.robustness import budget as _budget
from repro.robustness.errors import CheckpointCorrupt, EngineMisuse, InvalidProblem

#: Bump to invalidate every cached operator result at once (key schema
#: includes it, so stale entries are simply never looked up again).
ENGINE_VERSION = 1


def _set_sort_key(labels: frozenset) -> tuple:
    return (len(labels), sorted(render_label(label) for label in labels))


# ---------------------------------------------------------------------------
# Canonical form and fingerprint
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalForm:
    """A problem's renaming-invariant identity.

    ``order[i]`` is the actual label with canonical id ``i``;
    ``encoding`` is the constraint structure over canonical ids;
    ``digest`` is the content address (SHA-256 of the encoding).
    """

    order: tuple
    encoding: tuple
    digest: str


def _encode_constraints(problem: Problem, index: dict) -> tuple:
    node = tuple(sorted(
        tuple(sorted(index[label] for label in configuration.items))
        for configuration in problem.node_constraint.configurations
    ))
    edge = tuple(sorted(
        tuple(sorted(index[label] for label in configuration.items))
        for configuration in problem.edge_constraint.configurations
    ))
    return (len(problem.alphabet), node, edge)


def _refined_colors(problem: Problem, labels: list) -> dict:
    """Stable WL-style coloring, invariant under label renaming."""
    signatures = {label: problem._label_signature(label) for label in labels}
    ranked = sorted(set(signatures.values()))
    color = {label: ranked.index(signatures[label]) for label in labels}
    # analysis: unbounded-ok(WL refinement strictly coarsens until stable, at most len(labels) rounds)
    while True:
        profiles = {}
        for label in labels:
            node_profile = tuple(sorted(
                tuple(sorted(color[member] for member in configuration.items))
                for configuration in
                problem.node_constraint.configurations_containing(label)
            ))
            compat_profile = tuple(sorted(
                color[member] for member in problem.compatible_labels(label)
            ))
            profiles[label] = (color[label], node_profile, compat_profile)
        ranked_profiles = sorted(set(profiles.values()))
        refined = {
            label: ranked_profiles.index(profiles[label]) for label in labels
        }
        if len(set(refined.values())) == len(set(color.values())):
            return refined
        color = refined


def _block_orders(blocks: list[list]) -> Iterator[list]:
    """All label orders that respect the block sequence."""
    for arrangement in itertools.product(
        *(itertools.permutations(block) for block in blocks)
    ):
        yield [label for block in arrangement for label in block]


def canonical_form(problem: Problem) -> CanonicalForm:
    """The canonical form, memoized on the problem instance."""
    cached = problem._canonical_cache
    if cached is not None:
        return cached
    labels = list(problem.alphabet)
    color = _refined_colors(problem, labels)
    blocks_by_color: dict[int, list] = {}
    for label in labels:
        blocks_by_color.setdefault(color[label], []).append(label)
    blocks = [blocks_by_color[key] for key in sorted(blocks_by_color)]
    best_encoding: tuple | None = None
    best_order: list | None = None
    for order in _block_orders(blocks):
        _budget.checkpoint(phase="canonicalization")
        index = {label: position for position, label in enumerate(order)}
        encoding = _encode_constraints(problem, index)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_order = order
    form = CanonicalForm(
        order=tuple(best_order),
        encoding=best_encoding,
        digest=payload_digest(best_encoding),
    )
    problem._canonical_cache = form
    return form


def fingerprint(problem: Problem) -> str:
    """The renaming-invariant content address of ``problem``.

    Equal for two problems exactly when they are isomorphic.
    """
    return canonical_form(problem).digest


def cached_fingerprint(problem: Problem) -> str | None:
    """The fingerprint if the canonical form is already memoized.

    Never computes anything — in particular it fires no
    canonicalization budget checkpoints — so callers on hot or
    budget-sensitive paths (the kernel's transport registry) can probe
    identity for free and fall back to a full build on ``None``.
    """
    form = problem._canonical_cache
    return None if form is None else form.digest


def structure_key(problem: Problem) -> tuple:
    """A cheap renaming-invariant pre-key (necessary, not sufficient).

    Equal fingerprints imply equal structure keys, but not conversely —
    the key is built from constraint shape counts alone, with no
    canonicalization.  The kernel's transport registry
    (:mod:`repro.core.kernel.interning`) uses it as a filter: only when
    a previously interned problem shares the structure key is the full
    (block-permuting, hence potentially expensive) :func:`fingerprint`
    computed to confirm isomorphism.
    """
    node_shape = tuple(sorted(
        (configuration.arity, len(set(configuration.items)))
        for configuration in problem.node_constraint.configurations
    ))
    edge_shape = tuple(sorted(
        (configuration.arity, len(set(configuration.items)))
        for configuration in problem.edge_constraint.configurations
    ))
    return (len(problem.alphabet), problem.delta, node_shape, edge_shape)


# ---------------------------------------------------------------------------
# Result codecs (canonical coordinates <-> actual labels)
# ---------------------------------------------------------------------------

def _encode_result(result: Problem, index: dict) -> dict:
    """A set-label operator result in the input's canonical coordinates."""
    ids_of = {
        label: tuple(sorted(index[member] for member in label))
        for label in result.alphabet
    }
    ordered = sorted(ids_of.values())
    position = {ids: slot for slot, ids in enumerate(ordered)}

    def constraint_rows(constraint: Constraint) -> list[list[int]]:
        return sorted(
            sorted(position[ids_of[label]] for label in configuration.items)
            for configuration in constraint.configurations
        )

    return {
        "labels": [list(ids) for ids in ordered],
        "node": constraint_rows(result.node_constraint),
        "edge": constraint_rows(result.edge_constraint),
    }


def _decode_result(payload: dict, order: tuple, name: str) -> Problem:
    out_labels = [
        frozenset(order[label_id] for label_id in ids)
        for ids in payload["labels"]
    ]
    node = Constraint(
        Configuration(out_labels[slot] for slot in row)
        for row in payload["node"]
    )
    edge = Constraint(
        Configuration(out_labels[slot] for slot in row)
        for row in payload["edge"]
    )
    sigma = sorted(out_labels, key=_set_sort_key)
    return Problem(Alphabet(sigma), node, edge, name=name)


# ---------------------------------------------------------------------------
# The two-tier store
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class OperatorCache:
    """In-process LRU plus an optional sealed on-disk JSON store."""

    def __init__(
        self, directory: str | Path | None = None, *, max_entries: int = 4096
    ) -> None:
        self.directory = Path(directory).expanduser() if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stored_bytes = 0
        self.corrupt_evictions = 0

    def path_for(self, key: str) -> Path:
        if self.directory is None:
            raise EngineMisuse("cache has no on-disk tier")
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on a miss.

        A disk entry that fails its integrity seal is evicted and
        reported as a miss — corruption is recomputed, never trusted.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
        elif self.directory is not None:
            path = self.path_for(key)
            if path.exists():
                try:
                    payload = read_json_checkpoint(path)
                except CheckpointCorrupt:
                    self.corrupt_evictions += 1
                    _trace.add("cache.corrupt")
                    _trace.event("cache.corrupt", key=key)
                    try:
                        path.unlink()
                    except OSError:
                        pass
        if payload is None:
            self.misses += 1
            _trace.add("cache.miss")
            return None
        self.hits += 1
        _trace.add("cache.hit")
        self._remember(key, payload)
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Store ``payload`` in both tiers (atomically on disk)."""
        self._remember(key, payload)
        size = len(canonical_json(payload).encode("utf-8"))
        self.stored_bytes += size
        _trace.add("cache.bytes", size)
        if self.directory is not None:
            write_json_checkpoint(self.path_for(key), payload)

    def _remember(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored_bytes": self.stored_bytes,
            "corrupt_evictions": self.corrupt_evictions,
            "memory_entries": len(self._memory),
        }

    def summary_line(self) -> str:
        return (
            f"cache: hits={self.hits} misses={self.misses} "
            f"stored_bytes={self.stored_bytes}"
        )


_ACTIVE_CACHE: ContextVar[OperatorCache | None] = ContextVar(
    "repro_active_cache", default=None
)


def active_cache() -> OperatorCache | None:
    """The ambient cache installed by :func:`caching`, if any."""
    return _ACTIVE_CACHE.get()


@contextmanager
def caching(cache: OperatorCache | None) -> Iterator[OperatorCache | None]:
    """Install ``cache`` as the ambient operator cache.

    ``caching(None)`` is a no-op passthrough, mirroring the ambient
    budget and tracer helpers.
    """
    if cache is None:
        yield None
        return
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def cache_key(operator: str, digest: str) -> str:
    """``(operator, engine_version, fingerprint)`` as a flat key."""
    return f"{operator}-v{ENGINE_VERSION}-{digest}"


# ---------------------------------------------------------------------------
# Memoized operator wrappers
# ---------------------------------------------------------------------------

def _operator_name(operator: str, problem: Problem) -> str:
    return f"{operator}({problem.name})" if problem.name else operator


def cached_problem_operator(
    operator: str, problem: Problem, compute: Callable[[], Problem]
) -> Problem:
    """Memoize a set-label operator (R / Rbar) through the ambient cache.

    On a miss the operator runs unchanged and the result is stored in
    canonical coordinates; on a hit the stored result is transported
    back into the actual label space of ``problem``.  A cached
    :class:`InvalidProblem` verdict is re-raised with its original
    message and context.
    """
    cache = active_cache()
    if cache is None:
        return compute()
    form = canonical_form(problem)
    key = cache_key(operator, form.digest)
    payload = cache.lookup(key)
    if payload is not None:
        error = payload.get("error")
        if error is not None:
            raise InvalidProblem(error["message"], **error["context"])
        return _decode_result(
            payload, form.order, _operator_name(operator, problem)
        )
    try:
        result = compute()
    except InvalidProblem as error:
        cache.store(
            key,
            {"error": {"message": error.message, "context": error.context}},
        )
        raise
    index = {label: position for position, label in enumerate(form.order)}
    cache.store(key, _encode_result(result, index))
    return result


def _encode_condensation(result: Problem, index: dict) -> dict:
    """A condensation result in the input's canonical coordinates.

    Unlike :func:`_encode_result`, the labels of a condensed problem
    are (surviving) *input* labels, so the payload stores their
    canonical ids directly rather than id sets.
    """
    def constraint_rows(constraint: Constraint) -> list[list[int]]:
        return sorted(
            sorted(index[label] for label in configuration.items)
            for configuration in constraint.configurations
        )

    return {
        "labels": sorted(index[label] for label in result.alphabet),
        "node": constraint_rows(result.node_constraint),
        "edge": constraint_rows(result.edge_constraint),
    }


def _decode_condensation(payload: dict, problem: Problem, order: tuple) -> Problem:
    survivors = frozenset(order[label_id] for label_id in payload["labels"])
    sigma = [label for label in problem.alphabet if label in survivors]
    node = Constraint(
        Configuration(order[label_id] for label_id in row)
        for row in payload["node"]
    )
    edge = Constraint(
        Configuration(order[label_id] for label_id in row)
        for row in payload["edge"]
    )
    return Problem(Alphabet(sigma), node, edge, name=problem.name)


def cached_condensation(
    problem: Problem, compute: Callable[[], Problem]
) -> Problem:
    """Memoize :func:`repro.core.self_reduction.condense_problem`.

    The condensation keeps a subset of the *input* labels (it never
    invents set labels), so the payload stores surviving canonical ids
    plus the restricted constraint rows; a hit transports them back
    through the inverse canonical order and re-sorts the alphabet in
    the input problem's own order — byte-identical to a cold run, which
    is sound because every condensation decision is keyed by canonical
    ids (the operator is a pure function of the canonical encoding).
    """
    cache = active_cache()
    if cache is None:
        return compute()
    form = canonical_form(problem)
    key = cache_key("condense", form.digest)
    payload = cache.lookup(key)
    if payload is not None:
        return _decode_condensation(payload, problem, form.order)
    result = compute()
    index = {label: position for position, label in enumerate(form.order)}
    cache.store(key, _encode_condensation(result, index))
    return result


def cached_verdict(
    operator: str, problem: Problem, compute: Callable[[], bool]
) -> bool:
    """Memoize a boolean predicate (zero-round solvability verdicts)."""
    cache = active_cache()
    if cache is None:
        return compute()
    key = cache_key(operator, fingerprint(problem))
    payload = cache.lookup(key)
    if payload is not None:
        return bool(payload["value"])
    value = bool(compute())
    cache.store(key, {"value": value})
    return value


def cached_relabeling(
    source: Problem, target: Problem, compute: Callable[[], dict | None]
) -> dict | None:
    """Memoize :func:`repro.core.relaxation.find_label_relabeling`.

    Keyed by the fingerprint *pair*; the witness is stored as canonical
    id pairs and transported through both canonical orders on a hit, so
    it stays a valid relabeling for any isomorphic source/target pair.
    """
    cache = active_cache()
    if cache is None:
        return compute()
    source_form = canonical_form(source)
    target_form = canonical_form(target)
    key = cache_key("relabel", f"{source_form.digest}-{target_form.digest}")
    payload = cache.lookup(key)
    if payload is not None:
        witness = payload["witness"]
        if witness is None:
            return None
        return {
            source_form.order[source_id]: target_form.order[target_id]
            for source_id, target_id in witness
        }
    witness = compute()
    if witness is None:
        cache.store(key, {"witness": None})
    else:
        source_index = {
            label: position
            for position, label in enumerate(source_form.order)
        }
        target_index = {
            label: position
            for position, label in enumerate(target_form.order)
        }
        cache.store(
            key,
            {
                "witness": sorted(
                    [source_index[a], target_index[b]]
                    for a, b in witness.items()
                )
            },
        )
    return witness


__all__ = [
    "ENGINE_VERSION",
    "CanonicalForm",
    "canonical_form",
    "fingerprint",
    "cached_fingerprint",
    "structure_key",
    "default_cache_dir",
    "OperatorCache",
    "active_cache",
    "caching",
    "cache_key",
    "cached_problem_operator",
    "cached_condensation",
    "cached_verdict",
    "cached_relabeling",
]
