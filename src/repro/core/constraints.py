"""Node and edge constraints: collections of configurations.

A constraint is a finite set of :class:`~repro.core.configurations.Configuration`
objects that all share one arity (Delta for node constraints, 2 for edge
constraints).  Constraints can be built from the paper's condensed
syntax, queried for containment, restricted, renamed, and rendered back
in a compact condensed-ish form.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.core.configurations import (
    CondensedConfiguration,
    Configuration,
    parse_condensed,
)
from repro.robustness.errors import InvalidProblem


class Constraint:
    """An arity-homogeneous set of configurations."""

    __slots__ = ("_configurations", "_arity")

    def __init__(self, configurations: Iterable[Configuration]) -> None:
        self._configurations: frozenset[Configuration] = frozenset(configurations)
        if not self._configurations:
            raise InvalidProblem("a constraint must allow at least one configuration")
        arities = {configuration.arity for configuration in self._configurations}
        if len(arities) != 1:
            raise InvalidProblem(f"mixed arities in constraint: {sorted(arities)}")
        (self._arity,) = arities

    @classmethod
    def from_condensed(
        cls, condensed: Iterable[CondensedConfiguration | str]
    ) -> "Constraint":
        """Build a constraint from condensed configurations or strings.

        Example::

            Constraint.from_condensed(["M^3", "P O^2"])   # MIS with Delta=3
        """
        configurations: set[Configuration] = set()
        for item in condensed:
            if isinstance(item, str):
                item = parse_condensed(item)
            configurations |= item.expand()
        return cls(configurations)

    def __iter__(self) -> Iterator[Configuration]:
        return iter(sorted(self._configurations, key=lambda c: c.render()))

    def __len__(self) -> int:
        return len(self._configurations)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._configurations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._configurations == other._configurations

    def __hash__(self) -> int:
        return hash(self._configurations)

    def __repr__(self) -> str:
        body = "; ".join(configuration.render() for configuration in self)
        return f"Constraint(arity={self._arity}: {body})"

    @property
    def arity(self) -> int:
        """Common arity of all configurations."""
        return self._arity

    @property
    def configurations(self) -> frozenset[Configuration]:
        """The allowed configurations."""
        return self._configurations

    def labels_used(self) -> frozenset:
        """All labels appearing in at least one configuration."""
        used: set[Hashable] = set()
        for configuration in self._configurations:
            used |= configuration.support()
        return frozenset(used)

    def allows(self, labels: Iterable[Hashable]) -> bool:
        """Whether the multiset of ``labels`` forms an allowed configuration."""
        return Configuration(labels) in self._configurations

    def configurations_containing(self, label: Hashable) -> frozenset[Configuration]:
        """The allowed configurations in which ``label`` occurs."""
        return frozenset(
            configuration
            for configuration in self._configurations
            if label in configuration
        )

    def restrict_to(self, labels: Iterable[Hashable]) -> "Constraint":
        """Keep only configurations whose labels all lie in ``labels``."""
        allowed = frozenset(labels)
        kept = [
            configuration
            for configuration in self._configurations
            if configuration.support() <= allowed
        ]
        return Constraint(kept)

    def rename(self, mapping: dict) -> "Constraint":
        """Apply a label renaming to every configuration."""
        return Constraint(
            configuration.replace_all(mapping) for configuration in self._configurations
        )

    def union(self, other: "Constraint") -> "Constraint":
        """Constraint allowing the configurations of either operand."""
        if other.arity != self._arity:
            raise InvalidProblem("cannot union constraints of different arities")
        return Constraint(self._configurations | other._configurations)

    def is_subset_of(self, other: "Constraint") -> bool:
        """Whether every configuration allowed here is allowed in ``other``."""
        return self._configurations <= other._configurations

    def render(self) -> str:
        """One configuration per line, in canonical order."""
        return "\n".join(configuration.render() for configuration in self)
