"""Labels and alphabets for the round-elimination framework.

A *label* is any hashable value.  Problems written by hand use plain
strings (``"M"``, ``"P"``, ...).  Problems produced by the round
elimination operators :func:`repro.core.round_elimination.R` and
:func:`repro.core.round_elimination.Rbar` use ``frozenset`` labels (sets
of labels of the previous problem, exactly as in the paper's Section
2.3); :func:`repro.core.round_elimination.rename_to_strings` maps them
back to compact string labels, mirroring the renaming steps of Lemma 6
and Lemma 8.
"""

from __future__ import annotations

import string
from collections.abc import Hashable, Iterable, Iterator
from repro.robustness.errors import InvalidProblem

#: A label as produced by one application of R / R-bar: a set of labels
#: of the previous problem.
LabelSet = frozenset

#: Pool of single-character names used when auto-renaming set labels.
DEFAULT_NAME_POOL = tuple(string.ascii_uppercase + string.ascii_lowercase)


def render_label(label: Hashable) -> str:
    """Render a single label for display.

    String labels render as themselves, with parentheses added around
    multi-character names so that rendered configurations can be parsed
    back unambiguously.  ``frozenset`` labels render as the sorted
    concatenation of their members in angle brackets, e.g.
    ``<MOX>`` for ``frozenset({"M", "O", "X"})``.
    """
    if isinstance(label, frozenset):
        return "<" + "".join(sorted(render_label(member) for member in label)) + ">"
    text = str(label)
    if len(text) == 1:
        return text
    return "(" + text + ")"


def render_label_set(labels: Iterable[Hashable]) -> str:
    """Render a collection of labels as a sorted, bracketed disjunction."""
    rendered = sorted(render_label(label) for label in labels)
    return "[" + "".join(rendered) + "]"


class Alphabet:
    """An ordered collection of distinct labels.

    The order is the insertion order; it only affects rendering and
    iteration, never semantics.  Alphabets are immutable.
    """

    __slots__ = ("_labels", "_index")

    def __init__(self, labels: Iterable[Hashable]) -> None:
        seen: dict[Hashable, int] = {}
        ordered: list[Hashable] = []
        for label in labels:
            if label in seen:
                raise InvalidProblem(f"duplicate label {label!r} in alphabet")
            seen[label] = len(ordered)
            ordered.append(label)
        self._labels: tuple[Hashable, ...] = tuple(ordered)
        self._index: dict[Hashable, int] = seen

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return set(self._labels) == set(other._labels)

    def __hash__(self) -> int:
        return hash(frozenset(self._labels))

    def __repr__(self) -> str:
        return "Alphabet(" + ", ".join(render_label(label) for label in self._labels) + ")"

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """The labels in insertion order."""
        return self._labels

    def index(self, label: Hashable) -> int:
        """Position of ``label`` in the alphabet (insertion order)."""
        return self._index[label]

    def sort_key(self, label: Hashable) -> tuple[int, str]:
        """A key sorting labels by alphabet order; unknown labels last."""
        return (self._index.get(label, len(self._labels)), render_label(label))

    def union(self, other: "Alphabet") -> "Alphabet":
        """Alphabet containing the labels of both operands."""
        merged = list(self._labels)
        merged.extend(label for label in other if label not in self._index)
        return Alphabet(merged)


def fresh_names(count: int, taken: Iterable[str] = ()) -> list[str]:
    """Return ``count`` short string names not colliding with ``taken``.

    Single characters are preferred; once the pool is exhausted the
    names continue as ``L0``, ``L1``, ...
    """
    taken_set = set(taken)
    names: list[str] = []
    for candidate in DEFAULT_NAME_POOL:
        if len(names) == count:
            return names
        if candidate not in taken_set:
            names.append(candidate)
            taken_set.add(candidate)
    counter = 0
    while len(names) < count:
        candidate = f"L{counter}"
        if candidate not in taken_set:
            names.append(candidate)
            taken_set.add(candidate)
        counter += 1
    return names
