"""Label-strength diagrams and right-closed sets (paper, Sec. 2.3).

Label A is *at least as strong as* label B with respect to a constraint
C if replacing one occurrence of B by A in any allowed configuration of
C again yields an allowed configuration.  The *diagram* is the directed
graph on labels whose edges are the transitive reduction of the strict
"stronger than" relation, drawn from weaker to stronger — exactly the
edge diagram of Figure 1/4 and the node diagram of Figure 5.

A set of labels is *right-closed* if it contains, with every label, all
stronger labels.  By Observation 4 of the paper the alphabet produced
by one round-elimination step consists of right-closed sets only, which
is what makes the maximization step tractable.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING

from repro.core.constraints import Constraint
from repro.core.labels import render_label
from repro.robustness import budget as _budget
from repro.robustness.errors import InvalidProblem

if TYPE_CHECKING:
    from repro.core.problem import Problem


class Diagram:
    """The strength preorder of an alphabet w.r.t. one constraint."""

    __slots__ = ("_labels", "_ge")

    def __init__(self, constraint: Constraint, labels: Iterable[Hashable]) -> None:
        self._labels: tuple[Hashable, ...] = tuple(labels)
        self._ge: dict[tuple[Hashable, Hashable], bool] = {}
        for strong, weak in itertools.product(self._labels, repeat=2):
            self._ge[(strong, weak)] = _at_least_as_strong(constraint, strong, weak)

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """The labels the diagram is defined over."""
        return self._labels

    def _lookup(self, strong: Hashable, weak: Hashable) -> bool:
        try:
            return self._ge[(strong, weak)]
        except KeyError:
            known = set(self._labels)
            missing = next(
                label for label in (strong, weak) if label not in known
            )
            raise InvalidProblem(
                f"label {render_label(missing)} is missing from the diagram",
                label=render_label(missing),
                diagram_labels=len(self._labels),
            ) from None

    def at_least_as_strong(self, strong: Hashable, weak: Hashable) -> bool:
        """Whether ``strong`` is at least as strong as ``weak``."""
        return self._lookup(strong, weak)

    def stronger(self, strong: Hashable, weak: Hashable) -> bool:
        """Strict strength: ``strong`` >= ``weak`` but not conversely."""
        return self._lookup(strong, weak) and not self._lookup(weak, strong)

    def equivalent(self, first: Hashable, second: Hashable) -> bool:
        """Mutual strength (the labels are interchangeable on edges)."""
        return self._lookup(first, second) and self._lookup(second, first)

    def successors(self, label: Hashable) -> frozenset:
        """All labels strictly stronger than ``label``."""
        return frozenset(
            other for other in self._labels if other != label and self.stronger(other, label)
        )

    def predecessors(self, label: Hashable) -> frozenset:
        """All labels strictly weaker than ``label``."""
        return frozenset(
            other for other in self._labels if other != label and self.stronger(label, other)
        )

    def hasse_edges(self) -> frozenset[tuple[Hashable, Hashable]]:
        """Transitive reduction of the strict order, as (weak, strong) pairs.

        This is exactly what the paper draws in Figures 1, 4 and 5:
        an edge from A to B when B is stronger than A and no label sits
        strictly between them.
        """
        edges: set[tuple[Hashable, Hashable]] = set()
        for weak, strong in itertools.permutations(self._labels, 2):
            if not self.stronger(strong, weak):
                continue
            if any(
                self.stronger(middle, weak) and self.stronger(strong, middle)
                for middle in self._labels
                if middle not in (weak, strong)
            ):
                continue
            edges.add((weak, strong))
        return frozenset(edges)

    def is_right_closed(self, labels: Iterable[Hashable]) -> bool:
        """Whether ``labels`` contains all successors of its members."""
        label_set = frozenset(labels)
        return all(self.successors(label) <= label_set for label in label_set)

    def right_closed_sets(self) -> list[frozenset]:
        """All non-empty right-closed subsets of the alphabet.

        Enumerated as upward closures of antichains; for the constant
        alphabets of the paper (at most 8 labels) a filtered powerset
        scan is fast and simple, so that is what we do.
        """
        result = []
        checked = 0
        for size in range(1, len(self._labels) + 1):
            # Stride the probe: paper-sized alphabets stay silent,
            # runaway enumeration is caught within 64 sets.
            if len(result) - checked >= 64:
                checked = len(result)
                _budget.check_configurations(
                    len(result), phase="right-closed-sets"
                )
            for subset in itertools.combinations(self._labels, size):
                if self.is_right_closed(subset):
                    result.append(frozenset(subset))
        return result

    def render(self) -> str:
        """The Hasse edges as ``A -> B`` lines (weak to strong)."""
        lines = [
            f"{render_label(weak)} -> {render_label(strong)}"
            for weak, strong in sorted(
                self.hasse_edges(),
                key=lambda edge: (render_label(edge[0]), render_label(edge[1])),
            )
        ]
        isolated = [
            render_label(label)
            for label in self._labels
            if not self.successors(label) and not self.predecessors(label)
        ]
        if isolated:
            lines.append("isolated: " + " ".join(sorted(isolated)))
        return "\n".join(lines)


def _at_least_as_strong(constraint: Constraint, strong: Hashable, weak: Hashable) -> bool:
    """The paper's replacement test, applied to every configuration."""
    if strong == weak:
        return True
    for configuration in constraint.configurations_containing(weak):
        if configuration.replace_one(weak, strong) not in constraint:
            return False
    return True


def edge_diagram(problem: Problem) -> Diagram:
    """The diagram of a problem w.r.t. its edge constraint (Fig. 1, 4)."""
    return Diagram(problem.edge_constraint, problem.alphabet)


def node_diagram(problem: Problem) -> Diagram:
    """The diagram of a problem w.r.t. its node constraint (Fig. 5)."""
    return Diagram(problem.node_constraint, problem.alphabet)


def right_closed_sets(constraint: Constraint, labels: Iterable[Hashable]) -> list[frozenset]:
    """Non-empty right-closed subsets of ``labels`` w.r.t. ``constraint``."""
    return Diagram(constraint, labels).right_closed_sets()
