"""Problem serialization: text (round-eliminator style) and JSON.

The text format mirrors the paper's listings and the round-eliminator
tool's input: node configurations one per line, a blank line, then edge
configurations.  Multi-character labels are parenthesized.  JSON keeps
the structure explicit for tooling.
"""

from __future__ import annotations

import json

from repro.core.configurations import Configuration
from repro.core.labels import render_label
from repro.core.problem import Problem


def problem_to_text(problem: Problem) -> str:
    """Serialize as node lines, a blank line, and edge lines."""
    lines = [configuration.render() for configuration in problem.node_constraint]
    lines.append("")
    lines.extend(configuration.render() for configuration in problem.edge_constraint)
    return "\n".join(lines)


def problem_from_text(text: str, name: str = "") -> Problem:
    """Parse the text format back into a problem.

    The first blank line separates node from edge configurations; only
    string labels round-trip (set labels should be renamed first with
    :func:`repro.core.round_elimination.rename_to_strings`).
    """
    node_lines: list[str] = []
    edge_lines: list[str] = []
    current = node_lines
    seen_blank = False
    for line in text.splitlines():
        if not line.strip():
            if node_lines and not seen_blank:
                current = edge_lines
                seen_blank = True
            continue
        current.append(line.strip())
    if not node_lines or not edge_lines:
        raise ValueError("expected node lines, a blank line, then edge lines")
    return Problem.from_text(node_lines, edge_lines, name=name)


def problem_to_json(problem: Problem) -> str:
    """Serialize as JSON with explicit label lists per configuration."""
    def config_labels(configuration: Configuration) -> list[str]:
        return [str(label) for label in configuration.items]

    payload = {
        "name": problem.name,
        "delta": problem.delta,
        "alphabet": [str(label) for label in problem.alphabet],
        "node_constraint": sorted(
            config_labels(c) for c in problem.node_constraint.configurations
        ),
        "edge_constraint": sorted(
            config_labels(c) for c in problem.edge_constraint.configurations
        ),
    }
    return json.dumps(payload, indent=2)


def problem_from_json(text: str) -> Problem:
    """Parse the JSON format back into a problem."""
    payload = json.loads(text)
    from repro.core.constraints import Constraint

    node_constraint = Constraint(
        Configuration(labels) for labels in payload["node_constraint"]
    )
    edge_constraint = Constraint(
        Configuration(labels) for labels in payload["edge_constraint"]
    )
    return Problem(
        payload["alphabet"],
        node_constraint,
        edge_constraint,
        name=payload.get("name", ""),
    )


def roundtrip_safe(problem: Problem) -> bool:
    """Whether the problem survives a text round trip unchanged.

    True exactly when all labels are strings whose rendering parses
    back (single characters or parenthesizable names).
    """
    try:
        return problem_from_text(problem_to_text(problem)) == problem
    except ValueError:
        return False


__all__ = [
    "problem_to_text",
    "problem_from_text",
    "problem_to_json",
    "problem_from_json",
    "roundtrip_safe",
    "render_label",
]
