"""Problem serialization: text (round-eliminator style) and JSON.

The text format mirrors the paper's listings and the round-eliminator
tool's input: node configurations one per line, a blank line, then edge
configurations.  Multi-character labels are parenthesized.  JSON keeps
the structure explicit for tooling.

This module also provides the on-disk checkpoint primitives used by
:mod:`repro.robustness.checkpointing`: atomic JSON writes (temp file +
rename, so a kill mid-write never leaves a half-written checkpoint)
sealed with a SHA-256 digest of the canonical payload, and reads that
raise :class:`~repro.robustness.errors.CheckpointCorrupt` on any
tampering, truncation, or parse failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.core.configurations import Configuration
from repro.core.labels import render_label
from repro.core.problem import Problem
from repro.robustness.errors import CheckpointCorrupt, InvalidProblem


def problem_to_text(problem: Problem) -> str:
    """Serialize as node lines, a blank line, and edge lines."""
    lines = [configuration.render() for configuration in problem.node_constraint]
    lines.append("")
    lines.extend(configuration.render() for configuration in problem.edge_constraint)
    return "\n".join(lines)


def problem_from_text(text: str, name: str = "") -> Problem:
    """Parse the text format back into a problem.

    The first blank line separates node from edge configurations; only
    string labels round-trip (set labels should be renamed first with
    :func:`repro.core.round_elimination.rename_to_strings`).
    """
    node_lines: list[str] = []
    edge_lines: list[str] = []
    current = node_lines
    seen_blank = False
    for line in text.splitlines():
        if not line.strip():
            if node_lines and not seen_blank:
                current = edge_lines
                seen_blank = True
            continue
        current.append(line.strip())
    if not node_lines or not edge_lines:
        raise InvalidProblem("expected node lines, a blank line, then edge lines")
    return Problem.from_text(node_lines, edge_lines, name=name)


def problem_to_json(problem: Problem) -> str:
    """Serialize as JSON with explicit label lists per configuration."""
    def config_labels(configuration: Configuration) -> list[str]:
        return [str(label) for label in configuration.items]

    payload = {
        "name": problem.name,
        "delta": problem.delta,
        "alphabet": [str(label) for label in problem.alphabet],
        "node_constraint": sorted(
            config_labels(c) for c in problem.node_constraint.configurations
        ),
        "edge_constraint": sorted(
            config_labels(c) for c in problem.edge_constraint.configurations
        ),
    }
    return json.dumps(payload, indent=2)


def problem_from_json(text: str) -> Problem:
    """Parse the JSON format back into a problem."""
    payload = json.loads(text)
    from repro.core.constraints import Constraint

    node_constraint = Constraint(
        Configuration(labels) for labels in payload["node_constraint"]
    )
    edge_constraint = Constraint(
        Configuration(labels) for labels in payload["edge_constraint"]
    )
    return Problem(
        payload["alphabet"],
        node_constraint,
        edge_constraint,
        name=payload.get("name", ""),
    )


# ---------------------------------------------------------------------------
# Checkpoint files: atomic, integrity-sealed JSON
# ---------------------------------------------------------------------------

def canonical_json(payload: object) -> str:
    """Canonical (sorted-key, minimal-separator) JSON for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: object) -> str:
    """The SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def write_json_checkpoint(path: str | os.PathLike, payload: object) -> None:
    """Atomically write ``payload`` to ``path`` with an integrity seal.

    The document is ``{"sha256": <digest>, "payload": <payload>}``;
    the write goes through a temp file in the same directory followed
    by ``os.replace``, so readers only ever see the old file or the
    complete new one — never a torn write.
    """
    document = json.dumps(
        {"sha256": payload_digest(payload), "payload": payload},
        sort_keys=True,
        indent=1,
    )
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    handle, temporary = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(document)
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


def read_json_checkpoint(path: str | os.PathLike) -> object:
    """Read a checkpoint written by :func:`write_json_checkpoint`.

    Raises :class:`~repro.robustness.errors.CheckpointCorrupt` when the
    file does not parse, lacks the seal, or the seal does not match the
    payload — callers must treat that as "no checkpoint", never as
    data.
    """
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as stream:
            document = json.load(stream)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointCorrupt(
            "checkpoint file unreadable", path=path, reason=str(error)
        ) from error
    if not isinstance(document, dict) or "payload" not in document:
        raise CheckpointCorrupt(
            "checkpoint file lacks a payload", path=path
        )
    expected = document.get("sha256")
    actual = payload_digest(document["payload"])
    if expected != actual:
        raise CheckpointCorrupt(
            "checkpoint integrity seal mismatch",
            path=path,
            expected_sha256=expected,
            actual_sha256=actual,
        )
    return document["payload"]


def roundtrip_safe(problem: Problem) -> bool:
    """Whether the problem survives a text round trip unchanged.

    True exactly when all labels are strings whose rendering parses
    back (single characters or parenthesizable names).
    """
    try:
        return problem_from_text(problem_to_text(problem)) == problem
    except ValueError:
        return False


__all__ = [
    "problem_to_text",
    "problem_from_text",
    "problem_to_json",
    "problem_from_json",
    "canonical_json",
    "payload_digest",
    "write_json_checkpoint",
    "read_json_checkpoint",
    "roundtrip_safe",
    "render_label",
]
