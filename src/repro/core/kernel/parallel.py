"""Opt-in multiprocessing fan-out for the kernel's DFS-shaped work.

Three kinds of work chunk cleanly by an independent top-level index, so
the serial result is exactly the in-order concatenation (or set union)
of per-chunk results:

* ``node-max`` — the arity-Delta maximization DFS of ``Rbar``, chunked
  by its top-level right-closed-set prefix: the subtree whose first
  chosen set is ``candidates[k]`` touches only indices ``>= k``.
* ``exists`` — the existential-constraint DFS of both operators,
  chunked the same way by the first chosen new label.
* ``edge-pair`` — the Galois pairing loop of the edge maximization,
  chunked as contiguous slices of the closed-set lattice (each closed
  set is tested independently).

A :class:`KernelPool` owns one ``multiprocessing`` pool and is reused
across a whole ``speedup`` call — both operators, all three chunk
kinds — instead of spawning a pool per operator.  On the success path
the pool is shut down with ``close()``/``join()`` (letting workers
finish cleanly); ``terminate()`` is reserved for the error path.  With
``workers <= 1``, a single chunk, or a pool that cannot be created
(restricted environments), callers fall back to the serial loop —
no pool is ever built for one chunk.

Budget interplay (PR 1's ``governed()`` machinery): workers run
unbudgeted — a ``Budget`` is deliberately not shipped across the
process boundary, because its wall clock and fault-injection probe are
bound to the parent — and instead the *parent* fires the ambient
checkpoints between chunk results, with the accumulated result count.
Wall-clock budgets, configuration caps, and injected faults therefore
still trip in parallel mode, at chunk granularity rather than per DFS
node.  Callers who need per-node enforcement should stay on the serial
path (``workers=None``).

Tracing interplay (the observability layer): a ``Tracer`` likewise
never crosses the process boundary.  When the parent has an ambient
tracer, each task carries a boolean flag; the worker then records its
chunk into a *local* tracer and returns the finished records alongside
the results, and the parent grafts them under its open span
(:meth:`~repro.observability.trace.Tracer.graft`) — so chunk spans
appear in the parent's trace tree with per-chunk counters, while an
untraced run ships nothing extra at all.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool

from repro.core.kernel.engine import (
    edge_pairing_chunk,
    search_existential_chunk,
    search_maximization_chunk,
)
from repro.observability import trace as _trace
from repro.robustness import budget as _budget
from repro.robustness.errors import EngineMisuse


def _dispatch(kind: str, payload: tuple, index: int) -> list:
    if kind == "node-max":
        candidates, member_steps, closure, arity = payload
        return search_maximization_chunk(
            candidates, member_steps, closure, arity, index
        )
    if kind == "exists":
        member_steps, closure, arity = payload
        return search_existential_chunk(member_steps, closure, arity, index)
    if kind == "edge-pair":
        compat, closed_sets, chunk_size = payload
        low = index * chunk_size
        high = min(low + chunk_size, len(closed_sets))
        return edge_pairing_chunk(compat, closed_sets, low, high)
    raise EngineMisuse(f"unknown chunk kind: {kind}")


def _run_task(task: tuple) -> tuple[list, list[dict] | None]:
    kind, payload, index, traced = task
    if not traced:
        return _dispatch(kind, payload, index), None
    tracer = _trace.Tracer()
    with _trace.tracing(tracer):
        with _trace.span("kernel.chunk", kind=kind, first_index=index) as span:
            chunk = _dispatch(kind, payload, index)
            span.add("mp.chunk_results", len(chunk))
    return chunk, tracer.records


class KernelPool:
    """One reusable worker pool spanning a whole ``speedup`` call.

    The pool is created lazily on the first :meth:`map_chunks` that can
    use it; a creation failure is remembered so callers fall back to
    the serial loop exactly once.  Use as a context manager:
    ``close()``/``join()`` on clean exit, ``terminate()`` when an
    exception (for example a budget trip) escapes.
    """

    def __init__(self, workers: int | None) -> None:
        self.workers = workers or 0
        self._pool = None
        self._failed = False

    def usable(self) -> bool:
        return self.workers > 1 and not self._failed

    def _ensure(self) -> multiprocessing.pool.Pool | None:
        if self._pool is None and not self._failed:
            try:
                self._pool = multiprocessing.get_context().Pool(
                    processes=self.workers
                )
            except (OSError, ValueError):
                self._failed = True
        return self._pool

    def map_chunks(
        self, kind: str, payload: tuple, count: int, *, phase: str
    ) -> list[list] | None:
        """Run ``count`` chunks of ``kind`` across the pool.

        Returns the list of per-chunk results in index order, or
        ``None`` when the pool is unusable (``workers <= 1``, a single
        chunk, or pool creation failed) — the caller then runs the
        serial loop.  The parent fires ambient budget checkpoints and
        counts ``mp.*`` between chunk results, and grafts worker-local
        trace records under its open span.
        """
        if count <= 1 or not self.usable():
            return None
        pool = self._ensure()
        if pool is None:
            return None
        traced = _trace.tracing_enabled()
        tasks = [(kind, payload, index, traced) for index in range(count)]
        chunks: list[list] = []
        produced = 0
        for index, (chunk, records) in enumerate(pool.imap(_run_task, tasks)):
            _budget.check_configurations(
                produced,
                phase=phase,
                chunk=index,
                parallel_workers=self.workers,
            )
            _trace.add("mp.chunks")
            _trace.add("mp.chunk_results", len(chunk))
            if records is not None:
                tracer = _trace.active_tracer()
                if tracer is not None:
                    tracer.graft(records)
            chunks.append(chunk)
            produced += len(chunk)
        return chunks

    def close(self) -> None:
        """Clean shutdown: let queued workers finish, then join."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard shutdown for the error path."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
        return False


def run_chunks_serial(
    kind: str, payload: tuple, count: int, *, phase: str
) -> list[list]:
    """The in-process twin of :meth:`KernelPool.map_chunks`.

    Same chunk decomposition, same budget checkpoints and ``mp.*``
    counters at chunk granularity — used when a pool is unavailable so
    parallel-requested runs behave identically minus the processes.
    """
    chunks: list[list] = []
    produced = 0
    for index in range(count):
        _budget.check_configurations(produced, phase=phase, chunk=index)
        chunk = _dispatch(kind, payload, index)
        _trace.add("mp.chunks")
        _trace.add("mp.chunk_results", len(chunk))
        chunks.append(chunk)
        produced += len(chunk)
    return chunks


def search_maximization_parallel(
    candidates: tuple[int, ...],
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    workers: int,
) -> list[tuple[int, ...]]:
    """Run the maximization DFS chunked across ``workers`` processes.

    Returns the same list, in the same order, as the serial search.
    Kept as the stable entry point for callers without a shared
    :class:`KernelPool`; falls back to the serial chunk loop when the
    pool cannot help.
    """
    payload = (candidates, member_steps, closure, arity)
    count = len(candidates)
    with KernelPool(workers) as pool:
        chunks = pool.map_chunks(
            "node-max", payload, count, phase="node-maximization"
        )
    if chunks is None:
        chunks = run_chunks_serial(
            "node-max", payload, count, phase="node-maximization"
        )
    return [item for chunk in chunks for item in chunk]


__all__ = ["KernelPool", "run_chunks_serial", "search_maximization_parallel"]
