"""Opt-in multiprocessing fan-out for the arity-Delta maximization DFS.

The node maximization of ``Rbar`` explores right-closed candidate sets
in non-decreasing index order, so the search tree decomposes cleanly by
its *top-level prefix*: the subtree whose first chosen set is
``candidates[k]`` is independent of every other subtree, touches only
indices ``>= k``, and the serial result list is exactly the
concatenation of the chunk results for ``k = 0, 1, 2, ...``.  Each
chunk therefore ships to a worker as a single integer; the shared
search tables (candidate masks, member ids, prefix closure) travel once
per worker through the pool initializer.

Budget interplay (PR 1's ``governed()`` machinery): workers run
unbudgeted — a ``Budget`` is deliberately not shipped across the
process boundary, because its wall clock and fault-injection probe are
bound to the parent — and instead the *parent* fires the ambient
checkpoints between chunk results, with the accumulated configuration
count.  Wall-clock budgets, configuration caps, and injected faults
therefore still trip in parallel mode, at chunk granularity rather than
per DFS node.  Callers who need per-node enforcement should stay on the
serial path (``workers=None``).
"""

from __future__ import annotations

import multiprocessing

from repro.core.kernel.engine import search_maximization_chunk
from repro.robustness import budget as _budget

_WORKER_TABLES: tuple | None = None


def _initialize_worker(tables: tuple) -> None:
    global _WORKER_TABLES
    _WORKER_TABLES = tables


def _run_chunk(first_index: int) -> list[tuple[int, ...]]:
    candidates, member_steps, closure, arity = _WORKER_TABLES
    return search_maximization_chunk(
        candidates, member_steps, closure, arity, first_index
    )


def search_maximization_parallel(
    candidates: tuple[int, ...],
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    workers: int,
) -> list[tuple[int, ...]]:
    """Run the maximization DFS chunked across ``workers`` processes.

    Returns the same list, in the same order, as the serial search.
    Falls back to in-process execution when only one chunk exists or
    the pool cannot be created (restricted environments).
    """
    tables = (candidates, member_steps, closure, arity)
    chunk_indices = range(len(candidates))
    results: list[tuple[int, ...]] = []
    try:
        context = multiprocessing.get_context()
        pool = context.Pool(
            processes=workers,
            initializer=_initialize_worker,
            initargs=(tables,),
        )
    except (OSError, ValueError):
        for first_index in chunk_indices:
            _budget.check_configurations(
                len(results), phase="node-maximization", chunk=first_index
            )
            results.extend(
                search_maximization_chunk(
                    candidates, member_steps, closure, arity, first_index
                )
            )
        return results
    try:
        for first_index, chunk in enumerate(pool.imap(_run_chunk, chunk_indices)):
            _budget.check_configurations(
                len(results),
                phase="node-maximization",
                chunk=first_index,
                parallel_workers=workers,
            )
            results.extend(chunk)
    finally:
        pool.terminate()
        pool.join()
    return results


__all__ = ["search_maximization_parallel"]
