"""Opt-in multiprocessing fan-out for the arity-Delta maximization DFS.

The node maximization of ``Rbar`` explores right-closed candidate sets
in non-decreasing index order, so the search tree decomposes cleanly by
its *top-level prefix*: the subtree whose first chosen set is
``candidates[k]`` is independent of every other subtree, touches only
indices ``>= k``, and the serial result list is exactly the
concatenation of the chunk results for ``k = 0, 1, 2, ...``.  Each
chunk therefore ships to a worker as a single integer; the shared
search tables (candidate masks, member ids, prefix closure) travel once
per worker through the pool initializer.

Budget interplay (PR 1's ``governed()`` machinery): workers run
unbudgeted — a ``Budget`` is deliberately not shipped across the
process boundary, because its wall clock and fault-injection probe are
bound to the parent — and instead the *parent* fires the ambient
checkpoints between chunk results, with the accumulated configuration
count.  Wall-clock budgets, configuration caps, and injected faults
therefore still trip in parallel mode, at chunk granularity rather than
per DFS node.  Callers who need per-node enforcement should stay on the
serial path (``workers=None``).

Tracing interplay (the observability layer): a ``Tracer`` likewise
never crosses the process boundary.  When the parent has an ambient
tracer, the initializer ships a boolean flag; each worker then records
its chunk into a *local* tracer and returns the finished records
alongside the results, and the parent grafts them under its open span
(:meth:`~repro.observability.trace.Tracer.graft`) — so chunk spans
appear in the parent's trace tree with per-chunk counters, while an
untraced run ships nothing extra at all.
"""

from __future__ import annotations

import multiprocessing

from repro.core.kernel.engine import search_maximization_chunk
from repro.observability import trace as _trace
from repro.robustness import budget as _budget

_WORKER_TABLES: tuple | None = None


def _initialize_worker(tables: tuple) -> None:
    global _WORKER_TABLES
    _WORKER_TABLES = tables


def _run_chunk(first_index: int) -> tuple[list[tuple[int, ...]], list[dict] | None]:
    candidates, member_steps, closure, arity, traced = _WORKER_TABLES
    if not traced:
        return (
            search_maximization_chunk(
                candidates, member_steps, closure, arity, first_index
            ),
            None,
        )
    tracer = _trace.Tracer()
    with _trace.tracing(tracer):
        with _trace.span("kernel.chunk", first_index=first_index) as span:
            chunk = search_maximization_chunk(
                candidates, member_steps, closure, arity, first_index
            )
            span.add("mp.chunk_results", len(chunk))
    return chunk, tracer.records


def search_maximization_parallel(
    candidates: tuple[int, ...],
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    workers: int,
) -> list[tuple[int, ...]]:
    """Run the maximization DFS chunked across ``workers`` processes.

    Returns the same list, in the same order, as the serial search.
    Falls back to in-process execution when only one chunk exists or
    the pool cannot be created (restricted environments).
    """
    traced = _trace.tracing_enabled()
    tables = (candidates, member_steps, closure, arity, traced)
    chunk_indices = range(len(candidates))
    results: list[tuple[int, ...]] = []
    try:
        context = multiprocessing.get_context()
        pool = context.Pool(
            processes=workers,
            initializer=_initialize_worker,
            initargs=(tables,),
        )
    except (OSError, ValueError):
        for first_index in chunk_indices:
            _budget.check_configurations(
                len(results), phase="node-maximization", chunk=first_index
            )
            chunk = search_maximization_chunk(
                candidates, member_steps, closure, arity, first_index
            )
            _trace.add("mp.chunks")
            _trace.add("mp.chunk_results", len(chunk))
            results.extend(chunk)
        return results
    try:
        for first_index, (chunk, records) in enumerate(
            pool.imap(_run_chunk, chunk_indices)
        ):
            _budget.check_configurations(
                len(results),
                phase="node-maximization",
                chunk=first_index,
                parallel_workers=workers,
            )
            _trace.add("mp.chunks")
            _trace.add("mp.chunk_results", len(chunk))
            if records is not None:
                tracer = _trace.active_tracer()
                if tracer is not None:
                    tracer.graft(records)
            results.extend(chunk)
    finally:
        pool.terminate()
        pool.join()
    return results


__all__ = ["search_maximization_parallel"]
