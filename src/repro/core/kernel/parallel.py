"""Opt-in multiprocessing fan-out for the kernel's DFS-shaped work.

Three kinds of work chunk cleanly by an independent top-level unit
index, so the serial result is exactly the in-order concatenation (or
set union) of per-unit results:

* ``node-max`` — the arity-Delta maximization DFS of ``Rbar``, chunked
  by its top-level right-closed-set prefix: the subtree whose first
  chosen set is ``candidates[k]`` touches only indices ``>= k``.
* ``exists`` — the existential-constraint DFS of both operators,
  chunked the same way by the first chosen new label.
* ``edge-pair`` — the Galois pairing loop of the edge maximization,
  one closed set per unit (each set is tested independently).

A :class:`KernelPool` owns one supervised
:class:`~repro.core.kernel.sharding.ShardScheduler` and is reused
across a whole ``speedup`` call — both operators, all three chunk
kinds.  Units are grouped into contiguous *shards* with cheap size
estimates, admitted batch-at-a-time against the ambient memory budget,
and each in-flight shard is supervised: a worker that dies (OOM-kill,
segfault, signal) or wedges past its deadline no longer hangs the
parent the way the old one-shot ``pool.imap`` fan-out did — the shard
is retried with backoff, split, or run serially in the parent, and
failures surface as typed :class:`~repro.robustness.errors.ReproError`
exceptions with the pool torn down.  See
:mod:`repro.core.kernel.sharding` for the scheduler, the spill/resume
store, and the determinism contract (index-ordered merge equals the
serial run byte-for-byte).

With ``workers <= 1``, a single unit, or workers that cannot be
spawned (restricted environments), callers fall back to the serial
loop — no processes are ever built for one unit of work.

Budget interplay (PR 1's ``governed()`` machinery): workers run
unbudgeted — a ``Budget`` is deliberately not shipped across the
process boundary, because its wall clock and fault-injection probe are
bound to the parent — and instead the *parent* fires the ambient
checkpoints as shard results are accepted, with the accumulated result
count.  Wall-clock budgets, configuration caps, and injected faults
therefore still trip in parallel mode, at shard granularity rather
than per DFS node.  Callers who need per-node enforcement should stay
on the serial path (``workers=None``).

Tracing interplay (the observability layer): a ``Tracer`` likewise
never crosses the process boundary.  When the parent has an ambient
tracer, each task carries a boolean flag; the worker then records its
shard into a *local* tracer and returns the finished records alongside
the results, and the parent grafts them under its open span
(:meth:`~repro.observability.trace.Tracer.graft`).  Only the winning
attempt of a shard ever ships records — abandoned attempts are dropped
whole, so retries can never double-count counters or graft duplicate
spans.
"""

from __future__ import annotations

from typing import Any

from repro.core.kernel.sharding import (
    ShardPolicy,
    ShardScheduler,
    active_policy,
    run_shard_serial,
)
from repro.observability import trace as _trace
from repro.robustness import budget as _budget


class KernelPool:
    """One reusable supervised worker fleet spanning a ``speedup`` call.

    The scheduler (and its worker processes) is created lazily on the
    first :meth:`map_chunks` that can use it; a spawn failure is
    remembered so callers fall back to the serial loop exactly once.
    Use as a context manager: ``close()`` (sentinel + join) on clean
    exit, ``terminate()`` (kill) when an exception — a budget trip, an
    injected fault, a worker-side typed error — escapes.

    The shard policy resolves in precedence order: one passed here
    explicitly, else the ambient policy installed by
    :func:`repro.core.kernel.sharding.scheduling`, else the defaults
    (budget-provided knobs fill remaining ``None`` fields at run time).
    """

    def __init__(
        self, workers: int | None, *, policy: ShardPolicy | None = None
    ) -> None:
        self.workers = workers or 0
        self.policy = policy
        self._scheduler: ShardScheduler | None = None
        self._failed = False

    def usable(self) -> bool:
        return self.workers > 1 and not self._failed

    def _ensure(self) -> ShardScheduler | None:
        if self._scheduler is None and not self._failed:
            policy = self.policy
            if policy is None:
                policy = active_policy()
            scheduler = ShardScheduler(self.workers, policy)
            if scheduler.start():
                self._scheduler = scheduler
            else:
                self._failed = True
        return self._scheduler

    def map_chunks(
        self, kind: str, payload: tuple, count: int, *, phase: str
    ) -> list[list] | None:
        """Run ``count`` units of ``kind`` across the supervised fleet.

        Returns per-shard result lists in unit order (flattening gives
        the serial result exactly), or ``None`` when the fleet is
        unusable (``workers <= 1``, a single unit, or spawn failure) —
        the caller then runs the serial loop.  Worker deaths, wedged
        shards, and memory faults are retried/degraded by the scheduler
        rather than hanging; unrecoverable failures raise typed errors
        (the surrounding context manager then ``terminate()``s).
        """
        if count <= 1 or not self.usable():
            return None
        scheduler = self._ensure()
        if scheduler is None:
            return None
        try:
            return scheduler.run(kind, payload, count, phase=phase)
        except BaseException:
            # The error path must never leave live workers behind a
            # raised typed error (the old imap fan-out deadlocked
            # here): kill the fleet now, then let the error surface.
            self.terminate()
            raise

    def close(self) -> None:
        """Clean shutdown: let workers drain their sentinel, then join."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def terminate(self) -> None:
        """Hard shutdown for the error path."""
        if self._scheduler is not None:
            self._scheduler.terminate()
            self._scheduler = None

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
        return False


def run_chunks_serial(
    kind: str, payload: tuple, count: int, *, phase: str
) -> list[list]:
    """The in-process twin of :meth:`KernelPool.map_chunks`.

    Same unit decomposition, same budget checkpoints and ``mp.*``
    counters at unit granularity — used when a worker fleet is
    unavailable so parallel-requested runs behave identically minus the
    processes.
    """
    chunks: list[list] = []
    produced = 0
    for index in range(count):
        _budget.check_configurations(produced, phase=phase, chunk=index)
        chunk: list[Any] = run_shard_serial(kind, payload, index, index + 1)
        _trace.add("mp.chunks")
        _trace.add("mp.chunk_results", len(chunk))
        chunks.append(chunk)
        produced += len(chunk)
    return chunks


def search_maximization_parallel(
    candidates: tuple[int, ...],
    member_labels: tuple[tuple[int, ...], ...],
    trans: tuple[tuple[int, ...], ...],
    arity: int,
    workers: int,
) -> list[tuple[int, ...]]:
    """Run the maximization DFS chunked across ``workers`` processes.

    Takes the machine form of the search state (per-candidate member
    label ids plus the closure transition table of
    :func:`repro.core.kernel.engine.closure_machine`).  Returns the
    same list, in the same order, as the serial search.  Kept as the
    stable entry point for callers without a shared
    :class:`KernelPool`; falls back to the serial chunk loop when the
    fleet cannot help.
    """
    payload = (candidates, member_labels, trans, arity)
    count = len(candidates)
    with KernelPool(workers) as pool:
        chunks = pool.map_chunks(
            "node-max", payload, count, phase="node-maximization"
        )
    if chunks is None:
        chunks = run_chunks_serial(
            "node-max", payload, count, phase="node-maximization"
        )
    return [item for chunk in chunks for item in chunk]


__all__ = ["KernelPool", "run_chunks_serial", "search_maximization_parallel"]
