"""Label interning: dense integer ids per problem.

The reference engine manipulates hashable labels directly — strings at
the bottom of a speedup chain, ``frozenset``-of-``frozenset`` towers
after a few steps — and pays hashing plus ``render_label`` sorting on
every operation.  The kernel instead assigns each label of a problem a
dense id in ``range(n)`` once, in the deterministic order of
``render_label``, and works with ids and bitmasks from then on.  The
interner is the single place where the two worlds meet: everything the
kernel returns is converted back through it, so kernel results are
bit-for-bit the same :class:`~repro.core.problem.Problem` objects the
reference engine produces.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Hashable, Iterable

from repro.core.kernel.bitops import iter_bits
from repro.core.labels import render_label
from repro.robustness.errors import InvalidProblem


class LabelInterner:
    """A bijection between an alphabet and ``range(n)``.

    Ids are assigned in ``render_label`` order, so two interners built
    from the same label set are identical — this is what makes kernel
    output (and the golden files derived from it) deterministic.
    """

    __slots__ = ("_labels", "_ids")

    def __init__(self, labels: Iterable[Hashable]) -> None:
        ordered = sorted(set(labels), key=render_label)
        self._labels: tuple[Hashable, ...] = tuple(ordered)
        self._ids: dict[Hashable, int] = {
            label: index for index, label in enumerate(ordered)
        }

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """All interned labels, in id order."""
        return self._labels

    def id_of(self, label: Hashable) -> int:
        """The dense id of ``label``; raises on unknown labels."""
        try:
            return self._ids[label]
        except KeyError:
            raise InvalidProblem(
                f"label {render_label(label)} is not interned",
                label=render_label(label),
                alphabet_size=len(self._labels),
            ) from None

    def label_of(self, index: int) -> Hashable:
        """The label with id ``index``."""
        return self._labels[index]

    def ids_of(self, labels: Iterable[Hashable]) -> tuple[int, ...]:
        """Ids of a label multiset, as a canonical sorted tuple."""
        return tuple(sorted(self.id_of(label) for label in labels))

    def mask_of(self, labels: Iterable[Hashable]) -> int:
        """The bitmask of a label set."""
        mask = 0
        for label in labels:
            mask |= 1 << self.id_of(label)
        return mask

    def labels_of_mask(self, mask: int) -> frozenset:
        """The label set denoted by ``mask``."""
        return frozenset(self._labels[index] for index in iter_bits(mask))

    def labels_of_ids(self, ids: Iterable[int]) -> tuple[Hashable, ...]:
        """The label multiset denoted by an id tuple."""
        return tuple(self._labels[index] for index in ids)


class TransportRegistry:
    """A bounded index of recently interned kernels, for artifact reuse.

    Successive steps of a fixed-point chain differ only by a renaming of
    labels; re-deriving the Galois lattice and closure machinery for
    each renamed copy repeats work the previous step already paid for.
    The registry keeps the last few interned kernels grouped under a
    cheap renaming-invariant *structure key* (see
    :func:`repro.core.cache.structure_key`) so :func:`KernelProblem.of`
    can find a transport source without hashing canonical forms unless
    two problems actually share the prefilter key.

    Thread-safe: the service layer interns problems from worker threads.
    The capacity bound keeps memory flat over long chains — eviction is
    FIFO over *recorded kernels*, not keys.
    """

    __slots__ = ("_capacity", "_by_key", "_order", "_lock")

    def __init__(self, capacity: int = 32) -> None:
        self._capacity = capacity
        self._by_key: dict[tuple, list[object]] = {}
        self._order: deque[tuple[tuple, object]] = deque()
        self._lock = threading.Lock()

    def record(self, key: tuple, kernel: object) -> None:
        """Remember ``kernel`` under ``key``, evicting the oldest entry
        once the capacity bound is exceeded."""
        with self._lock:
            self._by_key.setdefault(key, []).append(kernel)
            self._order.append((key, kernel))
            while len(self._order) > self._capacity:
                old_key, old_kernel = self._order.popleft()
                bucket = self._by_key.get(old_key)
                if bucket is not None:
                    try:
                        bucket.remove(old_kernel)
                    except ValueError:
                        pass
                    if not bucket:
                        del self._by_key[old_key]

    def candidates(self, key: tuple) -> list[object]:
        """Recorded kernels sharing ``key``, newest first."""
        with self._lock:
            return list(reversed(self._by_key.get(key, ())))

    def clear(self) -> None:
        """Drop every recorded kernel (test isolation hook)."""
        with self._lock:
            self._by_key.clear()
            self._order.clear()


_TRANSPORT_REGISTRY = TransportRegistry()


def transport_registry() -> TransportRegistry:
    """The process-wide registry consulted by ``KernelProblem.of``."""
    return _TRANSPORT_REGISTRY


__all__ = ["LabelInterner", "TransportRegistry", "transport_registry"]
